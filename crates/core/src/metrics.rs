//! Domain-level metrics: Ts, Td, Tp and the cross-platform breakdown
//! (paper §3.4 and Figure 5).
//!
//! Identical domain-level operations across platforms let Granula derive
//! common metrics: setup time `Ts` (Startup + Cleanup), input/output time
//! `Td` (LoadGraph + OffloadGraph), and processing time `Tp`
//! (ProcessGraph). These power the Figure 5 comparison.

use granula_archive::JobArchive;
use serde::{Deserialize, Serialize};

/// The three domain phases of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Startup + Cleanup (`Ts`).
    Setup,
    /// LoadGraph + OffloadGraph (`Td`).
    InputOutput,
    /// ProcessGraph (`Tp`).
    Processing,
}

impl Phase {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Setup => "Setup",
            Phase::InputOutput => "Input/output",
            Phase::Processing => "Processing",
        }
    }

    /// The mission kinds aggregated into this phase.
    pub fn mission_kinds(self) -> &'static [&'static str] {
        match self {
            Phase::Setup => &["Startup", "Cleanup"],
            Phase::InputOutput => &["LoadGraph", "OffloadGraph"],
            Phase::Processing => &["ProcessGraph"],
        }
    }
}

/// The domain-level decomposition of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainBreakdown {
    /// Platform name (from the archive).
    pub platform: String,
    /// Job id.
    pub job_id: String,
    /// Setup time `Ts`, µs.
    pub setup_us: u64,
    /// I/O time `Td`, µs.
    pub io_us: u64,
    /// Processing time `Tp`, µs.
    pub processing_us: u64,
    /// Total job runtime, µs.
    pub total_us: u64,
}

impl DomainBreakdown {
    /// Computes the breakdown from an archive assembled under a domain-level
    /// (or finer) model. Returns `None` when the archive has no runtime.
    pub fn from_archive(archive: &JobArchive) -> Option<DomainBreakdown> {
        let total_us = archive.total_runtime_us()?;
        if total_us == 0 {
            return None;
        }
        let sum = |phase: Phase| -> u64 {
            phase
                .mission_kinds()
                .iter()
                .map(|k| archive.total_duration_of_us(k))
                .sum()
        };
        Some(DomainBreakdown {
            platform: archive.meta.platform.clone(),
            job_id: archive.meta.job_id.clone(),
            setup_us: sum(Phase::Setup),
            io_us: sum(Phase::InputOutput),
            processing_us: sum(Phase::Processing),
            total_us,
        })
    }

    /// Duration of one phase, µs.
    pub fn phase_us(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Setup => self.setup_us,
            Phase::InputOutput => self.io_us,
            Phase::Processing => self.processing_us,
        }
    }

    /// Fraction of the total runtime spent in a phase.
    pub fn fraction(&self, phase: Phase) -> f64 {
        self.phase_us(phase) as f64 / self.total_us as f64
    }

    /// Total runtime in seconds.
    pub fn total_s(&self) -> f64 {
        self.total_us as f64 / 1e6
    }

    /// Time not attributed to any domain phase (gaps between operations);
    /// small values indicate good model coverage.
    pub fn unattributed_us(&self) -> i64 {
        self.total_us as i64 - (self.setup_us + self.io_us + self.processing_us) as i64
    }
}

/// Per-worker imbalance of an iterative operation: the data behind
/// Figure 8's observation that "some workers take more time to complete
/// their computation than others".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceStats {
    /// Mission id of the iteration (e.g. superstep number).
    pub iteration: String,
    /// Fastest worker's duration, µs.
    pub min_us: u64,
    /// Slowest worker's duration, µs.
    pub max_us: u64,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// `max / mean` — 1.0 is perfectly balanced.
    pub imbalance: f64,
}

/// Computes per-iteration worker imbalance over operations of
/// `mission_kind` (e.g. `"Compute"`) grouped by mission id.
pub fn worker_imbalance(archive: &JobArchive, mission_kind: &str) -> Vec<ImbalanceStats> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for op in archive.tree.by_mission_kind(mission_kind) {
        if let Some(d) = op.duration_us() {
            groups.entry(op.mission.id.clone()).or_default().push(d);
        }
    }
    groups
        .into_iter()
        .filter(|(_, ds)| !ds.is_empty())
        .map(|(iteration, ds)| {
            let min_us = *ds.iter().min().expect("non-empty");
            let max_us = *ds.iter().max().expect("non-empty");
            let mean_us = ds.iter().sum::<u64>() as f64 / ds.len() as f64;
            ImbalanceStats {
                iteration,
                min_us,
                max_us,
                mean_us,
                imbalance: if mean_us > 0.0 {
                    max_us as f64 / mean_us
                } else {
                    1.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn archive() -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        let mut set = |id, s: i64, e: i64| {
            t.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(s)))
                .unwrap();
            t.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(e)))
                .unwrap();
        };
        set(job, 0, 100);
        let phases = [
            ("Startup", 0, 20),
            ("LoadGraph", 20, 55),
            ("ProcessGraph", 55, 80),
            ("OffloadGraph", 80, 85),
            ("Cleanup", 85, 100),
        ];
        let mut t2 = t.clone();
        for (kind, s, e) in phases {
            let id = t2
                .add_child(job, Actor::new("Job", "0"), Mission::new(kind, "0"))
                .unwrap();
            t2.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(s)))
                .unwrap();
            t2.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(e)))
                .unwrap();
        }
        JobArchive::new(
            JobMeta {
                job_id: "j".into(),
                platform: "P".into(),
                ..Default::default()
            },
            t2,
        )
    }

    #[test]
    fn breakdown_sums_phases() {
        let b = DomainBreakdown::from_archive(&archive()).unwrap();
        assert_eq!(b.setup_us, 35); // 20 + 15
        assert_eq!(b.io_us, 40); // 35 + 5
        assert_eq!(b.processing_us, 25);
        assert_eq!(b.total_us, 100);
        assert_eq!(b.unattributed_us(), 0);
        assert!((b.fraction(Phase::InputOutput) - 0.40).abs() < 1e-12);
    }

    #[test]
    fn empty_archive_yields_none() {
        let a = JobArchive::new(JobMeta::default(), OperationTree::new());
        assert!(DomainBreakdown::from_archive(&a).is_none());
    }

    #[test]
    fn imbalance_groups_by_iteration() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        for (w, d) in [(0u32, 10i64), (1, 20), (2, 30)] {
            let id = t
                .add_child(
                    job,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", "4"),
                )
                .unwrap();
            t.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(0)))
                .unwrap();
            t.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(d)))
                .unwrap();
        }
        let a = JobArchive::new(JobMeta::default(), t);
        let stats = worker_imbalance(&a, "Compute");
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.iteration, "4");
        assert_eq!((s.min_us, s.max_us), (10, 30));
        assert!((s.mean_us - 20.0).abs() < 1e-9);
        assert!((s.imbalance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn phase_labels_and_kinds() {
        assert_eq!(Phase::Setup.mission_kinds(), &["Startup", "Cleanup"]);
        assert_eq!(Phase::InputOutput.label(), "Input/output");
    }
}
