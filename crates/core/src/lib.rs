//! # granula
//!
//! Granula: a fine-grained performance-analysis system for Big Data
//! (graph-processing) platforms — a Rust reproduction of
//! *"Granula: Toward Fine-grained Performance Analysis of Large-scale Graph
//! Processing Platforms"* (Ngai, Hegeman, Heldens, Iosup, 2017).
//!
//! Granula facilitates the complex, end-to-end process of fine-grained
//! performance **modeling**, **monitoring**, **archiving** and
//! **visualization** (the four sub-processes of paper Figure 2, implemented
//! by [`process::EvaluationProcess`]). Analysts build performance models
//! incrementally — domain, system, implementation levels — and Granula
//! automates the repetitive work: filtering monitored events against the
//! model, assembling distributed logs into an operation tree, deriving
//! metrics by rule, mapping environment resource data onto operations, and
//! rendering the archives.
//!
//! This crate ties the substrates together and ships:
//!
//! * a model library for the simulated Giraph and PowerGraph platforms
//!   ([`models`], mirroring paper Figure 4),
//! * the end-to-end evaluation process ([`process`]),
//! * domain-level metrics and cross-platform comparison ([`metrics`],
//!   paper §3.4 and Figure 5),
//! * the platform-diversity registry ([`registry`], paper Table 1),
//! * the calibrated dg1000/DAS5 experiment setup ([`calibration`],
//!   [`experiment`]) used to regenerate the paper's figures,
//! * a performance-regression harness ([`regression`], paper §6).

pub mod analysis;
pub mod benchmark;
pub mod calibration;
pub mod datasets;
pub mod experiment;
pub mod metrics;
pub mod models;
pub mod process;
pub mod registry;
pub mod regression;

pub use analysis::{diagnose, find_choke_points, ChokePoint, ChokePointConfig, FailureReport};
pub use benchmark::{BenchmarkReport, BenchmarkRow, BenchmarkSuite};
pub use experiment::{run_experiment, run_experiment_on, ExperimentResult, Platform};
pub use metrics::{DomainBreakdown, Phase};
pub use process::{EvaluationProcess, EvaluationReport};
