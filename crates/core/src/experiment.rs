//! Experiment drivers: run a platform job through the full Granula pipeline.
//!
//! These are the entry points the figure-regeneration binaries and examples
//! use: pick a platform, a graph, and a job config; get back the archive,
//! the environment log, the domain breakdown, and all feedback.

use gpsim_cluster::{FaultPlan, SimError};
use gpsim_graph::Graph;
use gpsim_platforms::{
    GiraphPlatform, GrapePlatform, GraphMatPlatform, GraphXPlatform, JobConfig, PlatformRun,
    PowerGraphPlatform,
};
use granula_archive::JobMeta;

use crate::calibration;
use crate::metrics::DomainBreakdown;
use crate::models;
use crate::process::{EvaluationProcess, EvaluationReport};

/// The platforms under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// The Giraph-like Pregel platform.
    Giraph,
    /// The PowerGraph-like GAS platform.
    PowerGraph,
    /// The GraphMat-like SpMV platform (Table 1 extension).
    GraphMat,
    /// The GRAPE-like subgraph-centric platform (choke-point matrix
    /// extension).
    Grape,
    /// The GraphX/Spark-like dataflow platform (choke-point matrix
    /// extension).
    GraphX,
}

impl Platform {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Giraph => "Giraph",
            Platform::PowerGraph => "PowerGraph",
            Platform::GraphMat => "GraphMat",
            Platform::Grape => "Grape",
            Platform::GraphX => "GraphX",
        }
    }

    /// The platform's full performance model.
    pub fn model(self) -> granula_model::PerformanceModel {
        match self {
            Platform::Giraph => models::giraph_model(),
            Platform::PowerGraph => models::powergraph_model(),
            Platform::GraphMat => models::graphmat_model(),
            Platform::Grape => models::grape_model(),
            Platform::GraphX => models::graphx_model(),
        }
    }

    /// The platform's calibrated BFS-on-dg1000 job configuration.
    pub fn dg1000_job(self) -> JobConfig {
        match self {
            Platform::Giraph => calibration::giraph_dg1000_job(),
            Platform::PowerGraph => calibration::powergraph_dg1000_job(),
            Platform::GraphMat => calibration::graphmat_dg1000_job(),
            Platform::Grape => calibration::grape_dg1000_job(),
            Platform::GraphX => calibration::graphx_dg1000_job(),
        }
    }

    /// The platform's model extended with checkpoint/recovery operation
    /// types — required when evaluating a run under fault injection, or the
    /// model-driven event filter drops the recovery events.
    ///
    /// # Panics
    /// For [`Platform::GraphMat`], whose fault behavior is not modeled.
    pub fn fault_model(self) -> granula_model::PerformanceModel {
        match self {
            Platform::Giraph => models::giraph_fault_model(),
            Platform::PowerGraph => models::powergraph_fault_model(),
            Platform::GraphMat => panic!("fault injection is not modeled for GraphMat"),
            Platform::Grape => models::grape_fault_model(),
            Platform::GraphX => models::graphx_fault_model(),
        }
    }
}

/// Everything one experiment produces.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The Granula evaluation output (archive + feedback).
    pub report: EvaluationReport,
    /// The raw platform run (events, samples, algorithm output).
    pub run: PlatformRun,
    /// Domain-level breakdown (Figure 5 row).
    pub breakdown: DomainBreakdown,
}

/// Runs one job on one platform and evaluates it with the platform's full
/// model, on the default DAS5-like cluster.
pub fn run_experiment(
    platform: Platform,
    graph: &Graph,
    cfg: &JobConfig,
) -> Result<ExperimentResult, SimError> {
    run_experiment_on(
        platform,
        graph,
        cfg,
        &gpsim_cluster::ClusterSpec::das5(cfg.nodes),
    )
}

/// Like [`run_experiment`], on an explicit (possibly heterogeneous)
/// cluster — e.g. one with a straggler node.
pub fn run_experiment_on(
    platform: Platform,
    graph: &Graph,
    cfg: &JobConfig,
    cluster: &gpsim_cluster::ClusterSpec,
) -> Result<ExperimentResult, SimError> {
    let process = {
        let _span = granula_trace::span!("modeling", "build_model {}", platform.name());
        EvaluationProcess::new(platform.model())
    };
    let run = {
        let _span = granula_trace::span!(
            "monitoring",
            "platform_run {} ({})",
            cfg.job_id,
            platform.name()
        );
        match platform {
            Platform::Giraph => GiraphPlatform::default().run_on(graph, cfg, cluster)?,
            Platform::PowerGraph => PowerGraphPlatform::default().run_on(graph, cfg, cluster)?,
            Platform::GraphMat => GraphMatPlatform::default().run_on(graph, cfg, cluster)?,
            Platform::Grape => GrapePlatform::default().run_on(graph, cfg, cluster)?,
            Platform::GraphX => GraphXPlatform::default().run_on(graph, cfg, cluster)?,
        }
    };
    let meta = JobMeta {
        job_id: cfg.job_id.clone(),
        platform: platform.name().into(),
        algorithm: cfg.algorithm.name().into(),
        dataset: cfg.dataset.clone(),
        nodes: cfg.nodes as u32,
        model: String::new(),
    };
    let report = process.evaluate(&run, meta);
    let breakdown = DomainBreakdown::from_archive(&report.archive)
        .expect("archive of a simulated run always has a runtime");
    Ok(ExperimentResult {
        report,
        run,
        breakdown,
    })
}

/// Like [`run_experiment`], under an injected fault plan on the default
/// DAS5-like cluster.
///
/// `giraph_checkpoint_interval` enables Giraph's checkpointing (every K
/// supersteps) so recovery can replay from the last checkpoint instead of
/// superstep zero; it is ignored by other platforms. When the plan contains
/// crashes or checkpointing is on, the run is evaluated against
/// [`Platform::fault_model`] so the recovery operations survive the
/// model-driven event filter.
///
/// # Panics
/// For [`Platform::GraphMat`] with a non-empty plan — its fault behavior is
/// not modeled.
pub fn run_experiment_with_faults(
    platform: Platform,
    graph: &Graph,
    cfg: &JobConfig,
    plan: &FaultPlan,
    giraph_checkpoint_interval: Option<u32>,
) -> Result<ExperimentResult, SimError> {
    let process = {
        let _span = granula_trace::span!("modeling", "build_model {}", platform.name());
        let faulted = !plan.crashes.is_empty()
            || (platform == Platform::Giraph && giraph_checkpoint_interval.is_some());
        let model = if faulted {
            platform.fault_model()
        } else {
            platform.model()
        };
        EvaluationProcess::new(model)
    };
    let run = {
        let _span = granula_trace::span!(
            "monitoring",
            "platform_run {} ({})",
            cfg.job_id,
            platform.name()
        );
        match platform {
            Platform::Giraph => {
                let p = GiraphPlatform {
                    checkpoint_interval: giraph_checkpoint_interval,
                    ..GiraphPlatform::default()
                };
                p.run_with_faults(graph, cfg, plan)?
            }
            Platform::PowerGraph => {
                PowerGraphPlatform::default().run_with_faults(graph, cfg, plan)?
            }
            Platform::GraphMat => {
                assert!(
                    plan.crashes.is_empty() && plan.slowdowns.is_empty(),
                    "fault injection is not modeled for GraphMat"
                );
                GraphMatPlatform::default().run(graph, cfg)?
            }
            Platform::Grape => GrapePlatform::default().run_with_faults(graph, cfg, plan)?,
            Platform::GraphX => GraphXPlatform::default().run_with_faults(graph, cfg, plan)?,
        }
    };
    let meta = JobMeta {
        job_id: cfg.job_id.clone(),
        platform: platform.name().into(),
        algorithm: cfg.algorithm.name().into(),
        dataset: cfg.dataset.clone(),
        nodes: cfg.nodes as u32,
        model: String::new(),
    };
    let report = process.evaluate(&run, meta);
    let breakdown = DomainBreakdown::from_archive(&report.archive)
        .expect("archive of a simulated run always has a runtime");
    Ok(ExperimentResult {
        report,
        run,
        breakdown,
    })
}

/// Default worker count for [`par_map`]: the machine's available
/// parallelism, or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Deterministic parallel map: applies `f` to every item on up to
/// `threads` scoped worker threads and returns the results **in input
/// order**.
///
/// Work is claimed through an atomic cursor, so the assignment of items to
/// threads varies between runs — but each result depends only on its item,
/// and results are placed by index, so the output is bit-identical to the
/// sequential `items.iter().map(f)` regardless of thread count. Built on
/// [`std::thread::scope`]; no external dependencies.
///
/// # Panics
/// Propagates a panic from `f` after all workers have stopped.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in chunks.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Runs a batch of `(platform, config)` experiments on `graph` in
/// parallel ([`par_map`] over [`default_threads`]), preserving input
/// order. Each experiment is independent and internally deterministic, so
/// the batch output matches a sequential run bit-for-bit.
pub fn run_experiments(
    jobs: &[(Platform, JobConfig)],
    graph: &Graph,
) -> Vec<Result<ExperimentResult, SimError>> {
    par_map(jobs, default_threads(), |(platform, cfg)| {
        run_experiment(*platform, graph, cfg)
    })
}

/// The paper's dg1000 experiment on the full down-sampled graph
/// (100 k vertices): the configuration behind Figures 5–8. Takes a few
/// seconds of real time per platform.
pub fn dg1000(platform: Platform) -> ExperimentResult {
    let graph = calibration::dg_graph();
    let cfg = platform.dg1000_job();
    run_experiment(platform, &graph, &cfg).expect("dg1000 simulation is well-formed")
}

/// The paper's Giraph dg1000 experiment at **full scale**: the algorithm
/// executes on the real dataset volume (103 M vertices, 927 M edges) with
/// `scale_factor = 1.0` — no down-sampling, no demand scaling. The graph
/// is built out-CSR-only via the streaming generator and BFS runs through
/// the flat frontier engine, so the dominant costs are one generator
/// sweep and one O(n + m) traversal; expect minutes of wall-clock and a
/// ~7 GB high-water mark.
///
/// Only Giraph is supported: PowerGraph's vertex-cut partitioner and the
/// GAS gather phase need the reverse CSR, which the out-only full-scale
/// graph deliberately does not carry.
///
/// # Panics
/// For platforms other than [`Platform::Giraph`].
pub fn dg1000_full() -> ExperimentResult {
    dg1000_full_sized(calibration::DG_FULL_VERTICES)
}

/// [`dg1000_full`] with an adjustable vertex count, for smoke runs that
/// exercise the same streaming-generation + flat-BFS path at a fraction of
/// the wall-clock. Edges keep the Datagen 9:1 ratio and the scale factor
/// is adjusted so the job still emulates the 1.03e9-element dataset; at
/// [`calibration::DG_FULL_VERTICES`] the factor is exactly 1.0.
pub fn dg1000_full_sized(vertices: u32) -> ExperimentResult {
    let _span = granula_trace::span!("experiment", "dg1000_full giraph");
    let graph = {
        let _span = granula_trace::span!("experiment", "dg1000_full.generate");
        gpsim_graph::gen::datagen_like_full(&gpsim_graph::gen::GenConfig {
            vertices,
            edges: vertices as u64 * 9,
            alpha: 2.2,
            seed: calibration::DG_SEED,
        })
    };
    let mut cfg = calibration::giraph_dg1000_job();
    cfg.job_id = "giraph-bfs-dg1000-full".into();
    cfg.scale_factor = 1.03e9 / (vertices as f64 * 10.0);
    run_experiment(Platform::Giraph, &graph, &cfg).expect("dg1000 simulation is well-formed")
}

/// A fast variant of [`dg1000`] on a smaller logical graph with the scale
/// factor adjusted to keep emulating the full dataset. Used by tests.
pub fn dg1000_quick(platform: Platform, vertices: u32) -> ExperimentResult {
    let (graph, scale) = calibration::dg_graph_small(vertices, calibration::DG_SEED);
    let mut cfg = platform.dg1000_job();
    cfg.scale_factor = scale;
    run_experiment(platform, &graph, &cfg).expect("dg1000 simulation is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PAPER;
    use crate::metrics::Phase;

    #[test]
    fn quick_giraph_experiment_has_paper_shape() {
        let r = dg1000_quick(Platform::Giraph, 8_000);
        let b = &r.breakdown;
        // Shape targets (§4.2): every phase substantial; I/O largest.
        let setup = b.fraction(Phase::Setup);
        let io = b.fraction(Phase::InputOutput);
        let proc_ = b.fraction(Phase::Processing);
        assert!(setup > 0.10 && setup < 0.55, "setup {setup}");
        assert!(io > 0.25 && io < 0.60, "io {io}");
        assert!(proc_ > 0.08 && proc_ < 0.50, "proc {proc_}");
        assert!(io > proc_, "I/O should exceed processing: {io} vs {proc_}");
        // Total within 2x of the paper's 81.59 s.
        assert!(
            b.total_s() > PAPER.giraph_total_s / 2.0 && b.total_s() < PAPER.giraph_total_s * 2.0,
            "total {}",
            b.total_s()
        );
    }

    #[test]
    fn quick_powergraph_experiment_is_io_dominated() {
        let r = dg1000_quick(Platform::PowerGraph, 8_000);
        let b = &r.breakdown;
        let io = b.fraction(Phase::InputOutput);
        let proc_ = b.fraction(Phase::Processing);
        assert!(io > 0.85, "io {io}");
        assert!(proc_ < 0.10, "proc {proc_}");
        assert!(
            b.total_s() > PAPER.powergraph_total_s / 2.0
                && b.total_s() < PAPER.powergraph_total_s * 2.0,
            "total {}",
            b.total_s()
        );
    }

    #[test]
    fn powergraph_is_much_slower_than_giraph_end_to_end() {
        // The paper's headline comparison: PowerGraph processes faster but
        // its sequential loader makes the end-to-end job ~5x slower.
        let g = dg1000_quick(Platform::Giraph, 5_000);
        let p = dg1000_quick(Platform::PowerGraph, 5_000);
        assert!(
            p.breakdown.total_us > 3 * g.breakdown.total_us,
            "PowerGraph {}s vs Giraph {}s",
            p.breakdown.total_s(),
            g.breakdown.total_s()
        );
        assert!(
            p.breakdown.processing_us < g.breakdown.processing_us,
            "PowerGraph processing should be faster"
        );
    }

    #[test]
    fn fault_experiment_surfaces_recovery_overhead() {
        use crate::analysis::{find_choke_points, ChokePointConfig, ChokePointKind};
        use gpsim_cluster::NodeId;

        let (graph, scale) = crate::calibration::dg_graph_small(4_000, crate::calibration::DG_SEED);
        for platform in [
            Platform::Giraph,
            Platform::PowerGraph,
            Platform::Grape,
            Platform::GraphX,
        ] {
            let mut cfg = match platform {
                Platform::Giraph => crate::calibration::giraph_dg1000_job(),
                Platform::Grape => crate::calibration::grape_dg1000_job(),
                Platform::GraphX => crate::calibration::graphx_dg1000_job(),
                _ => crate::calibration::powergraph_dg1000_job(),
            };
            cfg.scale_factor = scale;
            let healthy = run_experiment(platform, &graph, &cfg).unwrap();
            let plan = FaultPlan::new().crash(NodeId(2), healthy.run.makespan_us as f64 * 0.4);
            let interval = (platform == Platform::Giraph).then_some(2);
            let faulty =
                run_experiment_with_faults(platform, &graph, &cfg, &plan, interval).unwrap();
            assert!(
                faulty.run.makespan_us > healthy.run.makespan_us,
                "{}: recovery must cost time",
                platform.name()
            );
            assert!(
                faulty.report.assembly_warnings.is_empty(),
                "{}: {:?}",
                platform.name(),
                &faulty.report.assembly_warnings[..3.min(faulty.report.assembly_warnings.len())]
            );
            let cps = find_choke_points(&faulty.report.archive, &ChokePointConfig::default());
            let rec = cps
                .iter()
                .find_map(|c| match &c.kind {
                    ChokePointKind::RecoveryOverhead { worker, wasted_us } => {
                        Some((worker.clone(), *wasted_us))
                    }
                    _ => None,
                })
                .unwrap_or_else(|| panic!("{}: no RecoveryOverhead in {cps:?}", platform.name()));
            assert_eq!(rec.0, "node302", "{}", platform.name());
            assert!(rec.1 > 0, "{}", platform.name());
        }
    }

    #[test]
    fn empty_fault_plan_matches_plain_experiment() {
        let (graph, scale) = crate::calibration::dg_graph_small(3_000, crate::calibration::DG_SEED);
        let mut cfg = crate::calibration::giraph_dg1000_job();
        cfg.scale_factor = scale;
        let plain = run_experiment(Platform::Giraph, &graph, &cfg).unwrap();
        let faulted =
            run_experiment_with_faults(Platform::Giraph, &graph, &cfg, &FaultPlan::new(), None)
                .unwrap();
        assert_eq!(plain.run.makespan_us, faulted.run.makespan_us);
        assert_eq!(plain.run.events, faulted.run.events);
        assert_eq!(plain.breakdown, faulted.breakdown);
    }

    #[test]
    fn par_map_preserves_order_and_determinism() {
        let items: Vec<u64> = (0..37).collect();
        let f = |x: &u64| x * x + 1;
        let seq: Vec<u64> = items.iter().map(f).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, f), seq, "threads={threads}");
        }
        assert!(par_map(&[] as &[u64], 4, f).is_empty());
    }

    #[test]
    fn parallel_experiments_match_sequential_bitwise() {
        let graph = crate::calibration::dg_graph_small(3_000, crate::calibration::DG_SEED).0;
        let jobs: Vec<(Platform, gpsim_platforms::JobConfig)> = [
            Platform::Giraph,
            Platform::PowerGraph,
            Platform::GraphMat,
            Platform::Grape,
            Platform::GraphX,
        ]
        .into_iter()
        .map(|p| {
            let mut cfg = p.dg1000_job();
            cfg.scale_factor =
                crate::calibration::dg_graph_small(3_000, crate::calibration::DG_SEED).1;
            (p, cfg)
        })
        .collect();
        let parallel = run_experiments(&jobs, &graph);
        let sequential: Vec<_> = jobs
            .iter()
            .map(|(p, cfg)| run_experiment(*p, &graph, cfg))
            .collect();
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.breakdown.total_us, s.breakdown.total_us);
            assert_eq!(p.run.makespan_us, s.run.makespan_us);
            assert_eq!(p.run.events.len(), s.run.events.len());
        }
    }

    #[test]
    fn experiments_validate_cleanly() {
        for platform in [
            Platform::Giraph,
            Platform::PowerGraph,
            Platform::GraphMat,
            Platform::Grape,
            Platform::GraphX,
        ] {
            let r = dg1000_quick(platform, 4_000);
            assert!(
                r.report.validation.is_clean(),
                "{}: {:?}",
                platform.name(),
                &r.report.validation.issues[..3.min(r.report.validation.issues.len())]
            );
            assert!(r.report.assembly_warnings.is_empty());
        }
    }
}
