//! A Graphalytics-style benchmark-suite runner.
//!
//! The paper positions Granula as the fine-grained complement to the
//! authors' LDBC Graphalytics benchmark (paper reference 18): Graphalytics ranks platforms,
//! Granula explains the ranking. This module runs the cross product of
//! platforms × algorithms, archives every job, verifies every output
//! against the sequential references, and reports both the coarse ranking
//! *and* the domain decomposition that explains it.

use gpsim_graph::gen::with_uniform_weights;
use gpsim_graph::Graph;
use gpsim_platforms::{common::reference_output, Algorithm};
use granula_archive::ArchiveStore;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::experiment::{run_experiment, Platform};
use crate::metrics::Phase;

/// Configuration of one suite run.
#[derive(Debug, Clone)]
pub struct BenchmarkSuite {
    /// Platforms to compare.
    pub platforms: Vec<Platform>,
    /// Algorithms to run.
    pub algorithms: Vec<Algorithm>,
    /// Cluster size.
    pub nodes: u16,
    /// Logical graph size (volumes are scaled to dg1000 regardless).
    pub vertices: u32,
    /// Graph seed.
    pub seed: u64,
}

impl Default for BenchmarkSuite {
    fn default() -> Self {
        BenchmarkSuite {
            platforms: vec![Platform::Giraph, Platform::PowerGraph, Platform::GraphMat],
            algorithms: vec![
                Algorithm::Bfs { source: 1 },
                Algorithm::PageRank { iterations: 10 },
                Algorithm::Wcc,
                Algorithm::Cdlp { iterations: 5 },
                Algorithm::Sssp { source: 1 },
            ],
            nodes: 8,
            vertices: 10_000,
            seed: calibration::DG_SEED,
        }
    }
}

/// One completed benchmark job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRow {
    /// Platform name.
    pub platform: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Total runtime, µs.
    pub total_us: u64,
    /// Processing time `Tp`, µs — the Graphalytics ranking metric.
    pub processing_us: u64,
    /// I/O time `Td`, µs.
    pub io_us: u64,
    /// Setup time `Ts`, µs.
    pub setup_us: u64,
    /// Iterations executed.
    pub iterations: u32,
    /// Output matched the sequential reference implementation.
    pub validated: bool,
}

/// The outcome of a suite run.
#[derive(Debug)]
pub struct BenchmarkReport {
    /// One row per (platform, algorithm).
    pub rows: Vec<BenchmarkRow>,
    /// Every job's archive, for fine-grained follow-up.
    pub store: ArchiveStore,
}

impl BenchmarkReport {
    /// The platform with the smallest `metric` for an algorithm.
    pub fn winner(&self, algorithm: &str, metric: fn(&BenchmarkRow) -> u64) -> Option<&str> {
        self.rows
            .iter()
            .filter(|r| r.algorithm == algorithm)
            .min_by_key(|r| metric(r))
            .map(|r| r.platform.as_str())
    }

    /// Renders the report as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{:<12} {:<10} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}\n",
            "platform", "algorithm", "total", "setup", "io", "proc", "iters", "valid"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:<10} {:>8.1}s {:>8.1}s {:>8.1}s {:>8.1}s {:>7} {:>6}\n",
                r.platform,
                r.algorithm,
                r.total_us as f64 / 1e6,
                r.setup_us as f64 / 1e6,
                r.io_us as f64 / 1e6,
                r.processing_us as f64 / 1e6,
                r.iterations,
                if r.validated { "yes" } else { "NO" },
            ));
        }
        out
    }
}

impl BenchmarkSuite {
    /// Runs the full cross product.
    pub fn run(&self) -> BenchmarkReport {
        let (graph, scale) = calibration::dg_graph_small(self.vertices, self.seed);
        let weighted = with_uniform_weights(&graph, 4.0, self.seed);
        let mut rows = Vec::new();
        let mut store = ArchiveStore::new();
        for &platform in &self.platforms {
            for &algorithm in &self.algorithms {
                let g: &Graph = if matches!(algorithm, Algorithm::Sssp { .. }) {
                    &weighted
                } else {
                    &graph
                };
                let mut cfg = platform.dg1000_job();
                cfg.algorithm = algorithm;
                cfg.nodes = self.nodes;
                cfg.scale_factor = scale;
                cfg.job_id = format!(
                    "suite-{}-{}",
                    platform.name().to_lowercase(),
                    algorithm.name().to_lowercase()
                );
                let result =
                    run_experiment(platform, g, &cfg).expect("suite simulations are well-formed");
                let validated = result.run.output.matches(&reference_output(g, algorithm));
                let b = &result.breakdown;
                rows.push(BenchmarkRow {
                    platform: platform.name().into(),
                    algorithm: algorithm.name().into(),
                    total_us: b.total_us,
                    processing_us: b.phase_us(Phase::Processing),
                    io_us: b.phase_us(Phase::InputOutput),
                    setup_us: b.phase_us(Phase::Setup),
                    iterations: result.run.iterations,
                    validated,
                });
                store
                    .add(result.report.archive)
                    .expect("suite job ids are unique per (platform, algorithm)");
            }
        }
        BenchmarkReport { rows, store }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_suite() -> BenchmarkSuite {
        BenchmarkSuite {
            platforms: vec![Platform::Giraph, Platform::PowerGraph],
            algorithms: vec![Algorithm::Bfs { source: 1 }, Algorithm::Wcc],
            nodes: 4,
            vertices: 2_000,
            seed: 9,
        }
    }

    #[test]
    fn suite_runs_cross_product_and_validates() {
        let report = small_suite().run();
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|r| r.validated), "{report:?}");
        assert_eq!(report.store.len(), 4);
    }

    #[test]
    fn coarse_and_fine_rankings_differ() {
        // The paper's motivating split: PowerGraph wins processing,
        // Giraph wins end-to-end.
        let report = small_suite().run();
        assert_eq!(
            report.winner("BFS", |r| r.processing_us),
            Some("PowerGraph")
        );
        assert_eq!(report.winner("BFS", |r| r.total_us), Some("Giraph"));
    }

    #[test]
    fn report_renders_every_row() {
        let report = small_suite().run();
        let text = report.render_text();
        assert_eq!(text.lines().count(), 5); // header + 4 rows
        assert!(text.contains("Giraph"));
        assert!(text.contains("WCC"));
    }

    #[test]
    fn archives_in_store_are_queryable() {
        let report = small_suite().run();
        let archive = report.store.get("suite-giraph-bfs").expect("archived");
        assert!(archive.total_runtime_us().unwrap() > 0);
        assert_eq!(archive.meta.algorithm, "BFS");
    }
}
