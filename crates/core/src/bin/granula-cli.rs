//! `granula-cli` — drive the Granula pipeline from the command line.
//!
//! ```text
//! granula-cli run       --platform giraph --algorithm bfs --out a.json [--report r.html]
//! granula-cli inspect   a.json [--depth 3]
//! granula-cli query     a.json "GiraphJob/ProcessGraph/Superstep" [--info Duration]
//! granula-cli breakdown a.json
//! granula-cli chokepoints a.json
//! granula-cli diagnose  a.json
//! granula-cli regression baseline.json candidate.json [--tolerance 0.10]
//! ```
//!
//! Archives are the standardized JSON envelopes of `granula-archive`; every
//! subcommand other than `run` operates on shared archives, which is the
//! collaboration workflow the paper's requirement R2 calls for.

use std::fs;
use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_platforms::{Algorithm, JobConfig};
use granula::analysis::{diagnose, find_choke_points, ChokePointConfig, ChokePointKind};
use granula::experiment::{run_experiment, Platform};
use granula::metrics::{DomainBreakdown, Phase};
use granula::regression::RegressionSuite;
use granula_archive::{
    from_json, to_json_pretty, ArchiveStore, JobArchive, LoadConfig, Query, QueryEngine, QueryMode,
    ServeOptions, Server, ShardedEngine,
};
use granula_regress::{analyze, render_text, History, Status, Tolerance};
use granula_viz::tree::{render_operation_tree, render_ops};
use granula_viz::trend::{render_trend_svg, TrendChart};

/// A CLI failure with a process exit code. Most errors are operational
/// (code 1); integrity verdicts from `archive fsck` use dedicated codes
/// so CI and operators can gate on *what* failed:
/// 2 = damaged but partially recoverable, 3 = total loss.
struct CliError {
    code: u8,
    message: String,
}

impl CliError {
    fn with_code(code: u8, message: impl Into<String>) -> Self {
        CliError {
            code,
            message: message.into(),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 1, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            code: 1,
            message: message.to_string(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]).map_err(CliError::from),
        Some("inspect") => cmd_inspect(&args[1..]).map_err(CliError::from),
        Some("query") => cmd_query(&args[1..]).map_err(CliError::from),
        Some("breakdown") => cmd_breakdown(&args[1..]).map_err(CliError::from),
        Some("chokepoints") => cmd_chokepoints(&args[1..]).map_err(CliError::from),
        Some("diagnose") => cmd_diagnose(&args[1..]).map_err(CliError::from),
        Some("regression") => cmd_regression(&args[1..]).map_err(CliError::from),
        Some("diff") => cmd_diff(&args[1..]).map_err(CliError::from),
        Some("model") => cmd_model(&args[1..]).map_err(CliError::from),
        Some("suite") => cmd_suite(&args[1..]).map_err(CliError::from),
        Some("trace") => cmd_trace(&args[1..]).map_err(CliError::from),
        Some("archive") => cmd_archive(&args[1..]),
        Some("regress") => cmd_regress(&args[1..]).map_err(CliError::from),
        Some("serve") => cmd_serve(&args[1..]).map_err(CliError::from),
        Some("loadgen") => cmd_loadgen(&args[1..]).map_err(CliError::from),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::from(format!(
            "unknown subcommand `{other}` (try `help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError { code, message }) => {
            eprintln!("error: {message}");
            ExitCode::from(code.max(1))
        }
    }
}

fn print_usage() {
    println!(
        "granula-cli — fine-grained performance analysis of graph-processing platforms\n\n\
         subcommands:\n\
         \x20 run        --platform <giraph|powergraph|graphmat|grape|graphx> [--algorithm <bfs|pagerank|wcc|cdlp|sssp>]\n\
         \x20            [--vertices N] [--nodes K] [--seed S] --out <archive.json> [--report <report.html>]\n\
         \x20 inspect    <archive.json> [--depth N]\n\
         \x20 query      <archive.json> <path-query> [--info <name>]\n\
         \x20 breakdown  <archive.json>\n\
         \x20 chokepoints <archive.json>\n\
         \x20 diagnose   <archive.json>\n\
         \x20 regression <baseline.json> <candidate.json> [--tolerance 0.10]\n\
         \x20 diff       <baseline.json> <candidate.json> [--min-delta-ms 50] [--limit 20]\n\
         \x20 model      <giraph|powergraph|graphmat|grape|graphx> [--out model.json]\n\
         \x20 suite      --out-dir <dir> [--vertices N] [--nodes K]\n\
         \x20 trace      <quickstart|fig5> [--out trace.json] [--metrics metrics.txt]\n\
         \x20 archive    save  <store.gar> <archive.json> [more.json ...]\n\
         \x20 archive    query <store.gar> <job-id|*> <path-query> [--find-all] [--explain]\n\
         \x20 archive    stat  <store.gar>\n\
         \x20 archive    fsck  <store.gar> [--repair] [--out <repaired.gar>]\n\
         \x20 archive    fuzz  <store.gar> [--mutations 1000] [--seed 42]\n\
         \x20 regress    <history-dir> [--current <store.gar>] [--out regress.json] [--svg trend.svg]\n\
         \x20            [--tolerance 0.02] [--alpha 1e-3] [--window 4] [--label <text>]\n\
         \x20 serve      <fleet.gar> [more.gar ...] [--addr 127.0.0.1:7071] [--shards 8]\n\
         \x20            [--resident 64] [--cache 256]\n\
         \x20 loadgen    --addr <host:port> [--clients 8] [--requests 500] [--batch 8]\n\
         \x20            [--jobs id,id,...] [--out BENCH_serve.json]\n\n\
         exit codes: 0 ok | 1 error | 2 fsck: archive damaged | 3 fsck: total loss"
    );
}

/// Pulls `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The `index`-th positional argument: flags and the values that follow
/// them are skipped, so `regression --tolerance 0.2 a.json b.json` yields
/// `a.json` at index 0.
fn positional(args: &[String], index: usize) -> Option<&String> {
    let mut seen = 0;
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2; // skip the flag and its value
            continue;
        }
        if seen == index {
            return Some(&args[i]);
        }
        seen += 1;
        i += 1;
    }
    None
}

fn load_archive(path: &str) -> Result<JobArchive, String> {
    let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let platform = match flag(args, "--platform").as_deref() {
        Some("giraph") => Platform::Giraph,
        Some("powergraph") => Platform::PowerGraph,
        Some("graphmat") => Platform::GraphMat,
        Some("grape") => Platform::Grape,
        Some("graphx") => Platform::GraphX,
        Some(other) => return Err(format!("unknown platform `{other}`")),
        None => return Err("--platform is required".into()),
    };
    let vertices: u32 = flag(args, "--vertices")
        .map(|v| v.parse().map_err(|e| format!("--vertices: {e}")))
        .transpose()?
        .unwrap_or(20_000);
    let nodes: u16 = flag(args, "--nodes")
        .map(|v| v.parse().map_err(|e| format!("--nodes: {e}")))
        .transpose()?
        .unwrap_or(8);
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let algorithm = match flag(args, "--algorithm").as_deref() {
        None | Some("bfs") => Algorithm::Bfs { source: 1 },
        Some("pagerank") => Algorithm::PageRank { iterations: 10 },
        Some("wcc") => Algorithm::Wcc,
        Some("cdlp") => Algorithm::Cdlp { iterations: 5 },
        Some("sssp") => Algorithm::Sssp { source: 1 },
        Some(other) => return Err(format!("unknown algorithm `{other}`")),
    };
    let out = flag(args, "--out").ok_or("--out is required")?;

    println!(
        "running {} {} on {} nodes ({} vertices, seed {seed}) ...",
        platform.name(),
        algorithm.name(),
        nodes,
        vertices
    );
    let graph = if matches!(algorithm, Algorithm::Sssp { .. }) {
        gpsim_graph::gen::with_uniform_weights(
            &datagen_like(&GenConfig::datagen(vertices, seed)),
            4.0,
            seed,
        )
    } else {
        datagen_like(&GenConfig::datagen(vertices, seed))
    };
    let costs = match platform {
        Platform::Giraph => granula::calibration::giraph_costs(),
        Platform::PowerGraph => granula::calibration::powergraph_costs(),
        Platform::GraphMat => granula::calibration::graphmat_costs(),
        Platform::Grape => granula::calibration::grape_costs(),
        Platform::GraphX => granula::calibration::graphx_costs(),
    };
    let cfg = JobConfig::new(
        format!(
            "cli-{}-{}",
            platform.name().to_lowercase(),
            algorithm.name().to_lowercase()
        ),
        format!("datagen-{vertices}"),
        algorithm,
        nodes,
        costs,
    )
    .with_scale(1.03e9 / (vertices as f64 * 10.0));

    let result = run_experiment(platform, &graph, &cfg).map_err(|e| e.to_string())?;
    let json = to_json_pretty(&result.report.archive).map_err(|e| e.to_string())?;
    fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "archived {} operations / {} infos to {out} ({} bytes); validation {}",
        result.report.archive.num_operations(),
        result.report.archive.num_infos(),
        json.len(),
        if result.report.validation.is_clean() {
            "clean"
        } else {
            "has issues"
        }
    );

    if let Some(report_path) = flag(args, "--report") {
        let html = granula_viz::report::html_report(&result.report.archive, &result.report.env);
        fs::write(&report_path, html).map_err(|e| format!("writing {report_path}: {e}"))?;
        println!("HTML report written to {report_path}");
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("usage: inspect <archive.json> [--depth N]")?;
    let depth: usize = flag(args, "--depth")
        .map(|v| v.parse().map_err(|e| format!("--depth: {e}")))
        .transpose()?
        .unwrap_or(2);
    let archive = load_archive(path)?;
    let meta = &archive.meta;
    println!(
        "{}: {} on {} ({} nodes), model `{}`",
        meta.job_id, meta.algorithm, meta.platform, meta.nodes, meta.model
    );
    println!(
        "{} operations, {} infos, total runtime {:.2}s\n",
        archive.num_operations(),
        archive.num_infos(),
        archive.total_runtime_us().unwrap_or(0) as f64 / 1e6
    );
    print!("{}", render_operation_tree(&archive.tree, depth));
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("usage: query <archive.json> <query>")?;
    let text = positional(args, 1).ok_or("usage: query <archive.json> <query>")?;
    let archive = load_archive(path)?;
    let query = Query::parse(text).map_err(|e| e.to_string())?;
    let mut hits = query.select(&archive.tree);
    if hits.is_empty() {
        hits = query.find_all(&archive.tree);
        if !hits.is_empty() {
            println!("(no absolute-path match; showing find-all results)");
        }
    }
    let info = flag(args, "--info");
    println!("{} operations match `{query}`:", hits.len());
    for id in hits {
        let op = archive.tree.op(id);
        match &info {
            Some(name) => println!(
                "  {:<40} {name}={:?}",
                op.label(),
                op.info_value(name)
                    .cloned()
                    .unwrap_or(granula_model::InfoValue::Text("-".into()))
            ),
            None => println!(
                "  {:<40} duration {:.3}s, {} infos",
                op.label(),
                op.duration_us().unwrap_or(0) as f64 / 1e6,
                op.infos.len()
            ),
        }
    }
    Ok(())
}

fn cmd_breakdown(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("usage: breakdown <archive.json>")?;
    let archive = load_archive(path)?;
    let b = DomainBreakdown::from_archive(&archive).ok_or("archive has no runtime")?;
    println!("total runtime: {:.2}s", b.total_s());
    for phase in [Phase::Setup, Phase::InputOutput, Phase::Processing] {
        println!(
            "  {:<14} {:>9.2}s  ({:>5.1}%)",
            phase.label(),
            b.phase_us(phase) as f64 / 1e6,
            100.0 * b.fraction(phase)
        );
    }
    Ok(())
}

fn cmd_chokepoints(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("usage: chokepoints <archive.json>")?;
    let archive = load_archive(path)?;
    let findings = find_choke_points(&archive, &ChokePointConfig::default());
    if findings.is_empty() {
        println!("no choke points above thresholds");
        return Ok(());
    }
    for c in findings.iter().take(10) {
        let kind = match &c.kind {
            ChokePointKind::DominantFraction { fraction } => {
                format!("dominates parent ({:.0}%)", fraction * 100.0)
            }
            ChokePointKind::LatencyBound { cpu_mean } => {
                format!("latency-bound ({cpu_mean:.2} busy cores)")
            }
            ChokePointKind::Imbalance {
                max_over_mean,
                actors,
            } => {
                format!("imbalance across {actors} actors (max/mean {max_over_mean:.2})")
            }
            ChokePointKind::RecoveryOverhead { worker, wasted_us } => {
                format!(
                    "recovery after losing {worker} ({:.1} s wasted)",
                    *wasted_us as f64 / 1e6
                )
            }
        };
        println!(
            "severity {:>5.1}%  {:<46} {}",
            c.severity * 100.0,
            c.label,
            kind
        );
    }
    Ok(())
}

fn cmd_diagnose(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("usage: diagnose <archive.json>")?;
    let archive = load_archive(path)?;
    // Offline archives carry no assembly warnings; diagnose from structure.
    let report = diagnose(&archive, &[]);
    println!("healthy: {}", report.is_healthy());
    println!("job completed: {}", report.job_completed);
    if !report.unclosed.is_empty() {
        println!("unclosed operations:");
        for label in &report.unclosed {
            println!("  {label}");
        }
    }
    if let Some(node) = report.suspected_node {
        println!("suspected node: {node}");
    }
    Ok(())
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let out_dir = flag(args, "--out-dir").ok_or("--out-dir is required")?;
    let mut suite = granula::BenchmarkSuite::default();
    if let Some(v) = flag(args, "--vertices") {
        suite.vertices = v.parse().map_err(|e| format!("--vertices: {e}"))?;
    }
    if let Some(n) = flag(args, "--nodes") {
        suite.nodes = n.parse().map_err(|e| format!("--nodes: {e}"))?;
    }
    println!(
        "running {} jobs ({} platforms x {} algorithms) ...",
        suite.platforms.len() * suite.algorithms.len(),
        suite.platforms.len(),
        suite.algorithms.len()
    );
    let report = suite.run();
    print!("{}", report.render_text());
    fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    let mut written = 0;
    for archive in report.store.iter() {
        let path = format!("{out_dir}/{}.json", archive.meta.job_id);
        let json = to_json_pretty(archive).map_err(|e| e.to_string())?;
        fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        written += 1;
    }
    println!("{written} archives written to {out_dir}/ (inspect/query/diff them)");
    if report.rows.iter().any(|r| !r.validated) {
        return Err("some outputs failed validation".into());
    }
    Ok(())
}

fn cmd_model(args: &[String]) -> Result<(), String> {
    let model = match positional(args, 0).map(String::as_str) {
        Some("giraph") => granula::models::giraph_model(),
        Some("powergraph") => granula::models::powergraph_model(),
        Some("graphmat") => granula::models::graphmat_model(),
        Some("grape") => granula::models::grape_model(),
        Some("graphx") => granula::models::graphx_model(),
        Some(other) => return Err(format!("unknown model `{other}`")),
        None => {
            return Err(
                "usage: model <giraph|powergraph|graphmat|grape|graphx> [--out file]".into(),
            )
        }
    };
    print!("{}", granula_viz::tree::render_model(&model));
    if let Some(out) = flag(args, "--out") {
        let json = granula_model::model_to_json(&model).map_err(|e| e.to_string())?;
        fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("model written to {out} (shareable JSON)");
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let baseline = positional(args, 0).ok_or("usage: diff <baseline> <candidate>")?;
    let candidate = positional(args, 1).ok_or("usage: diff <baseline> <candidate>")?;
    let min_delta_ms: u64 = flag(args, "--min-delta-ms")
        .map(|v| v.parse().map_err(|e| format!("--min-delta-ms: {e}")))
        .transpose()?
        .unwrap_or(50);
    let limit: usize = flag(args, "--limit")
        .map(|v| v.parse().map_err(|e| format!("--limit: {e}")))
        .transpose()?
        .unwrap_or(20);
    let rows = granula_viz::diff_archives(
        &load_archive(baseline)?,
        &load_archive(candidate)?,
        min_delta_ms * 1_000,
    );
    print!("{}", granula_viz::render_diff(&rows, limit));
    Ok(())
}

/// `trace <experiment>` — run an experiment with the self-observability
/// layer enabled and export a Chrome trace-event JSON (load it in
/// `chrome://tracing` or Perfetto) plus a metrics snapshot.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let experiment = positional(args, 0)
        .map(String::as_str)
        .unwrap_or("quickstart");
    let out = flag(args, "--out").unwrap_or_else(|| "trace.json".into());

    granula_trace::reset();
    granula_trace::enable();
    let results = match experiment {
        "quickstart" => vec![granula::experiment::dg1000_quick(Platform::Giraph, 5_000)],
        "fig5" => {
            let platforms = [Platform::Giraph, Platform::PowerGraph];
            granula::experiment::par_map(&platforms, granula::experiment::default_threads(), |p| {
                granula::experiment::dg1000(*p)
            })
        }
        other => {
            granula_trace::disable();
            return Err(format!(
                "unknown experiment `{other}` (try quickstart or fig5)"
            ));
        }
    };
    // Drive the visualization stage (and the archive query path) so the
    // trace covers all four Granula sub-processes, not just P1-P3.
    let query = Query::parse("*/ProcessGraph").map_err(|e| e.to_string())?;
    for result in &results {
        let archive = &result.report.archive;
        let _ = query.find_all(&archive.tree);
        let _ = granula_viz::report::html_report(archive, &result.report.env);
    }
    granula_trace::disable();

    let spans = granula_trace::take_spans();
    let json = granula_trace::chrome_trace_json(&spans);
    fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;

    let mut stages: std::collections::BTreeMap<&str, usize> = Default::default();
    for s in &spans {
        *stages.entry(s.stage).or_default() += 1;
    }
    println!(
        "traced `{experiment}`: {} spans over {} stages -> {out} ({} bytes)",
        spans.len(),
        stages.len(),
        json.len()
    );
    for (stage, n) in &stages {
        println!("  {stage:<14} {n} spans");
    }
    let metrics = granula_trace::metrics_snapshot();
    match flag(args, "--metrics") {
        Some(path) => {
            fs::write(&path, &metrics).map_err(|e| format!("writing {path}: {e}"))?;
            println!("metrics snapshot -> {path}");
        }
        None => print!("{metrics}"),
    }
    Ok(())
}

/// `archive <save|query|stat>` — build, interrogate, and summarize
/// persistent binary archive stores (`.gar`). `save` packs shared JSON
/// envelopes into one indexed store; `query` serves path queries through
/// the indexed [`QueryEngine`]; `stat` reports per-job index shapes.
fn cmd_archive(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("save") => cmd_archive_save(&args[1..]).map_err(CliError::from),
        Some("query") => cmd_archive_query(&args[1..]).map_err(CliError::from),
        Some("stat") => cmd_archive_stat(&args[1..]).map_err(CliError::from),
        Some("fsck") => cmd_archive_fsck(&args[1..]),
        Some("fuzz") => cmd_archive_fuzz(&args[1..]).map_err(CliError::from),
        Some(other) => Err(CliError::from(format!(
            "unknown archive action `{other}` (try `help`)"
        ))),
        None => Err(CliError::from(
            "usage: archive <save|query|stat|fsck|fuzz> ...",
        )),
    }
}

fn cmd_archive_save(args: &[String]) -> Result<(), String> {
    let out = positional(args, 0).ok_or("usage: archive save <store.gar> <archive.json> ...")?;
    let mut store = ArchiveStore::new();
    let mut i = 1;
    while let Some(path) = positional(args, i) {
        let archive = load_archive(path)?;
        let job_id = archive.meta.job_id.clone();
        store
            .add(archive)
            .map_err(|e| format!("adding {path}: {e}"))?;
        println!("packed {path} (job `{job_id}`)");
        i += 1;
    }
    if store.is_empty() {
        return Err("usage: archive save <store.gar> <archive.json> ...".into());
    }
    store.save(out).map_err(|e| format!("writing {out}: {e}"))?;
    let bytes = fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("{} jobs -> {out} ({bytes} bytes)", store.len());
    Ok(())
}

fn cmd_archive_query(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: archive query <store.gar> <job-id|*> <query> [--find-all] [--explain]";
    let store_path = positional(args, 0).ok_or(USAGE)?;
    let job_pat = positional(args, 1).ok_or(USAGE)?;
    let text = positional(args, 2).ok_or(USAGE)?;
    let query = Query::parse(text).map_err(|e| e.to_string())?;
    let mode = if args.iter().any(|a| a == "--find-all") {
        QueryMode::FindAll
    } else {
        QueryMode::Select
    };
    let mut engine =
        QueryEngine::load(store_path).map_err(|e| format!("loading {store_path}: {e}"))?;
    let jobs: Vec<String> = engine
        .store()
        .iter()
        .map(|a| a.meta.job_id.clone())
        .filter(|id| job_pat == "*" || id == job_pat)
        .collect();
    if jobs.is_empty() {
        return Err(format!("no job matches `{job_pat}` in {store_path}"));
    }
    for job_id in jobs {
        if args.iter().any(|a| a == "--explain") {
            if let Some(plan) = engine.explain(&job_id, &query, mode) {
                println!("# {job_id}: plan = {plan}");
            }
        }
        let hits = engine
            .query(&job_id, &query, mode)
            .ok_or_else(|| format!("job `{job_id}` vanished from the store"))?;
        println!("{job_id}: {} operations match `{query}`", hits.len());
        let tree = &engine.store().get(&job_id).expect("job listed above").tree;
        print!("{}", render_ops(tree, &hits));
    }
    Ok(())
}

fn cmd_archive_stat(args: &[String]) -> Result<(), String> {
    let store_path = positional(args, 0).ok_or("usage: archive stat <store.gar>")?;
    let engine = QueryEngine::load(store_path).map_err(|e| format!("loading {store_path}: {e}"))?;
    println!(
        "{store_path}: {} jobs (format v{})",
        engine.store().len(),
        granula_archive::BIN_FORMAT_VERSION
    );
    for archive in engine.store().iter() {
        let meta = &archive.meta;
        let idx = engine.index(&meta.job_id).expect("every job is indexed");
        println!(
            "  {:<28} {} on {} | {} ops, {} infos | index: {} mission kinds, {} actor kinds, {} timestamped",
            meta.job_id,
            meta.algorithm,
            meta.platform,
            archive.num_operations(),
            archive.num_infos(),
            idx.num_mission_kinds(),
            idx.num_actor_kinds(),
            idx.num_timestamped()
        );
    }
    Ok(())
}

/// `archive fsck <store.gar>`: verifies every checksum of a `.gar` file
/// and reports, frame by frame, what a corrupted file still holds. The
/// last line of output is a machine-parseable summary
/// (`fsck: status=... key=value ...`), and the exit code is the verdict
/// CI and operators gate on: 0 clean, 2 damaged-but-recoverable, 3
/// total loss, 1 operational error (unreadable file, bad flags).
/// `--repair` writes the salvaged store (atomically, durably) and exits
/// zero as long as anything was recovered.
fn cmd_archive_fsck(args: &[String]) -> Result<(), CliError> {
    const USAGE: &str = "usage: archive fsck <store.gar> [--repair] [--out <repaired.gar>]";
    let store_path = positional(args, 0).ok_or(USAGE)?;
    let report = ArchiveStore::salvage(store_path).map_err(|e| format!("{store_path}: {e}"))?;
    print!("{store_path}: {}", report.render_text());
    let status = if report.clean {
        "clean"
    } else if report.is_total_loss() {
        "lost"
    } else {
        "corrupt"
    };
    println!(
        "fsck: status={status} file={store_path} recovered={} lost={} expected={} trailer={} run={}",
        report.recovered.len(),
        report.lost.len(),
        report
            .expected_jobs
            .map(|n| n.to_string())
            .unwrap_or_else(|| "?".to_string()),
        if report.trailer_intact { "intact" } else { "damaged" },
        if report.run_recovered { "yes" } else { "no" },
    );
    if report.clean {
        return Ok(());
    }
    if report.is_total_loss() {
        return Err(CliError::with_code(
            3,
            format!("{store_path}: total loss, nothing recoverable"),
        ));
    }
    if !args.iter().any(|a| a == "--repair") {
        return Err(CliError::with_code(
            2,
            format!(
                "{store_path} is corrupt ({} of {} job(s) recoverable; re-run with --repair to keep them)",
                report.recovered.len(),
                report
                    .expected_jobs
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "?".to_string()),
            ),
        ));
    }
    let out = flag(args, "--out").unwrap_or_else(|| store_path.clone());
    report
        .store
        .save(&out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "repaired -> {out}: kept {} job(s), dropped {}",
        report.recovered.len(),
        report.lost.len()
    );
    Ok(())
}

/// `archive fuzz <store.gar>`: the bounded-time corruption smoke. Loads
/// the store's bytes, applies N seeded mutations (truncations, bit
/// flips, torn tails), and feeds each corrupted copy to the strict
/// loader and the salvage path. Any panic aborts the process — the
/// absence of one over the run is the proof CI wants. Exits nonzero only
/// if a salvage "recovers" a job the pristine store never held.
fn cmd_archive_fuzz(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: archive fuzz <store.gar> [--mutations 1000] [--seed 42]";
    let store_path = positional(args, 0).ok_or(USAGE)?;
    let mutations: u64 = flag(args, "--mutations")
        .map(|v| v.parse().map_err(|e| format!("--mutations: {e}")))
        .transpose()?
        .unwrap_or(1000);
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let base = fs::read(store_path).map_err(|e| format!("reading {store_path}: {e}"))?;
    let pristine =
        granula_archive::store_from_bytes(&base).map_err(|e| format!("{store_path}: {e}"))?;
    let known: Vec<String> = pristine.iter().map(|a| a.meta.job_id.clone()).collect();
    let mut mutator = granula_archive::Mutator::new(seed);
    let (mut loaded, mut salvaged_some, mut rejected) = (0u64, 0u64, 0u64);
    for _ in 0..mutations {
        let (bytes, mutation) = mutator.mutate(&base);
        match granula_archive::store_from_bytes(&bytes) {
            Ok(_) => loaded += 1,
            Err(_) => {
                let r = granula_archive::salvage_from_bytes(&bytes);
                for id in &r.recovered {
                    if !known.contains(id) {
                        return Err(format!(
                            "mutation {mutation} fabricated job `{id}` out of corruption"
                        ));
                    }
                }
                if r.recovered.is_empty() && !r.run_recovered {
                    rejected += 1;
                } else {
                    salvaged_some += 1;
                }
            }
        }
    }
    println!(
        "fuzz {store_path}: {mutations} mutations (seed {seed}) | \
         {loaded} loaded clean, {salvaged_some} partially salvaged, {rejected} rejected | 0 panics"
    );
    Ok(())
}

/// `regress <history-dir>`: the continuous performance-regression
/// service. Ingests every `.gar` store in the directory as a time
/// series (ordered by run header), optionally appends the run under
/// test, and verdicts each per-job metric through the statistical
/// detector of `granula-regress`. Exits nonzero on a `regressed`
/// verdict so CI can gate on it.
fn cmd_regress(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: regress <history-dir> [--current <store.gar>] [--out regress.json] \
                         [--svg trend.svg] [--tolerance 0.02] [--alpha 1e-3] [--window 4] [--label <text>] \
                         [--scale-current <factor>]";
    let dir = positional(args, 0).ok_or(USAGE)?;
    let mut tol = Tolerance::default();
    if let Some(v) = flag(args, "--tolerance") {
        tol.rel = v.parse().map_err(|e| format!("--tolerance: {e}"))?;
    }
    if let Some(v) = flag(args, "--alpha") {
        tol.alpha = v.parse().map_err(|e| format!("--alpha: {e}"))?;
    }
    if let Some(v) = flag(args, "--window") {
        tol.window = v.parse().map_err(|e| format!("--window: {e}"))?;
    }
    let mut history = History::load_dir(dir).map_err(|e| format!("loading {dir}: {e}"))?;
    if let Some(current) = flag(args, "--current") {
        let mut store =
            ArchiveStore::load(&current).map_err(|e| format!("loading {current}: {e}"))?;
        // Deterministic slowdown injection, for smoke-testing the gate
        // itself (CI runs the fresh store twice: unscaled expecting `ok`,
        // scaled past the band expecting a nonzero exit).
        if let Some(factor) = flag(args, "--scale-current") {
            let factor: f64 = factor
                .parse()
                .map_err(|e| format!("--scale-current: {e}"))?;
            store = granula_regress::scaled_store(&store, factor);
        }
        if let Some(label) = flag(args, "--label") {
            let mut run = store.run().clone();
            run.label = label;
            store.set_run(run);
        }
        let source = std::path::Path::new(&current)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| current.clone());
        history.push_latest(store, source);
    }
    if history.is_empty() {
        return Err(format!("no .gar stores found under {dir}"));
    }
    let (report, analyzed) = analyze(&mut history, &tol);
    print!("{}", render_text(&report));
    let out = flag(args, "--out").unwrap_or_else(|| "regress.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    if let Some(svg_path) = flag(args, "--svg") {
        let charts: Vec<TrendChart> = analyzed
            .iter()
            .map(|a| {
                let mut chart =
                    TrendChart::new(format!("{} {}", a.series.job_id, a.series.metric), "us");
                for (i, value) in a.series.values.iter().enumerate() {
                    chart.push(report.runs[a.series.run_indexes[i]].run_id.clone(), *value);
                }
                let m = a.detection.baseline_mean;
                chart.band = Some((m * (1.0 - tol.rel), m * (1.0 + tol.rel)));
                chart.flagged = a.detection.first_offending;
                chart
            })
            .collect();
        fs::write(&svg_path, render_trend_svg(&charts))
            .map_err(|e| format!("writing {svg_path}: {e}"))?;
        println!("wrote {svg_path}");
    }
    if report.verdict == Status::Regressed {
        return Err("performance regression detected (see report above)".to_string());
    }
    Ok(())
}

/// `serve <fleet.gar ...>`: the long-lived archive daemon. Opens every
/// fleet file zero-copy (mmap + trailer extents; jobs decode on first
/// query), shards jobs by id, and serves the line protocol of
/// `granula_archive::serve` until a client sends `SHUTDOWN`. The first
/// stdout line (`serving N jobs ... on ADDR`) is flushed before the
/// accept loop starts, so wrappers can scrape the bound address when
/// `--addr` ends in `:0`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: serve <fleet.gar> [more.gar ...] [--addr host:port] \
                         [--shards N] [--resident N] [--cache N]";
    let mut options = ServeOptions::default();
    if let Some(v) = flag(args, "--shards") {
        options.shards = v.parse().map_err(|e| format!("--shards: {e}"))?;
    }
    if let Some(v) = flag(args, "--resident") {
        options.resident_capacity = v.parse().map_err(|e| format!("--resident: {e}"))?;
    }
    if let Some(v) = flag(args, "--cache") {
        options.result_capacity = v.parse().map_err(|e| format!("--cache: {e}"))?;
    }
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7071".to_string());
    let mut paths = Vec::new();
    let mut i = 0;
    while let Some(path) = positional(args, i) {
        paths.push(path.clone());
        i += 1;
    }
    if paths.is_empty() {
        return Err(USAGE.into());
    }
    let engine = Arc::new(
        ShardedEngine::open_fleet(&paths, options).map_err(|e| format!("opening fleet: {e}"))?,
    );
    let server =
        Server::bind(Arc::clone(&engine), &addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "serving {} jobs from {} file(s) over {} shards on {bound}",
        engine.len(),
        paths.len(),
        options.shards.max(1)
    );
    // Flush before blocking in accept: under a pipe stdout is
    // block-buffered, and wrappers scrape this line for the bound port.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| format!("serve loop: {e}"))?;
    println!("shutdown requested; daemon exiting");
    Ok(())
}

/// `loadgen`: many-client benchmark against a running daemon. Writes the
/// latency/throughput report (p50/p90/p99, requests/s) as JSON to
/// `--out` and prints a one-line summary. With no `--jobs`, asks the
/// daemon for its roster first.
fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    let mut config = LoadConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7071".to_string()),
        ..LoadConfig::default()
    };
    if let Some(v) = flag(args, "--clients") {
        config.clients = v.parse().map_err(|e| format!("--clients: {e}"))?;
    }
    if let Some(v) = flag(args, "--requests") {
        config.requests_per_client = v.parse().map_err(|e| format!("--requests: {e}"))?;
    }
    if let Some(v) = flag(args, "--batch") {
        config.batch = v.parse().map_err(|e| format!("--batch: {e}"))?;
    }
    if let Some(v) = flag(args, "--queries") {
        config.queries = v.split(';').map(str::to_string).collect();
    }
    config.jobs = match flag(args, "--jobs") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => {
            use std::io::{BufRead, BufReader};
            let stream = std::net::TcpStream::connect(&config.addr)
                .map_err(|e| format!("connect {}: {e}", config.addr))?;
            let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
            writer.write_all(b"JOBS\n").map_err(|e| e.to_string())?;
            let mut line = String::new();
            BufReader::new(stream)
                .read_line(&mut line)
                .map_err(|e| e.to_string())?;
            line.split_whitespace()
                .skip(2)
                .map(str::to_string)
                .collect()
        }
    };
    if config.jobs.is_empty() {
        return Err("daemon serves no jobs and --jobs was not given".into());
    }
    let report = granula_archive::run_load(&config)
        .map_err(|e| format!("load against {}: {e}", config.addr))?;
    println!(
        "loadgen {}: {} clients x batch {} -> {} requests in {:.2}s | {:.0} req/s | \
         p50 {}us p90 {}us p99 {}us max {}us | {} ok, {} nojob, {} err",
        config.addr,
        report.clients,
        report.batch,
        report.total_requests,
        report.elapsed_us as f64 / 1e6,
        report.throughput_rps,
        report.latency_us.p50,
        report.latency_us.p90,
        report.latency_us.p99,
        report.latency_us.max,
        report.ok,
        report.nojob,
        report.errors
    );
    let out = flag(args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    if report.errors > 0 {
        return Err(format!("{} requests failed", report.errors));
    }
    Ok(())
}

fn cmd_regression(args: &[String]) -> Result<(), String> {
    let baseline = positional(args, 0).ok_or("usage: regression <baseline> <candidate>")?;
    let candidate = positional(args, 1).ok_or("usage: regression <baseline> <candidate>")?;
    let tolerance: f64 = flag(args, "--tolerance")
        .map(|v| v.parse().map_err(|e| format!("--tolerance: {e}")))
        .transpose()?
        .unwrap_or(0.10);
    let mut suite = RegressionSuite::new(tolerance);
    suite.add_baseline(load_archive(baseline)?);
    let cand = load_archive(candidate)?;
    let report = suite
        .check(&cand)
        .ok_or("baseline and candidate do not share (platform, algorithm, dataset)")?;
    if report.passed() {
        println!("PASS: no phase regressed beyond {:.0}%", tolerance * 100.0);
    } else {
        println!("FAIL:");
        for r in &report.regressions {
            println!(
                "  {:<14} {:>9.2}s -> {:>9.2}s  ({:+.1}%)",
                r.subject,
                r.baseline_us as f64 / 1e6,
                r.candidate_us as f64 / 1e6,
                100.0 * r.change
            );
        }
    }
    for r in &report.improvements {
        println!(
            "  improved: {:<14} {:>9.2}s -> {:>9.2}s  ({:+.1}%)",
            r.subject,
            r.baseline_us as f64 / 1e6,
            r.candidate_us as f64 / 1e6,
            100.0 * r.change
        );
    }
    if report.passed() {
        Ok(())
    } else {
        Err("performance regression detected".into())
    }
}
