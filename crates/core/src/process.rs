//! The end-to-end evaluation process (paper §3.3, Figure 2).
//!
//! Four consecutive sub-processes: **P1 Modeling** (the analyst supplies a
//! [`PerformanceModel`]), **P2 Monitoring** (a platform run produces logs
//! and environment samples), **P3 Archiving** (events are filtered against
//! the model, assembled into an operation tree, metrics derived by rule,
//! resource usage mapped onto operations, everything stored in a
//! standardized archive), **P4 Visualization** (handled by `granula-viz`
//! over the archive). The `feedback` edge of Figure 2 is the
//! [`EvaluationReport`]: validation issues and assembly warnings tell the
//! analyst what to refine next iteration.

use gpsim_platforms::PlatformRun;
use granula_archive::{JobArchive, JobMeta};
use granula_model::{rules::derive_all_durations, PerformanceModel, RuleEngine, ValidationReport};
use granula_monitor::{
    Assembler, AssemblyWarning, EnvLog, EventFilter, ResourceKind, SkewCorrector,
};

/// The archive plus everything the analyst should feed back into modeling.
#[derive(Debug, Clone)]
pub struct EvaluationReport {
    /// The performance archive of the job (P3 output).
    pub archive: JobArchive,
    /// The environment log collected alongside.
    pub env: EnvLog,
    /// Model-conformance findings.
    pub validation: ValidationReport,
    /// Log-assembly repairs and gaps.
    pub assembly_warnings: Vec<AssemblyWarning>,
    /// Events retained by the model filter / events observed in total.
    pub events_kept: usize,
    /// Total events produced by monitoring before filtering.
    pub events_total: usize,
    /// Number of infos derived by the rule engine.
    pub infos_derived: usize,
}

impl EvaluationReport {
    /// Monitoring-data reduction achieved by the model filter — the
    /// coarse/fine cost lever of requirement R3.
    pub fn filter_ratio(&self) -> f64 {
        if self.events_total == 0 {
            return 1.0;
        }
        self.events_kept as f64 / self.events_total as f64
    }
}

/// One configured evaluation pipeline: a model plus assembly options.
#[derive(Debug, Clone)]
pub struct EvaluationProcess {
    /// The analyst's performance model (P1).
    pub model: PerformanceModel,
    /// Optional clock-skew correction applied before assembly.
    pub skew: SkewCorrector,
    /// Retain raw log lines in the archive (bigger but self-describing).
    pub keep_source_records: bool,
}

impl EvaluationProcess {
    /// Creates a process around a model.
    pub fn new(model: PerformanceModel) -> Self {
        EvaluationProcess {
            model,
            skew: SkewCorrector::new(),
            keep_source_records: false,
        }
    }

    /// Enables raw source-record retention.
    pub fn with_source_records(mut self) -> Self {
        self.keep_source_records = true;
        self
    }

    /// Runs P3 (archiving) over the output of a platform run (P2) and
    /// returns the archive plus the feedback for the next iteration.
    pub fn evaluate(&self, run: &PlatformRun, meta: JobMeta) -> EvaluationReport {
        let _span =
            granula_trace::span!("archiving", "evaluate {} ({})", meta.job_id, meta.platform);
        // Clock correction, then model-driven filtering.
        let mut events = run.events.clone();
        self.skew.correct_all(&mut events);
        let events_total = events.len();
        let filter = EventFilter::from_model(&self.model);
        let events = {
            let _span = granula_trace::span!("archiving", "filter_events {}", meta.job_id);
            filter.apply(events)
        };
        let events_kept = events.len();
        granula_trace::counter_add("archive.events_total", events_total as u64);
        granula_trace::counter_add("archive.events_kept", events_kept as u64);

        // Assembly into one operation tree.
        let assembler = if self.keep_source_records {
            Assembler::new().with_source_records()
        } else {
            Assembler::new()
        };
        let outcome = assembler.assemble(events);
        let mut tree = outcome.tree;

        // Derive metrics: durations everywhere, then the model's rules.
        let infos_derived = {
            let _span = granula_trace::span!("archiving", "derive_metrics {}", meta.job_id);
            let mut n = derive_all_durations(&mut tree);
            n += RuleEngine::apply(&self.model, &mut tree);
            n
        };

        // Map environment data onto operations.
        let mut env = EnvLog::new();
        env.extend(run.env_samples.iter().cloned());
        {
            let _span = granula_trace::span!("archiving", "map_environment {}", meta.job_id);
            env.map_to_operations(&mut tree, ResourceKind::Cpu);
        }

        // Validate against the model: the feedback edge.
        let validation = {
            let _span = granula_trace::span!("archiving", "validate {}", meta.job_id);
            granula_model::validate::validate(&self.model, &tree)
        };

        let meta = JobMeta {
            model: self.model.name.clone(),
            ..meta
        };
        EvaluationReport {
            archive: JobArchive::new(meta, tree),
            env,
            validation,
            assembly_warnings: outcome.warnings,
            events_kept,
            events_total,
            infos_derived,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{giraph_model, powergraph_model};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use gpsim_platforms::{Algorithm, CostModel, GiraphPlatform, JobConfig, PowerGraphPlatform};
    use granula_model::AbstractionLevel;

    fn giraph_run() -> PlatformRun {
        giraph_run_scaled(1.0)
    }

    fn giraph_run_scaled(scale: f64) -> PlatformRun {
        let g = datagen_like(&GenConfig::datagen(2_000, 5));
        let cfg = JobConfig::new(
            "g0",
            "dgt",
            Algorithm::Bfs { source: 1 },
            8,
            CostModel::giraph_like(),
        )
        .with_scale(scale);
        GiraphPlatform::default().run(&g, &cfg).unwrap()
    }

    fn meta() -> JobMeta {
        JobMeta {
            job_id: "g0".into(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: "dgt".into(),
            nodes: 8,
            model: String::new(),
        }
    }

    #[test]
    fn full_pipeline_produces_clean_archive() {
        let report = EvaluationProcess::new(giraph_model()).evaluate(&giraph_run(), meta());
        assert!(
            report.assembly_warnings.is_empty(),
            "{:?}",
            report.assembly_warnings
        );
        assert_eq!(report.validation.coverage(), 1.0);
        // Mandatory timestamps all present; no unmodeled operations.
        assert!(
            report.validation.is_clean(),
            "{:?}",
            &report.validation.issues[..5.min(report.validation.issues.len())]
        );
        assert!(report.archive.total_runtime_us().unwrap() > 0);
        assert!(report.infos_derived > 0);
        assert_eq!(report.archive.meta.model, "giraph-v4");
    }

    #[test]
    fn rules_derive_domain_durations_on_root() {
        let report = EvaluationProcess::new(giraph_model()).evaluate(&giraph_run(), meta());
        let job = report.archive.job().unwrap();
        for name in [
            "StartupDuration",
            "LoadDuration",
            "ProcessDuration",
            "CleanupDuration",
        ] {
            assert!(job.info_f64(name).is_some(), "missing {name}");
        }
        // Fractions derived on the phases.
        let tree = &report.archive.tree;
        let root = tree.root().unwrap();
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        let f = tree.op(load).info_f64("RuntimeFraction").unwrap();
        assert!(f > 0.0 && f < 1.0, "{f}");
    }

    #[test]
    fn cpu_usage_mapped_onto_operations() {
        // Scale up so every phase spans multiple one-second env samples.
        let report =
            EvaluationProcess::new(giraph_model()).evaluate(&giraph_run_scaled(2_000.0), meta());
        let tree = &report.archive.tree;
        let root = tree.root().unwrap();
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        assert!(tree.op(load).info_f64("CpuMean").is_some());
    }

    #[test]
    fn coarse_model_keeps_fewer_events() {
        let run = giraph_run();
        let fine = EvaluationProcess::new(giraph_model()).evaluate(&run, meta());
        let coarse_model = giraph_model().truncated(AbstractionLevel::Domain);
        let coarse = EvaluationProcess::new(coarse_model).evaluate(&run, meta());
        assert!(coarse.events_kept < fine.events_kept);
        assert!(coarse.filter_ratio() < fine.filter_ratio());
        // The coarse archive still has the full domain breakdown.
        let tree = &coarse.archive.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).children.len(), 5);
    }

    #[test]
    fn powergraph_pipeline_is_also_clean() {
        let g = datagen_like(&GenConfig::datagen(2_000, 5));
        let cfg = JobConfig::new(
            "p0",
            "dgt",
            Algorithm::Bfs { source: 1 },
            8,
            CostModel::powergraph_like(),
        );
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let report = EvaluationProcess::new(powergraph_model()).evaluate(
            &run,
            JobMeta {
                platform: "PowerGraph".into(),
                ..meta()
            },
        );
        assert!(
            report.validation.is_clean(),
            "{:?}",
            &report.validation.issues[..5.min(report.validation.issues.len())]
        );
    }

    #[test]
    fn unmodeled_platform_yields_validation_feedback() {
        // Evaluating a PowerGraph run with the Giraph model: everything is
        // unmodeled -> the feedback loop tells the analyst to model it.
        let g = datagen_like(&GenConfig::datagen(1_000, 5));
        let cfg = JobConfig::new(
            "p0",
            "dgt",
            Algorithm::Bfs { source: 1 },
            4,
            CostModel::powergraph_like(),
        );
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let report = EvaluationProcess::new(giraph_model()).evaluate(&run, meta());
        // Domain kinds overlap (Startup etc.), but the PowerGraph root and
        // machine-level ops do not: coverage must be imperfect and the
        // unobserved Giraph types reported.
        assert!(report.validation.coverage() < 1.0);
        assert!(!report.validation.is_clean());
    }
}
