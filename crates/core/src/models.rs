//! The performance-model library (paper §4.1, Figure 4).
//!
//! Models are built top-down: the **domain** level shared by every
//! graph-processing platform (Figure 3), the **system** level describing
//! each platform's workflow, and the **implementation** levels added by
//! refinement. [`giraph_model`] reconstructs the four-level Giraph model of
//! Figure 4 verbatim; [`powergraph_model`] models the GAS workflow.

use granula_model::{
    AbstractionLevel, ChildSelector, DerivationRule, InfoRequirement, OperationTypeDef,
    OperationTypeId, PerformanceModel,
};

/// The domain-level model every graph-processing platform shares: a job
/// decomposing into Startup, LoadGraph, ProcessGraph, OffloadGraph and
/// Cleanup (paper Figure 3). `root_mission` is the platform's job mission
/// kind, e.g. `"GiraphJob"`.
pub fn domain_model(platform: &str, root_mission: &str) -> PerformanceModel {
    let mut m = PerformanceModel::new(format!("{}-domain", platform.to_lowercase()), platform);
    let mut root = OperationTypeDef::new("Job", root_mission, AbstractionLevel::Domain)
        .describe("The graph-processing job, end to end");
    // Domain metrics Ts / Td / Tp (paper §3.4) derived on the root.
    for (kind, output) in [
        ("Startup", "StartupDuration"),
        ("LoadGraph", "LoadDuration"),
        ("ProcessGraph", "ProcessDuration"),
        ("OffloadGraph", "OffloadDuration"),
        ("Cleanup", "CleanupDuration"),
    ] {
        root = root.with_rule(DerivationRule::SumChildren {
            info: "Duration".into(),
            select: ChildSelector::MissionKind(kind.into()),
            output: output.into(),
        });
    }
    m.add_type(root).expect("fresh model");
    for (kind, desc) in [
        (
            "Startup",
            "Reserve computational resources and prepare the system",
        ),
        ("LoadGraph", "Transfer graph data from storage into memory"),
        ("ProcessGraph", "Execute the user-defined algorithm"),
        ("OffloadGraph", "Write results back to storage"),
        ("Cleanup", "Release resources"),
    ] {
        m.add_type(
            OperationTypeDef::new("Job", kind, AbstractionLevel::Domain)
                .child_of("Job", root_mission)
                .with_rule(DerivationRule::FractionOfParent {
                    info: "Duration".into(),
                    output: "RuntimeFraction".into(),
                })
                .describe(desc),
        )
        .expect("unique domain kinds");
    }
    m
}

/// The 4-level Giraph performance model of paper Figure 4.
pub fn giraph_model() -> PerformanceModel {
    let mut m = domain_model("Giraph", "GiraphJob");
    m.name = "giraph-v4".into();

    // ---- Level 2 (system): Startup workflow.
    m.refine(
        &OperationTypeId::new("Job", "Startup"),
        vec![
            OperationTypeDef::new("Master", "JobStartup", AbstractionLevel::System)
                .describe("Client negotiates with the YARN ResourceManager"),
            OperationTypeDef::new("Master", "LaunchWorkers", AbstractionLevel::System)
                .describe("Allocate containers and launch worker JVMs"),
        ],
    )
    .expect("fresh refinement");
    // ---- Level 2: LoadGraph / OffloadGraph / Cleanup workflows.
    m.refine(
        &OperationTypeId::new("Job", "LoadGraph"),
        vec![
            OperationTypeDef::new("Worker", "LocalLoad", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::required("InputBytes"))
                .with_rule(DerivationRule::RatePerSecond {
                    amount: "InputBytes".into(),
                    output: "LoadThroughput".into(),
                })
                .describe("One worker loads its partition"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Job", "Superstep", AbstractionLevel::System)
                .iterative()
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .with_info(InfoRequirement::optional("MessagesSent"))
                .describe("One BSP superstep"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "OffloadGraph"),
        vec![
            OperationTypeDef::new("Worker", "LocalOffload", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("OutputBytes"))
                .describe("One worker writes its results"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Cleanup"),
        vec![
            OperationTypeDef::new("Master", "AbortWorkers", AbstractionLevel::System),
            OperationTypeDef::new("Master", "ClientCleanup", AbstractionLevel::System),
            OperationTypeDef::new("Master", "ServerCleanup", AbstractionLevel::System),
            OperationTypeDef::new("Master", "ZkCleanup", AbstractionLevel::System),
        ],
    )
    .expect("fresh refinement");

    // ---- Level 3 (implementation).
    m.refine(
        &OperationTypeId::new("Master", "LaunchWorkers"),
        vec![
            OperationTypeDef::new("Worker", "LocalStartup", AbstractionLevel::System)
                .parallel()
                .describe("Container allocation + JVM start + ZooKeeper registration"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Worker", "LocalLoad"),
        vec![
            OperationTypeDef::new("Worker", "LoadHdfsData", AbstractionLevel::System)
                .describe("HDFS block reads (local + remote replicas)"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Superstep"),
        vec![
            OperationTypeDef::new("Worker", "LocalSuperstep", AbstractionLevel::System)
                .parallel()
                .describe("One worker's share of the superstep"),
            OperationTypeDef::new("Master", "SyncZookeeper", AbstractionLevel::System)
                .describe("Global superstep barrier via ZooKeeper"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Worker", "LocalOffload"),
        vec![
            OperationTypeDef::new("Worker", "OffloadHdfsData", AbstractionLevel::System)
                .describe("HDFS writes with replication pipeline"),
        ],
    )
    .expect("fresh refinement");

    // ---- Level 4 (implementation): inside a local superstep.
    m.refine(
        &OperationTypeId::new("Worker", "LocalSuperstep"),
        vec![
            OperationTypeDef::new("Worker", "PreStep", AbstractionLevel::System)
                .describe("Superstep entry coordination (barrier wait)"),
            OperationTypeDef::new("Worker", "Compute", AbstractionLevel::System)
                .with_info(InfoRequirement::optional("EdgesScanned"))
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .describe("Vertex-program execution"),
            OperationTypeDef::new("Worker", "Message", AbstractionLevel::System)
                .with_info(InfoRequirement::optional("RemoteMessages"))
                .describe("Message flushing to remote workers"),
            OperationTypeDef::new("Worker", "PostStep", AbstractionLevel::System)
                .describe("Superstep exit coordination (barrier wait)"),
        ],
    )
    .expect("fresh refinement");
    m
}

/// The PowerGraph performance model (GAS workflow, sequential loader).
pub fn powergraph_model() -> PerformanceModel {
    let mut m = domain_model("PowerGraph", "PowerGraphJob");
    m.name = "powergraph-v3".into();

    m.refine(
        &OperationTypeId::new("Job", "Startup"),
        vec![
            OperationTypeDef::new("Master", "MpiSetup", AbstractionLevel::System)
                .describe("mpirun daemon startup and rank handshakes"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "LoadGraph"),
        vec![
            OperationTypeDef::new("Machine", "SequentialLoad", AbstractionLevel::System)
                .with_info(InfoRequirement::required("InputBytes"))
                .with_rule(DerivationRule::RatePerSecond {
                    amount: "InputBytes".into(),
                    output: "LoadThroughput".into(),
                })
                .describe("One machine reads and parses the whole input"),
            OperationTypeDef::new("Machine", "DistributeEdges", AbstractionLevel::System)
                .describe("Ship edge partitions to their machines"),
            OperationTypeDef::new("Machine", "FinalizeGraph", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("LocalEdges"))
                .describe("Build local in-memory structures"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Job", "Iteration", AbstractionLevel::System)
                .iterative()
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .describe("One GAS iteration"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "OffloadGraph"),
        vec![
            OperationTypeDef::new("Machine", "LocalOffload", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("OutputBytes")),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Cleanup"),
        vec![OperationTypeDef::new(
            "Master",
            "MpiFinalize",
            AbstractionLevel::System,
        )],
    )
    .expect("fresh refinement");

    // Level 3: GAS minor-steps inside an iteration.
    m.refine(
        &OperationTypeId::new("Job", "Iteration"),
        vec![
            OperationTypeDef::new("Machine", "Gather", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("GatherEdges")),
            OperationTypeDef::new("Master", "Exchange", AbstractionLevel::System)
                .with_info(InfoRequirement::optional("SyncMessages"))
                .describe("Replica synchronization (mirrors ↔ masters)"),
            OperationTypeDef::new("Machine", "Apply", AbstractionLevel::System).parallel(),
            OperationTypeDef::new("Machine", "Scatter", AbstractionLevel::System).parallel(),
        ],
    )
    .expect("fresh refinement");
    m
}

/// The Giraph model extended with checkpoint/recovery operations — the
/// model an analyst uses when evaluating a run under fault injection.
///
/// Giraph checkpoints to HDFS every K supersteps; when a worker is lost
/// mid-superstep the master aborts the attempt (`FailedSuperstep`),
/// re-provisions a container through YARN, reloads the last checkpoint and
/// replays the lost supersteps. The `Recover` operation carries the lost
/// node (`FailedNode`) and the simulated time thrown away with the doomed
/// attempt (`WastedUs`).
pub fn giraph_fault_model() -> PerformanceModel {
    let mut m = giraph_model();
    m.name = "giraph-v4-faults".into();
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Master", "Checkpoint", AbstractionLevel::System)
                .iterative()
                .with_info(InfoRequirement::optional("IntervalSupersteps"))
                .describe("Write a superstep checkpoint to the filesystem"),
            OperationTypeDef::new("Master", "FailedSuperstep", AbstractionLevel::System)
                .describe("A superstep attempt aborted by a worker loss"),
            OperationTypeDef::new("Master", "Recover", AbstractionLevel::System)
                .with_info(InfoRequirement::required("FailedNode"))
                .with_info(InfoRequirement::required("WastedUs"))
                .describe("Re-provision the lost worker and redo lost work"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Master", "Recover"),
        vec![
            OperationTypeDef::new("Master", "DetectFailure", AbstractionLevel::System)
                .describe("Heartbeat timeout on the lost worker"),
            OperationTypeDef::new("Master", "Provision", AbstractionLevel::System)
                .describe("YARN retry: renegotiate, back off, relaunch"),
            OperationTypeDef::new("Master", "LoadCheckpoint", AbstractionLevel::System)
                .describe("All workers reload the last checkpoint"),
            OperationTypeDef::new("Master", "Replay", AbstractionLevel::System)
                .iterative()
                .describe("Re-execute a superstep lost with the crash"),
        ],
    )
    .expect("fresh refinement");
    m
}

/// The PowerGraph model extended with fail-stop recovery operations.
///
/// PowerGraph (as deployed in the paper) has no checkpointing: MPI is
/// fail-stop, so a lost rank aborts the whole job and the job is
/// resubmitted from scratch. `Recover` sits directly under the job root and
/// carries the lost node and the wasted first-attempt time.
pub fn powergraph_fault_model() -> PerformanceModel {
    let mut m = powergraph_model();
    m.name = "powergraph-v3-faults".into();
    m.refine(
        &OperationTypeId::new("Job", "PowerGraphJob"),
        vec![
            OperationTypeDef::new("Master", "Recover", AbstractionLevel::System)
                .with_info(InfoRequirement::required("FailedNode"))
                .with_info(InfoRequirement::required("WastedUs"))
                .describe("Abort the job on a lost rank and resubmit it"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Master", "Recover"),
        vec![
            OperationTypeDef::new("Master", "DetectFailure", AbstractionLevel::System)
                .describe("MPI notices the dead rank"),
            OperationTypeDef::new("Master", "Respawn", AbstractionLevel::System)
                .describe("mpirun respawns all ranks for the restart"),
        ],
    )
    .expect("fresh refinement");
    m
}

/// The GraphMat performance model (SpMV workflow, parallel loader with an
/// expensive format conversion).
pub fn graphmat_model() -> PerformanceModel {
    let mut m = domain_model("GraphMat", "GraphMatJob");
    m.name = "graphmat-v3".into();

    m.refine(
        &OperationTypeId::new("Job", "Startup"),
        vec![
            OperationTypeDef::new("Master", "MpiSetup", AbstractionLevel::System)
                .describe("mpiexec daemon startup and rank handshakes"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "LoadGraph"),
        vec![
            OperationTypeDef::new("Machine", "LocalLoad", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::required("InputBytes"))
                .with_rule(DerivationRule::RatePerSecond {
                    amount: "InputBytes".into(),
                    output: "LoadThroughput".into(),
                })
                .describe("Each rank loads its row block in parallel"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Machine", "LocalLoad"),
        vec![
            OperationTypeDef::new("Machine", "ReadInput", AbstractionLevel::System)
                .describe("Shared-filesystem block read"),
            OperationTypeDef::new("Machine", "ConvertFormat", AbstractionLevel::System)
                .describe("Conversion to the internal SpMV matrix format"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Job", "Iteration", AbstractionLevel::System)
                .iterative()
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .describe("One generalized SpMV iteration"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Iteration"),
        vec![
            OperationTypeDef::new("Machine", "Multiply", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("EdgesProcessed")),
            OperationTypeDef::new("Master", "Exchange", AbstractionLevel::System)
                .describe("All-to-all message exchange"),
            OperationTypeDef::new("Machine", "Apply", AbstractionLevel::System).parallel(),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "OffloadGraph"),
        vec![
            OperationTypeDef::new("Machine", "LocalOffload", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("OutputBytes")),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Cleanup"),
        vec![OperationTypeDef::new(
            "Master",
            "MpiFinalize",
            AbstractionLevel::System,
        )],
    )
    .expect("fresh refinement");
    m
}

/// The GRAPE performance model (subgraph-centric workflow: PEval to a
/// fragment-local fixpoint, IncEval between boundary syncs).
pub fn grape_model() -> PerformanceModel {
    let mut m = domain_model("Grape", "GrapeJob");
    m.name = "grape-v1".into();

    m.refine(
        &OperationTypeId::new("Job", "Startup"),
        vec![
            OperationTypeDef::new("Coordinator", "DeployCoordinator", AbstractionLevel::System)
                .describe("Start the coordinator process"),
            OperationTypeDef::new("Coordinator", "DeployWorkers", AbstractionLevel::System)
                .describe("Launch one fragment worker per node"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Coordinator", "DeployWorkers"),
        vec![
            OperationTypeDef::new("Worker", "LocalStartup", AbstractionLevel::System)
                .parallel()
                .describe("Worker process start + coordinator registration"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "LoadGraph"),
        vec![
            OperationTypeDef::new("Worker", "LocalLoad", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::required("InputBytes"))
                .with_rule(DerivationRule::RatePerSecond {
                    amount: "InputBytes".into(),
                    output: "LoadThroughput".into(),
                })
                .describe("One worker loads its edge-cut fragment"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Worker", "LocalLoad"),
        vec![
            OperationTypeDef::new("Worker", "ReadFragment", AbstractionLevel::System)
                .describe("Shared-filesystem fragment read"),
            OperationTypeDef::new("Worker", "BuildIndex", AbstractionLevel::System)
                .describe("Build the fragment's local index + boundary tables"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Job", "Round", AbstractionLevel::System)
                .iterative()
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .with_info(InfoRequirement::optional("BoundaryMessages"))
                .describe("One boundary-synchronized evaluation round"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Round"),
        vec![
            OperationTypeDef::new("Worker", "PEval", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("EdgesScanned"))
                .describe(
                    "Partial evaluation: the sequential algorithm to a fragment-local fixpoint",
                ),
            OperationTypeDef::new("Worker", "IncEval", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("EdgesScanned"))
                .describe("Incremental evaluation against the received boundary updates"),
            OperationTypeDef::new("Coordinator", "BoundarySync", AbstractionLevel::System)
                .describe("Exchange boundary-vertex updates and test the global fixpoint"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "OffloadGraph"),
        vec![
            OperationTypeDef::new("Worker", "LocalOffload", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("OutputBytes")),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Cleanup"),
        vec![OperationTypeDef::new(
            "Coordinator",
            "Terminate",
            AbstractionLevel::System,
        )],
    )
    .expect("fresh refinement");
    m
}

/// The GraphX performance model (dataflow workflow: every Pregel iteration
/// lowers to a map/shuffle/reduce stage pair scheduled by the driver).
pub fn graphx_model() -> PerformanceModel {
    let mut m = domain_model("GraphX", "GraphXJob");
    m.name = "graphx-v1".into();

    m.refine(
        &OperationTypeId::new("Job", "Startup"),
        vec![
            OperationTypeDef::new("Driver", "LaunchDriver", AbstractionLevel::System)
                .describe("Spark context + driver JVM startup"),
            OperationTypeDef::new("Driver", "LaunchExecutors", AbstractionLevel::System)
                .describe("Allocate containers and launch executor JVMs"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Driver", "LaunchExecutors"),
        vec![
            OperationTypeDef::new("Executor", "LocalStartup", AbstractionLevel::System)
                .parallel()
                .describe("Executor container + JVM start"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "LoadGraph"),
        vec![
            OperationTypeDef::new("Executor", "LocalLoad", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::required("InputBytes"))
                .with_rule(DerivationRule::RatePerSecond {
                    amount: "InputBytes".into(),
                    output: "LoadThroughput".into(),
                })
                .describe("One executor materializes its RDD partitions"),
            OperationTypeDef::new("Driver", "PartitionBy", AbstractionLevel::System)
                .describe("Shuffle the edge RDD into its hash layout"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Executor", "LocalLoad"),
        vec![
            OperationTypeDef::new("Executor", "ReadPartition", AbstractionLevel::System)
                .describe("HDFS input-split read"),
            OperationTypeDef::new("Executor", "BuildPartition", AbstractionLevel::System)
                .describe("Build the local edge partition"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Job", "Iteration", AbstractionLevel::System)
                .iterative()
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .with_info(InfoRequirement::optional("ShuffleRecords"))
                .describe("One Pregel iteration as a join/aggregate stage pair"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Iteration"),
        vec![
            OperationTypeDef::new("Driver", "ScheduleTasks", AbstractionLevel::System)
                .describe("Driver plans the stage pair's tasks"),
            OperationTypeDef::new("Executor", "MapStage", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("EdgesScanned"))
                .describe("Join vertex attributes onto edges; shuffle write"),
            OperationTypeDef::new("Driver", "Shuffle", AbstractionLevel::System)
                .describe("Cross-executor message-block fetches"),
            OperationTypeDef::new("Executor", "ReduceStage", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("ActiveVertices"))
                .describe("Aggregate fetched messages; update vertices"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "OffloadGraph"),
        vec![
            OperationTypeDef::new("Executor", "LocalOffload", AbstractionLevel::System)
                .parallel()
                .with_info(InfoRequirement::optional("OutputBytes")),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Job", "Cleanup"),
        vec![OperationTypeDef::new(
            "Driver",
            "StopContext",
            AbstractionLevel::System,
        )],
    )
    .expect("fresh refinement");
    m
}

/// The GRAPE model extended with fragment-local replay recovery.
///
/// GRAPE keeps no checkpoints and does not restart: on a worker loss the
/// coordinator reloads only the lost fragment and replays its evaluation
/// rounds against the boundary updates resent by the surviving workers —
/// a third recovery style next to Giraph's checkpoint/replay and
/// PowerGraph's fail-stop restart.
pub fn grape_fault_model() -> PerformanceModel {
    let mut m = grape_model();
    m.name = "grape-v1-faults".into();
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Coordinator", "FailedRound", AbstractionLevel::System)
                .describe("A round attempt aborted by a worker loss"),
            OperationTypeDef::new("Coordinator", "Recover", AbstractionLevel::System)
                .with_info(InfoRequirement::required("FailedNode"))
                .with_info(InfoRequirement::required("WastedUs"))
                .describe("Reload the lost fragment and replay its rounds"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Coordinator", "Recover"),
        vec![
            OperationTypeDef::new("Coordinator", "DetectFailure", AbstractionLevel::System)
                .describe("Heartbeat timeout on the lost worker"),
            OperationTypeDef::new("Coordinator", "ReloadFragment", AbstractionLevel::System)
                .with_info(InfoRequirement::optional("InputBytes"))
                .describe("Re-read and re-index only the lost fragment"),
            OperationTypeDef::new("Coordinator", "Replay", AbstractionLevel::System)
                .iterative()
                .describe("Replay one round on the reloaded fragment"),
        ],
    )
    .expect("fresh refinement");
    m
}

/// The GraphX model extended with lineage-recomputation recovery.
///
/// Spark keeps no graph checkpoints: when an executor is lost its cached
/// partitions and shuffle files vanish, and the driver recomputes the
/// doomed lineage cut — only the lost partition's stage chain, re-read
/// from the input split and fed by the shuffle outputs surviving on its
/// peers — before re-running the interrupted stage pair.
pub fn graphx_fault_model() -> PerformanceModel {
    let mut m = graphx_model();
    m.name = "graphx-v1-faults".into();
    m.refine(
        &OperationTypeId::new("Job", "ProcessGraph"),
        vec![
            OperationTypeDef::new("Driver", "FailedStage", AbstractionLevel::System)
                .describe("A stage attempt aborted by an executor loss"),
            OperationTypeDef::new("Driver", "Recover", AbstractionLevel::System)
                .with_info(InfoRequirement::required("FailedNode"))
                .with_info(InfoRequirement::required("WastedUs"))
                .describe("Reschedule lost tasks and recompute their lineage"),
        ],
    )
    .expect("fresh refinement");
    m.refine(
        &OperationTypeId::new("Driver", "Recover"),
        vec![
            OperationTypeDef::new("Driver", "DetectFailure", AbstractionLevel::System)
                .describe("Missed executor heartbeats"),
            OperationTypeDef::new("Driver", "Reschedule", AbstractionLevel::System)
                .describe("Relaunch the executor and reschedule the lost tasks"),
            OperationTypeDef::new("Driver", "Recompute", AbstractionLevel::System)
                .iterative()
                .describe("Recompute one lineage stage of the lost partition"),
        ],
    )
    .expect("fresh refinement");
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giraph_model_has_four_levels() {
        let m = giraph_model();
        assert_eq!(m.max_depth(), 4);
        // Figure 4 level-1 (domain) operations.
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(
                m.get_type(&OperationTypeId::new("Job", kind)).is_some(),
                "{kind}"
            );
        }
        // Figure 4 deepest level: PreStep/Compute/Message/PostStep.
        for kind in ["PreStep", "Compute", "Message", "PostStep"] {
            let t = m.get_type(&OperationTypeId::new("Worker", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Worker", "LocalSuperstep")),
                "{kind}"
            );
        }
    }

    #[test]
    fn superstep_is_iterative_and_local_ops_parallel() {
        let m = giraph_model();
        assert!(
            m.get_type(&OperationTypeId::new("Job", "Superstep"))
                .unwrap()
                .iterative
        );
        assert!(
            m.get_type(&OperationTypeId::new("Worker", "LocalLoad"))
                .unwrap()
                .parallel
        );
    }

    #[test]
    fn truncation_produces_domain_only_model() {
        let m = giraph_model().truncated(AbstractionLevel::Domain);
        assert_eq!(m.max_depth(), 1);
        assert_eq!(m.types.len(), 6); // job + 5 domain phases
    }

    #[test]
    fn powergraph_model_has_gas_minor_steps() {
        let m = powergraph_model();
        for kind in ["Gather", "Apply", "Scatter"] {
            let t = m.get_type(&OperationTypeId::new("Machine", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Job", "Iteration")),
                "{kind}"
            );
        }
        assert!(m
            .get_type(&OperationTypeId::new("Machine", "SequentialLoad"))
            .is_some());
    }

    #[test]
    fn domain_models_share_phase_kinds() {
        for m in [giraph_model(), powergraph_model(), graphmat_model()] {
            for kind in [
                "Startup",
                "LoadGraph",
                "ProcessGraph",
                "OffloadGraph",
                "Cleanup",
            ] {
                assert!(
                    m.get_type(&OperationTypeId::new("Job", kind)).is_some(),
                    "{kind}"
                );
            }
        }
    }

    #[test]
    fn graphmat_model_has_spmv_steps() {
        let m = graphmat_model();
        for kind in ["Multiply", "Apply", "ConvertFormat", "ReadInput"] {
            assert!(
                m.get_type(&OperationTypeId::new("Machine", kind)).is_some(),
                "{kind}"
            );
        }
    }

    #[test]
    fn fault_models_extend_the_base_models() {
        let m = giraph_fault_model();
        for kind in ["Checkpoint", "FailedSuperstep", "Recover"] {
            let t = m.get_type(&OperationTypeId::new("Master", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Job", "ProcessGraph")),
                "{kind}"
            );
        }
        for kind in ["DetectFailure", "Provision", "LoadCheckpoint", "Replay"] {
            let t = m.get_type(&OperationTypeId::new("Master", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Master", "Recover")),
                "{kind}"
            );
        }
        // The healthy part of the model is untouched.
        assert!(m
            .get_type(&OperationTypeId::new("Job", "Superstep"))
            .is_some());

        let p = powergraph_fault_model();
        assert_eq!(
            p.get_type(&OperationTypeId::new("Master", "Recover"))
                .unwrap()
                .parent,
            Some(OperationTypeId::new("Job", "PowerGraphJob"))
        );
        for kind in ["DetectFailure", "Respawn"] {
            let t = p.get_type(&OperationTypeId::new("Master", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Master", "Recover")),
                "{kind}"
            );
        }
    }

    #[test]
    fn grape_model_has_subgraph_centric_steps() {
        let m = grape_model();
        for kind in ["PEval", "IncEval"] {
            let t = m.get_type(&OperationTypeId::new("Worker", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Job", "Round")),
                "{kind}"
            );
            assert!(t.parallel, "{kind}");
        }
        assert!(m
            .get_type(&OperationTypeId::new("Coordinator", "BoundarySync"))
            .is_some());
        assert!(
            m.get_type(&OperationTypeId::new("Job", "Round"))
                .unwrap()
                .iterative
        );
    }

    #[test]
    fn graphx_model_has_dataflow_stages() {
        let m = graphx_model();
        for kind in ["MapStage", "ReduceStage"] {
            let t = m.get_type(&OperationTypeId::new("Executor", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Job", "Iteration")),
                "{kind}"
            );
        }
        for kind in ["ScheduleTasks", "Shuffle", "PartitionBy"] {
            assert!(
                m.get_type(&OperationTypeId::new("Driver", kind)).is_some(),
                "{kind}"
            );
        }
    }

    #[test]
    fn new_fault_models_describe_their_recovery_styles() {
        let g = grape_fault_model();
        for kind in ["DetectFailure", "ReloadFragment", "Replay"] {
            let t = g
                .get_type(&OperationTypeId::new("Coordinator", kind))
                .unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Coordinator", "Recover")),
                "{kind}"
            );
        }
        let x = graphx_fault_model();
        for kind in ["DetectFailure", "Reschedule", "Recompute"] {
            let t = x.get_type(&OperationTypeId::new("Driver", kind)).unwrap();
            assert_eq!(
                t.parent,
                Some(OperationTypeId::new("Driver", "Recover")),
                "{kind}"
            );
        }
    }

    #[test]
    fn root_derives_phase_durations() {
        let m = giraph_model();
        let root = m
            .get_type(&OperationTypeId::new("Job", "GiraphJob"))
            .unwrap();
        let outputs: Vec<&str> = root
            .rules
            .iter()
            .filter_map(|r| match r {
                DerivationRule::SumChildren { output, .. } => Some(output.as_str()),
                _ => None,
            })
            .collect();
        assert!(outputs.contains(&"LoadDuration"));
        assert!(outputs.contains(&"ProcessDuration"));
    }
}
