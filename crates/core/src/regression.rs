//! Performance-regression testing over archives (paper §6).
//!
//! "…to help integrate performance analysis as part of standard software
//! engineering practices, in the form of performance regression tests." A
//! [`RegressionSuite`] holds baseline archives; checking a candidate
//! archive against its baseline reports total-runtime and per-phase
//! regressions beyond a configurable tolerance.

use granula_archive::JobArchive;
use serde::{Deserialize, Serialize};

use crate::metrics::{DomainBreakdown, Phase};

/// One detected regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// What regressed: `"total"` or a phase label.
    pub subject: String,
    /// Baseline duration, µs.
    pub baseline_us: u64,
    /// Candidate duration, µs.
    pub candidate_us: u64,
    /// Relative change, `(candidate - baseline) / baseline`.
    pub change: f64,
}

/// The outcome of one regression check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionReport {
    /// Job id checked.
    pub job_id: String,
    /// Regressions beyond tolerance, worst first.
    pub regressions: Vec<Regression>,
    /// Improvements beyond tolerance (negative change), best first.
    pub improvements: Vec<Regression>,
}

impl RegressionReport {
    /// True when no phase regressed beyond tolerance.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// A set of baseline archives keyed by `(platform, algorithm, dataset)`.
#[derive(Debug, Clone, Default)]
pub struct RegressionSuite {
    baselines: Vec<JobArchive>,
    /// Relative slowdown tolerated before reporting, e.g. 0.1 = 10 %.
    pub tolerance: f64,
}

impl RegressionSuite {
    /// Creates a suite with the given tolerance.
    pub fn new(tolerance: f64) -> Self {
        RegressionSuite {
            baselines: Vec::new(),
            tolerance,
        }
    }

    /// Registers a baseline archive.
    pub fn add_baseline(&mut self, archive: JobArchive) {
        self.baselines.push(archive);
    }

    /// Number of baselines held.
    pub fn len(&self) -> usize {
        self.baselines.len()
    }

    /// True when no baselines are registered.
    pub fn is_empty(&self) -> bool {
        self.baselines.is_empty()
    }

    fn baseline_for(&self, candidate: &JobArchive) -> Option<&JobArchive> {
        self.baselines.iter().find(|b| {
            b.meta.platform == candidate.meta.platform
                && b.meta.algorithm == candidate.meta.algorithm
                && b.meta.dataset == candidate.meta.dataset
        })
    }

    /// Checks a candidate archive against its matching baseline. Returns
    /// `None` when no baseline matches or either archive lacks a runtime.
    pub fn check(&self, candidate: &JobArchive) -> Option<RegressionReport> {
        let baseline = self.baseline_for(candidate)?;
        let base = DomainBreakdown::from_archive(baseline)?;
        let cand = DomainBreakdown::from_archive(candidate)?;

        let mut regressions = Vec::new();
        let mut improvements = Vec::new();
        let mut compare = |subject: &str, b_us: u64, c_us: u64| {
            if b_us == 0 {
                return;
            }
            let change = (c_us as f64 - b_us as f64) / b_us as f64;
            let entry = Regression {
                subject: subject.to_string(),
                baseline_us: b_us,
                candidate_us: c_us,
                change,
            };
            if change > self.tolerance {
                regressions.push(entry);
            } else if change < -self.tolerance {
                improvements.push(entry);
            }
        };
        compare("total", base.total_us, cand.total_us);
        for phase in [Phase::Setup, Phase::InputOutput, Phase::Processing] {
            compare(phase.label(), base.phase_us(phase), cand.phase_us(phase));
        }
        regressions.sort_by(|a, b| b.change.total_cmp(&a.change));
        improvements.sort_by(|a, b| a.change.total_cmp(&b.change));
        Some(RegressionReport {
            job_id: candidate.meta.job_id.clone(),
            regressions,
            improvements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn archive(job_id: &str, total: i64, load: i64) -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(total)))
            .unwrap();
        let l = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        t.set_info(l, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(l, Info::raw(names::END_TIME, InfoValue::Int(load)))
            .unwrap();
        JobArchive::new(
            JobMeta {
                job_id: job_id.into(),
                platform: "Giraph".into(),
                algorithm: "BFS".into(),
                dataset: "d".into(),
                nodes: 8,
                model: "m".into(),
            },
            t,
        )
    }

    #[test]
    fn within_tolerance_passes() {
        let mut suite = RegressionSuite::new(0.10);
        suite.add_baseline(archive("base", 100_000, 40_000));
        let report = suite.check(&archive("cand", 105_000, 41_000)).unwrap();
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn slowdown_beyond_tolerance_reported_worst_first() {
        let mut suite = RegressionSuite::new(0.10);
        suite.add_baseline(archive("base", 100_000, 40_000));
        let report = suite.check(&archive("cand", 130_000, 80_000)).unwrap();
        assert!(!report.passed());
        assert_eq!(report.regressions[0].subject, "Input/output"); // +100 %
        assert!((report.regressions[0].change - 1.0).abs() < 1e-9);
        assert_eq!(report.regressions[1].subject, "total"); // +30 %
    }

    #[test]
    fn improvement_reported_separately() {
        let mut suite = RegressionSuite::new(0.10);
        suite.add_baseline(archive("base", 100_000, 40_000));
        let report = suite.check(&archive("cand", 80_000, 20_000)).unwrap();
        assert!(report.passed());
        assert_eq!(report.improvements[0].subject, "Input/output"); // -50 %
    }

    #[test]
    fn unmatched_candidate_returns_none() {
        let suite = RegressionSuite::new(0.10);
        assert!(suite.check(&archive("cand", 1, 1)).is_none());
    }

    #[test]
    fn baseline_matching_uses_workload_key() {
        let mut suite = RegressionSuite::new(0.10);
        suite.add_baseline(archive("base", 100_000, 40_000));
        let mut other = archive("cand", 500_000, 400_000);
        other.meta.algorithm = "PageRank".into();
        assert!(suite.check(&other).is_none());
    }
}
