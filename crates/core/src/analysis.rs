//! Choke-point analysis and failure diagnosis (paper §6, future work).
//!
//! "…to further enhance Granula's ability to support performance analysis,
//! for example on choke-point analysis and failure diagnosis." Both are
//! archive walks: choke points are operations that dominate their parent,
//! idle the CPU while taking long, or skew across parallel actors; failure
//! diagnosis works backwards from unclosed operations and assembly damage.

use granula_archive::JobArchive;
use granula_model::{OpId, Operation};
use granula_monitor::AssemblyWarning;
use serde::{Deserialize, Serialize};

/// Why an operation is a choke point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChokePointKind {
    /// The operation consumes most of its parent's duration.
    DominantFraction {
        /// `duration / parent duration`.
        fraction: f64,
    },
    /// Long duration with idle CPU: latency- (not compute-) bound.
    LatencyBound {
        /// Mean busy cores on the operation's node while it ran.
        cpu_mean: f64,
    },
    /// Parallel siblings (same mission, different actors) are skewed: the
    /// slowest holds everyone at the barrier.
    Imbalance {
        /// Slowest sibling / mean sibling duration.
        max_over_mean: f64,
        /// Number of parallel siblings compared.
        actors: usize,
    },
    /// Time lost to failure recovery: a lost worker forced a checkpoint
    /// reload / job restart, and part of the run was thrown away.
    RecoveryOverhead {
        /// Name of the lost node, from the `Recover` op's `FailedNode` info.
        worker: String,
        /// Simulated time wasted in the doomed attempt, µs (`WastedUs`).
        wasted_us: u64,
    },
}

/// One ranked finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChokePoint {
    /// Operation id in the archive's tree.
    pub op: OpId,
    /// Human-readable operation label.
    pub label: String,
    /// Category and evidence.
    pub kind: ChokePointKind,
    /// Share of the total job runtime attributable to this finding —
    /// findings are returned sorted by this, largest first.
    pub severity: f64,
}

/// Tunable thresholds of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ChokePointConfig {
    /// Minimum `duration / parent` to call an operation dominant.
    pub dominant_fraction: f64,
    /// Maximum mean busy cores to call an operation latency-bound.
    pub idle_cpu_cores: f64,
    /// Minimum `max / mean` across parallel siblings to call imbalance.
    pub imbalance_ratio: f64,
    /// Findings below this share of total runtime are dropped.
    pub min_severity: f64,
}

impl Default for ChokePointConfig {
    fn default() -> Self {
        ChokePointConfig {
            dominant_fraction: 0.60,
            idle_cpu_cores: 1.0,
            imbalance_ratio: 1.25,
            min_severity: 0.02,
        }
    }
}

/// Walks the archive and returns choke points sorted by severity.
pub fn find_choke_points(archive: &JobArchive, config: &ChokePointConfig) -> Vec<ChokePoint> {
    let Some(total) = archive.total_runtime_us().filter(|&t| t > 0) else {
        return Vec::new();
    };
    let total = total as f64;
    let tree = &archive.tree;
    let mut findings = Vec::new();

    for op in tree.iter() {
        let Some(duration) = op.duration_us() else {
            continue;
        };
        let share = duration as f64 / total;

        // Dominant fraction of the parent (skip the root and trivial ops).
        if let Some(parent) = op.parent.map(|p| tree.op(p)) {
            if let Some(pd) = parent.duration_us().filter(|&d| d > 0) {
                let fraction = duration as f64 / pd as f64;
                // Only flag sequential composites: parents with siblings of
                // *other* kinds. A parallel worker op covering its whole
                // fork-join container is expected, not a choke point.
                let has_other_kinds = parent
                    .children
                    .iter()
                    .any(|&c| tree.op(c).mission.kind != op.mission.kind);
                if fraction >= config.dominant_fraction
                    && has_other_kinds
                    && share >= config.min_severity
                {
                    findings.push(ChokePoint {
                        op: op.id,
                        label: op.label(),
                        kind: ChokePointKind::DominantFraction { fraction },
                        severity: share * fraction,
                    });
                }
            }
        }

        // Recovery overhead: a `Recover` operation (fault-injected runs)
        // accounts for its own duration plus the work wasted before the
        // crash, and names the lost worker.
        if op.mission.kind == "Recover" {
            if let Some(worker) = op.info_value("FailedNode").and_then(|v| v.as_text()) {
                let wasted = op.info_f64("WastedUs").map(|w| w.max(0.0)).unwrap_or(0.0);
                let severity = (duration as f64 + wasted) / total;
                if severity >= config.min_severity {
                    findings.push(ChokePoint {
                        op: op.id,
                        label: op.label(),
                        kind: ChokePointKind::RecoveryOverhead {
                            worker: worker.to_string(),
                            wasted_us: wasted.round() as u64,
                        },
                        severity,
                    });
                }
            }
        }

        // Latency-bound: long but CPU-idle (needs the env mapping infos).
        if let Some(cpu) = op.info_f64("CpuMean") {
            if cpu <= config.idle_cpu_cores && share >= config.min_severity {
                findings.push(ChokePoint {
                    op: op.id,
                    label: op.label(),
                    kind: ChokePointKind::LatencyBound { cpu_mean: cpu },
                    severity: share,
                });
            }
        }
    }

    // Imbalance across parallel siblings: group children of each parent by
    // mission identity, compare across actors.
    for parent in tree.iter() {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, String), Vec<&Operation>> = BTreeMap::new();
        for &c in &parent.children {
            let child = tree.op(c);
            groups
                .entry((child.mission.kind.clone(), child.mission.id.clone()))
                .or_default()
                .push(child);
        }
        for ((kind, id), members) in groups {
            if members.len() < 2 {
                continue;
            }
            let durations: Vec<u64> = members.iter().filter_map(|m| m.duration_us()).collect();
            if durations.len() < 2 {
                continue;
            }
            let max = *durations.iter().max().expect("non-empty") as f64;
            let mean = durations.iter().sum::<u64>() as f64 / durations.len() as f64;
            if mean <= 0.0 {
                continue;
            }
            let ratio = max / mean;
            let wasted = (max - mean) / total; // barrier idle time share
            if ratio >= config.imbalance_ratio && wasted >= config.min_severity {
                let slowest = members
                    .iter()
                    .max_by_key(|m| m.duration_us().unwrap_or(0))
                    .expect("non-empty");
                findings.push(ChokePoint {
                    op: slowest.id,
                    label: format!("{kind}-{id} (slowest: {})", slowest.label()),
                    kind: ChokePointKind::Imbalance {
                        max_over_mean: ratio,
                        actors: members.len(),
                    },
                    severity: wasted,
                });
            }
        }
    }

    findings.sort_by(|a, b| b.severity.total_cmp(&a.severity));
    findings
}

/// What failure diagnosis concluded about one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureReport {
    /// Operations that started but never ended — the crash frontier.
    pub unclosed: Vec<String>,
    /// The node most implicated by the unclosed operations, if any.
    pub suspected_node: Option<String>,
    /// Count of `END`/`INFO` events whose operation was never seen
    /// starting (evidence of log loss rather than a crash).
    pub orphan_events: usize,
    /// Whether the job root itself closed.
    pub job_completed: bool,
}

impl FailureReport {
    /// True when nothing suspicious was found.
    pub fn is_healthy(&self) -> bool {
        self.unclosed.is_empty() && self.orphan_events == 0 && self.job_completed
    }
}

/// Diagnoses a job from its archive and the assembly warnings.
pub fn diagnose(archive: &JobArchive, warnings: &[AssemblyWarning]) -> FailureReport {
    let tree = &archive.tree;
    let unclosed_ids = archive.unclosed_operations();
    let unclosed: Vec<String> = unclosed_ids.iter().map(|&id| tree.op(id).label()).collect();

    // Majority vote over the Node info of unclosed operations.
    use std::collections::BTreeMap;
    let mut votes: BTreeMap<&str, usize> = BTreeMap::new();
    for &id in &unclosed_ids {
        if let Some(node) = tree
            .op(id)
            .info_value(granula_model::names::NODE)
            .and_then(|v| v.as_text())
        {
            *votes.entry(node).or_insert(0) += 1;
        }
    }
    let suspected_node = votes
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .filter(|&(_, n)| n > 0)
        .map(|(node, _)| node.to_string());

    let orphan_events = warnings
        .iter()
        .filter(|w| {
            matches!(
                w,
                AssemblyWarning::EndWithoutStart { .. } | AssemblyWarning::InfoWithoutStart { .. }
            )
        })
        .count();

    let job_completed = archive.job().is_some_and(|j| j.end_us().is_some());
    FailureReport {
        unclosed,
        suspected_node,
        orphan_events,
        job_completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn stamped(
        tree: &mut OperationTree,
        parent: Option<OpId>,
        actor: (&str, &str),
        mission: (&str, &str),
        s: i64,
        e: i64,
    ) -> OpId {
        let id = match parent {
            Some(p) => tree
                .add_child(
                    p,
                    Actor::new(actor.0, actor.1),
                    Mission::new(mission.0, mission.1),
                )
                .expect("parent exists"),
            None => tree
                .add_root(
                    Actor::new(actor.0, actor.1),
                    Mission::new(mission.0, mission.1),
                )
                .expect("fresh tree"),
        };
        tree.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(s)))
            .expect("id valid");
        tree.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(e)))
            .expect("id valid");
        id
    }

    #[test]
    fn dominant_child_detected() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 100);
        let load = stamped(&mut t, Some(job), ("Job", "0"), ("LoadGraph", "0"), 0, 90);
        stamped(&mut t, Some(job), ("Job", "0"), ("Cleanup", "0"), 90, 100);
        let a = JobArchive::new(JobMeta::default(), t);
        let found = find_choke_points(&a, &ChokePointConfig::default());
        assert!(found.iter().any(|c| c.op == load
            && matches!(c.kind, ChokePointKind::DominantFraction { fraction } if fraction > 0.8)));
    }

    #[test]
    fn latency_bound_detected_via_cpu_mapping() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 100);
        let startup = stamped(&mut t, Some(job), ("Job", "0"), ("Startup", "0"), 0, 40);
        stamped(&mut t, Some(job), ("Job", "0"), ("Rest", "0"), 40, 100);
        t.set_info(startup, Info::raw("CpuMean", InfoValue::Float(0.2)))
            .unwrap();
        let a = JobArchive::new(JobMeta::default(), t);
        let found = find_choke_points(&a, &ChokePointConfig::default());
        assert!(found
            .iter()
            .any(|c| c.op == startup && matches!(c.kind, ChokePointKind::LatencyBound { .. })));
    }

    #[test]
    fn imbalance_detected_across_workers() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 100);
        let ss = stamped(&mut t, Some(job), ("Job", "0"), ("Superstep", "4"), 0, 60);
        stamped(&mut t, Some(ss), ("Worker", "0"), ("Compute", "4"), 0, 20);
        stamped(&mut t, Some(ss), ("Worker", "1"), ("Compute", "4"), 0, 60);
        let a = JobArchive::new(JobMeta::default(), t);
        let found = find_choke_points(&a, &ChokePointConfig::default());
        let imb = found
            .iter()
            .find(|c| matches!(c.kind, ChokePointKind::Imbalance { .. }))
            .expect("imbalance found");
        assert!(imb.label.contains("Compute-4"));
        assert!(imb.label.contains("Worker-1"));
    }

    #[test]
    fn recovery_overhead_names_the_lost_worker() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 1000);
        let proc_ = stamped(
            &mut t,
            Some(job),
            ("Job", "0"),
            ("ProcessGraph", "0"),
            0,
            900,
        );
        stamped(&mut t, Some(job), ("Job", "0"), ("Cleanup", "0"), 900, 1000);
        let rec = stamped(
            &mut t,
            Some(proc_),
            ("Master", "0"),
            ("Recover", "0"),
            400,
            600,
        );
        t.set_info(
            rec,
            Info::raw("FailedNode", InfoValue::Text("node302".into())),
        )
        .unwrap();
        t.set_info(rec, Info::raw("WastedUs", InfoValue::Int(150)))
            .unwrap();
        let a = JobArchive::new(JobMeta::default(), t);
        let found = find_choke_points(&a, &ChokePointConfig::default());
        let cp = found
            .iter()
            .find(|c| matches!(c.kind, ChokePointKind::RecoveryOverhead { .. }))
            .expect("recovery overhead found");
        assert_eq!(
            cp.kind,
            ChokePointKind::RecoveryOverhead {
                worker: "node302".into(),
                wasted_us: 150,
            }
        );
        // Duration 200 + wasted 150 over a 1000 µs job.
        assert!((cp.severity - 0.35).abs() < 1e-9, "{}", cp.severity);
    }

    #[test]
    fn healthy_archive_yields_no_findings_or_failures() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 100);
        stamped(&mut t, Some(job), ("Job", "0"), ("A", "0"), 0, 50);
        stamped(&mut t, Some(job), ("Job", "0"), ("B", "0"), 50, 100);
        let a = JobArchive::new(JobMeta::default(), t);
        assert!(find_choke_points(&a, &ChokePointConfig::default()).is_empty());
        let report = diagnose(&a, &[]);
        assert!(report.is_healthy());
    }

    #[test]
    fn crash_diagnosis_points_at_the_node() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 100);
        // Two unclosed worker operations on nodeX.
        for w in 0..2 {
            let id = t
                .add_child(
                    job,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", "3"),
                )
                .unwrap();
            t.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(10)))
                .unwrap();
            t.set_info(id, Info::raw(names::NODE, InfoValue::Text("nodeX".into())))
                .unwrap();
        }
        let a = JobArchive::new(JobMeta::default(), t);
        let warnings = vec![AssemblyWarning::EndWithoutStart {
            label: "x".into(),
            time_us: 5,
        }];
        let report = diagnose(&a, &warnings);
        assert!(!report.is_healthy());
        assert_eq!(report.unclosed.len(), 2);
        assert_eq!(report.suspected_node.as_deref(), Some("nodeX"));
        assert_eq!(report.orphan_events, 1);
        assert!(report.job_completed);
    }

    #[test]
    fn findings_sorted_by_severity() {
        let mut t = OperationTree::new();
        let job = stamped(&mut t, None, ("Job", "0"), ("Job", "0"), 0, 1000);
        let big = stamped(&mut t, Some(job), ("Job", "0"), ("Big", "0"), 0, 900);
        stamped(&mut t, Some(job), ("Job", "0"), ("Small", "0"), 900, 1000);
        t.set_info(big, Info::raw("CpuMean", InfoValue::Float(0.1)))
            .unwrap();
        let a = JobArchive::new(JobMeta::default(), t);
        let found = find_choke_points(&a, &ChokePointConfig::default());
        assert!(found.len() >= 2);
        for pair in found.windows(2) {
            assert!(pair[0].severity >= pair[1].severity);
        }
    }
}
