//! Dataset catalog: LDBC-Datagen-like datasets at Graphalytics scales.
//!
//! `dg1000` — the paper's dataset — sits at the top of a family of Datagen
//! graphs (dgX ≈ X million vertices+edges × 10.3). The catalog lets
//! experiments sweep dataset scale with one logical graph: the entry's
//! `scale_factor(vertices)` maps a down-sampled graph onto the emulated
//! volume, exactly like [`crate::calibration`] does for dg1000.

use serde::{Deserialize, Serialize};

/// One catalog entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Name, e.g. `"dg1000"`.
    pub name: &'static str,
    /// Total vertices + edges, the sizing metric the paper quotes for
    /// dg1000 (1.03e9).
    pub elements: f64,
    /// Approximate on-disk size at 20 B/edge (for intuition only).
    pub approx_bytes: f64,
}

impl Dataset {
    /// The volume multiplier that makes a logical graph of `vertices`
    /// vertices (at the Datagen 9:1 edge ratio) emulate this dataset.
    pub fn scale_factor(&self, vertices: u32) -> f64 {
        self.elements / (vertices as f64 * 10.0)
    }
}

/// The Datagen family at Graphalytics scales (dg100 … dg1000), sized
/// relative to the paper's dg1000.
pub fn datagen_family() -> Vec<Dataset> {
    [
        ("dg10", 1.03e7),
        ("dg30", 3.09e7),
        ("dg100", 1.03e8),
        ("dg300", 3.09e8),
        ("dg1000", 1.03e9),
        ("dg3000", 3.09e9),
    ]
    .into_iter()
    .map(|(name, elements)| Dataset {
        name,
        elements,
        approx_bytes: elements * 0.9 * 20.0, // ~90 % of elements are edges
    })
    .collect()
}

/// Looks up a dataset by name.
pub fn by_name(name: &str) -> Option<Dataset> {
    datagen_family().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dg1000_matches_the_paper() {
        let d = by_name("dg1000").unwrap();
        assert_eq!(d.elements, 1.03e9);
        // Matches the calibration constant for the 100k-vertex graph.
        assert!(
            (d.scale_factor(crate::calibration::DG_VERTICES) - crate::calibration::DG1000_SCALE)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn family_is_ordered_by_size() {
        let family = datagen_family();
        assert!(family.windows(2).all(|w| w[0].elements < w[1].elements));
        assert_eq!(family.len(), 6);
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(by_name("twitter").is_none());
    }
}
