//! Operations: the central concept of the Granula performance model.
//!
//! Each operation is an **actor** executing a **mission** (paper §3.2,
//! Figure 1). Actors and missions are typed: the actor type `Worker` with id
//! `3` executing mission type `Superstep` with id `4` is rendered as
//! `Superstep-4 @ Worker-3`. Task parallelism is expressed as multiple actors
//! executing the same mission type; iterative processing as one actor
//! executing a mission type repeatedly with increasing mission ids.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::info::{Info, InfoValue};

/// Index of an operation inside an [`crate::OperationTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The entity performing an operation: a resource such as a worker, a master,
/// a client process, or the job itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Actor {
    /// Actor type, e.g. `"Worker"`, `"Master"`, `"Job"`.
    pub kind: String,
    /// Instance id distinguishing actors of the same type, e.g. `"3"`.
    pub id: String,
}

impl Actor {
    /// Creates an actor from a type and instance id.
    pub fn new(kind: impl Into<String>, id: impl Into<String>) -> Self {
        Actor {
            kind: kind.into(),
            id: id.into(),
        }
    }

    /// Parses `"Worker-3"` style notation; a missing `-id` suffix yields id `"0"`.
    pub fn parse(s: &str) -> Self {
        match s.rsplit_once('-') {
            Some((kind, id)) if !kind.is_empty() => Actor::new(kind, id),
            _ => Actor::new(s, "0"),
        }
    }
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.kind, self.id)
    }
}

/// What an actor is doing: a computational algorithm, a communication
/// protocol, a deployment step, etc.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Mission {
    /// Mission type, e.g. `"LoadGraph"`, `"Superstep"`.
    pub kind: String,
    /// Instance id, distinguishing e.g. iterations: `Superstep-0`, `Superstep-1`.
    pub id: String,
}

impl Mission {
    /// Creates a mission from a type and instance id.
    pub fn new(kind: impl Into<String>, id: impl Into<String>) -> Self {
        Mission {
            kind: kind.into(),
            id: id.into(),
        }
    }

    /// Parses `"Superstep-4"` style notation; a missing `-id` suffix yields id `"0"`.
    pub fn parse(s: &str) -> Self {
        match s.rsplit_once('-') {
            Some((kind, id)) if !kind.is_empty() => Mission::new(kind, id),
            _ => Mission::new(s, "0"),
        }
    }
}

impl fmt::Display for Mission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.kind, self.id)
    }
}

/// One observed operation: an actor executing a mission, with its information
/// set and links to parent and filial operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Identity of this operation inside its tree.
    pub id: OpId,
    /// Who performed the operation.
    pub actor: Actor,
    /// What was performed.
    pub mission: Mission,
    /// Parent operation; `None` only for the root (the job).
    pub parent: Option<OpId>,
    /// Filial operations, in insertion order.
    pub children: Vec<OpId>,
    /// The information set, keyed by info name.
    pub infos: Vec<Info>,
}

impl Operation {
    /// Human-readable `Mission @ Actor` label, e.g. `Superstep-4 @ Worker-3`.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.mission, self.actor)
    }

    /// Looks up an info by name.
    pub fn info(&self, name: &str) -> Option<&Info> {
        self.infos.iter().find(|i| i.name == name)
    }

    /// Looks up an info value by name.
    pub fn info_value(&self, name: &str) -> Option<&InfoValue> {
        self.info(name).map(|i| &i.value)
    }

    /// Convenience accessor for a numeric info (integers are widened).
    pub fn info_f64(&self, name: &str) -> Option<f64> {
        self.info_value(name).and_then(InfoValue::as_f64)
    }

    /// Convenience accessor for an integer info.
    pub fn info_i64(&self, name: &str) -> Option<i64> {
        self.info_value(name).and_then(InfoValue::as_i64)
    }

    /// Start time in microseconds since job epoch, if recorded.
    pub fn start_us(&self) -> Option<u64> {
        self.info_i64(crate::names::START_TIME).map(|v| v as u64)
    }

    /// End time in microseconds since job epoch, if recorded.
    pub fn end_us(&self) -> Option<u64> {
        self.info_i64(crate::names::END_TIME).map(|v| v as u64)
    }

    /// Duration in microseconds: the `Duration` info if derived, otherwise
    /// computed from start and end times.
    pub fn duration_us(&self) -> Option<u64> {
        if let Some(d) = self.info_i64(crate::names::DURATION) {
            return Some(d as u64);
        }
        match (self.start_us(), self.end_us()) {
            (Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        }
    }

    /// Inserts or replaces an info record (names are unique per operation).
    pub fn set_info(&mut self, info: Info) {
        match self.infos.iter_mut().find(|i| i.name == info.name) {
            Some(slot) => *slot = info,
            None => self.infos.push(info),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::{Info, InfoValue};

    fn op() -> Operation {
        Operation {
            id: OpId(0),
            actor: Actor::new("Worker", "3"),
            mission: Mission::new("Superstep", "4"),
            parent: None,
            children: vec![],
            infos: vec![],
        }
    }

    #[test]
    fn label_formats_mission_at_actor() {
        assert_eq!(op().label(), "Superstep-4 @ Worker-3");
    }

    #[test]
    fn actor_parse_roundtrip() {
        let a = Actor::parse("Worker-12");
        assert_eq!(a, Actor::new("Worker", "12"));
        assert_eq!(Actor::parse(&a.to_string()), a);
    }

    #[test]
    fn actor_parse_without_id_defaults_to_zero() {
        assert_eq!(Actor::parse("Job"), Actor::new("Job", "0"));
    }

    #[test]
    fn mission_parse_keeps_compound_kind() {
        // Only the last dash separates the id.
        assert_eq!(Mission::parse("Pre-Step-2"), Mission::new("Pre-Step", "2"));
    }

    #[test]
    fn set_info_replaces_existing_record() {
        let mut o = op();
        o.set_info(Info::raw("X", InfoValue::Int(1)));
        o.set_info(Info::raw("X", InfoValue::Int(2)));
        assert_eq!(o.infos.len(), 1);
        assert_eq!(o.info_i64("X"), Some(2));
    }

    #[test]
    fn duration_prefers_explicit_info() {
        let mut o = op();
        o.set_info(Info::raw(crate::names::START_TIME, InfoValue::Int(100)));
        o.set_info(Info::raw(crate::names::END_TIME, InfoValue::Int(400)));
        assert_eq!(o.duration_us(), Some(300));
        o.set_info(Info::raw(crate::names::DURATION, InfoValue::Int(250)));
        assert_eq!(o.duration_us(), Some(250));
    }

    #[test]
    fn duration_none_when_end_before_start() {
        let mut o = op();
        o.set_info(Info::raw(crate::names::START_TIME, InfoValue::Int(500)));
        o.set_info(Info::raw(crate::names::END_TIME, InfoValue::Int(400)));
        assert_eq!(o.duration_us(), None);
    }
}
