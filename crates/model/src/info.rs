//! Info records: the information set of an operation.
//!
//! Each operation's performance characteristics are described by its infos
//! (paper Figure 1): raw facts collected from platform or environment logs
//! (e.g. `StartTime`, `BytesRead`) and metrics derived from them by rules
//! (e.g. `Duration`, `ComputeFraction`). Every info carries its *source*, so
//! an archive is self-describing: an analyst can always trace a metric back
//! to the raw records it was computed from.

use serde::{Deserialize, Serialize};

/// A single raw record that contributed to an info, e.g. one parsed log line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceRecord {
    /// Where the record came from, e.g. `"platform:node04/worker.log"` or
    /// `"env:node04/cpu"`.
    pub origin: String,
    /// The raw content, e.g. the log line.
    pub content: String,
}

impl SourceRecord {
    /// Creates a source record.
    pub fn new(origin: impl Into<String>, content: impl Into<String>) -> Self {
        SourceRecord {
            origin: origin.into(),
            content: content.into(),
        }
    }
}

/// Provenance of an info: collected raw, or derived by a named rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InfoSource {
    /// Collected directly from monitoring output.
    Raw {
        /// The records the value was extracted from (possibly empty when the
        /// producer chose not to retain raw lines).
        records: Vec<SourceRecord>,
    },
    /// Computed by a derivation rule from other infos.
    Derived {
        /// Name of the rule that produced the value.
        rule: String,
        /// `operation-label/info-name` references of the inputs.
        inputs: Vec<String>,
    },
}

/// The value of an info.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InfoValue {
    /// Integer quantity (counts, microsecond timestamps, bytes).
    Int(i64),
    /// Real-valued quantity (rates, fractions).
    Float(f64),
    /// Free-form text (node names, dataset ids).
    Text(String),
    /// A time series of `(time_us, value)` samples, e.g. CPU usage.
    Series(Vec<(u64, f64)>),
}

impl InfoValue {
    /// Returns the value as `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            InfoValue::Int(v) => Some(*v as f64),
            InfoValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            InfoValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as text when it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            InfoValue::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the value as a time series when it is one.
    pub fn as_series(&self) -> Option<&[(u64, f64)]> {
        match self {
            InfoValue::Series(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            InfoValue::Int(_) => "int",
            InfoValue::Float(_) => "float",
            InfoValue::Text(_) => "text",
            InfoValue::Series(_) => "series",
        }
    }
}

/// One named fact about an operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Info {
    /// Name, unique within the operation, e.g. `"StartTime"`.
    pub name: String,
    /// The value.
    pub value: InfoValue,
    /// Provenance.
    pub source: InfoSource,
}

impl Info {
    /// Creates a raw info with no retained source records.
    pub fn raw(name: impl Into<String>, value: InfoValue) -> Self {
        Info {
            name: name.into(),
            value,
            source: InfoSource::Raw { records: vec![] },
        }
    }

    /// Creates a raw info with the records it was extracted from.
    pub fn raw_with_records(
        name: impl Into<String>,
        value: InfoValue,
        records: Vec<SourceRecord>,
    ) -> Self {
        Info {
            name: name.into(),
            value,
            source: InfoSource::Raw { records },
        }
    }

    /// Creates a derived info attributed to `rule` with input references.
    pub fn derived(
        name: impl Into<String>,
        value: InfoValue,
        rule: impl Into<String>,
        inputs: Vec<String>,
    ) -> Self {
        Info {
            name: name.into(),
            value,
            source: InfoSource::Derived {
                rule: rule.into(),
                inputs,
            },
        }
    }

    /// True when the info was derived rather than collected.
    pub fn is_derived(&self) -> bool {
        matches!(self.source, InfoSource::Derived { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_accessors_widen_ints() {
        assert_eq!(InfoValue::Int(7).as_f64(), Some(7.0));
        assert_eq!(InfoValue::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(InfoValue::Text("x".into()).as_f64(), None);
        assert_eq!(InfoValue::Float(0.5).as_i64(), None);
    }

    #[test]
    fn derived_flag_reflects_source() {
        let raw = Info::raw("A", InfoValue::Int(1));
        let der = Info::derived("B", InfoValue::Int(2), "Duration", vec!["A".into()]);
        assert!(!raw.is_derived());
        assert!(der.is_derived());
    }

    #[test]
    fn series_accessor() {
        let v = InfoValue::Series(vec![(0, 1.0), (1_000_000, 2.0)]);
        assert_eq!(v.as_series().unwrap().len(), 2);
        assert_eq!(v.kind(), "series");
    }
}
