//! Arena-backed operation trees: one observed job execution.
//!
//! The tree owns all [`Operation`]s of a job; parent/child links are
//! [`OpId`] indices into the arena. The root is the job operation itself.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::info::Info;
use crate::op::{Actor, Mission, OpId, Operation};

/// The operation hierarchy of one job execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OperationTree {
    ops: Vec<Operation>,
    root: Option<OpId>,
}

impl OperationTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations in the tree.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the tree holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The root operation id (the job), if any operation has been added.
    pub fn root(&self) -> Option<OpId> {
        self.root
    }

    /// Adds the root operation. The first operation added this way becomes
    /// the job; adding a second root replaces nothing and returns an error.
    pub fn add_root(&mut self, actor: Actor, mission: Mission) -> Result<OpId, ModelError> {
        if let Some(r) = self.root {
            return Err(ModelError::InvalidLink {
                child: OpId(self.ops.len() as u32),
                parent: r,
                reason: "tree already has a root",
            });
        }
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Operation {
            id,
            actor,
            mission,
            parent: None,
            children: vec![],
            infos: vec![],
        });
        self.root = Some(id);
        Ok(id)
    }

    /// Adds a child operation under `parent`.
    pub fn add_child(
        &mut self,
        parent: OpId,
        actor: Actor,
        mission: Mission,
    ) -> Result<OpId, ModelError> {
        if parent.0 as usize >= self.ops.len() {
            return Err(ModelError::UnknownOperation(parent));
        }
        let id = OpId(self.ops.len() as u32);
        self.ops.push(Operation {
            id,
            actor,
            mission,
            parent: Some(parent),
            children: vec![],
            infos: vec![],
        });
        self.ops[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Borrows an operation.
    pub fn get(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.0 as usize)
    }

    /// Mutably borrows an operation.
    pub fn get_mut(&mut self, id: OpId) -> Option<&mut Operation> {
        self.ops.get_mut(id.0 as usize)
    }

    /// Borrows an operation, panicking on an invalid id (ids produced by this
    /// tree are always valid).
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.0 as usize]
    }

    /// Mutable variant of [`OperationTree::op`].
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        &mut self.ops[id.0 as usize]
    }

    /// Attaches an info to an operation.
    pub fn set_info(&mut self, id: OpId, info: Info) -> Result<(), ModelError> {
        self.get_mut(id)
            .ok_or(ModelError::UnknownOperation(id))?
            .set_info(info);
        Ok(())
    }

    /// Iterates over all operations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter()
    }

    /// Iterates over ids and operations in depth-first pre-order from the root.
    pub fn dfs(&self) -> Vec<OpId> {
        let mut out = Vec::with_capacity(self.ops.len());
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            out.push(id);
            // Push children reversed so they pop in insertion order.
            for &c in self.op(id).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Ids in bottom-up order (every child before its parent), for rule
    /// evaluation.
    pub fn bottom_up(&self) -> Vec<OpId> {
        let mut order = self.dfs();
        order.reverse();
        order
    }

    /// Depth of an operation: root = 0.
    pub fn depth(&self, id: OpId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.op(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// All operations whose mission kind equals `kind`.
    pub fn by_mission_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Operation> {
        self.ops.iter().filter(move |o| o.mission.kind == kind)
    }

    /// All operations whose actor kind equals `kind`.
    pub fn by_actor_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Operation> {
        self.ops.iter().filter(move |o| o.actor.kind == kind)
    }

    /// Finds the first child of `parent` with the given mission kind.
    pub fn child_by_mission(&self, parent: OpId, kind: &str) -> Option<OpId> {
        self.op(parent)
            .children
            .iter()
            .copied()
            .find(|&c| self.op(c).mission.kind == kind)
    }

    /// Children of `parent` as operations.
    pub fn children(&self, parent: OpId) -> impl Iterator<Item = &Operation> {
        self.op(parent).children.iter().map(|&c| self.op(c))
    }

    /// All operation ids of the subtree rooted at `id` (pre-order).
    pub fn subtree(&self, id: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            for &c in self.op(cur).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Time span `(earliest, latest)` over every timestamp in the tree, in
    /// microseconds since job epoch. Operations without timestamps are
    /// ignored; inverted stamps (end before start, as damaged logs can
    /// produce) still contribute both endpoints, so the span never inverts.
    pub fn span_us(&self) -> Option<(u64, u64)> {
        let mut span: Option<(u64, u64)> = None;
        for o in &self.ops {
            if let (Some(s), Some(e)) = (o.start_us(), o.end_us()) {
                let (a, b) = (s.min(e), s.max(e));
                span = Some(match span {
                    None => (a, b),
                    Some((lo, hi)) => (lo.min(a), hi.max(b)),
                });
            }
        }
        span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::InfoValue;
    use crate::names;

    fn sample() -> (OperationTree, OpId, OpId, OpId) {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        let proc_ = t
            .add_child(
                job,
                Actor::new("Job", "0"),
                Mission::new("ProcessGraph", "0"),
            )
            .unwrap();
        (t, job, load, proc_)
    }

    #[test]
    fn add_root_twice_fails() {
        let (mut t, ..) = sample();
        assert!(t
            .add_root(Actor::new("Job", "1"), Mission::new("X", "0"))
            .is_err());
    }

    #[test]
    fn add_child_to_unknown_parent_fails() {
        let mut t = OperationTree::new();
        assert_eq!(
            t.add_child(OpId(9), Actor::new("A", "0"), Mission::new("M", "0")),
            Err(ModelError::UnknownOperation(OpId(9)))
        );
    }

    #[test]
    fn dfs_is_preorder() {
        let (mut t, job, load, _) = sample();
        let sub = t
            .add_child(
                load,
                Actor::new("Worker", "1"),
                Mission::new("LocalLoad", "0"),
            )
            .unwrap();
        let order = t.dfs();
        assert_eq!(order[0], job);
        // load comes before its own child, child before proc.
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(load) < pos(sub));
    }

    #[test]
    fn bottom_up_visits_children_first() {
        let (t, job, load, proc_) = sample();
        let order = t.bottom_up();
        let pos = |id: OpId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(load) < pos(job));
        assert!(pos(proc_) < pos(job));
    }

    #[test]
    fn depth_counts_hops_to_root() {
        let (mut t, job, load, _) = sample();
        let sub = t
            .add_child(load, Actor::new("W", "1"), Mission::new("LL", "0"))
            .unwrap();
        assert_eq!(t.depth(job), 0);
        assert_eq!(t.depth(load), 1);
        assert_eq!(t.depth(sub), 2);
    }

    #[test]
    fn span_covers_all_timestamped_ops() {
        let (mut t, _, load, proc_) = sample();
        t.set_info(load, Info::raw(names::START_TIME, InfoValue::Int(10)))
            .unwrap();
        t.set_info(load, Info::raw(names::END_TIME, InfoValue::Int(50)))
            .unwrap();
        t.set_info(proc_, Info::raw(names::START_TIME, InfoValue::Int(50)))
            .unwrap();
        t.set_info(proc_, Info::raw(names::END_TIME, InfoValue::Int(120)))
            .unwrap();
        assert_eq!(t.span_us(), Some((10, 120)));
    }

    #[test]
    fn subtree_returns_descendants_only() {
        let (mut t, job, load, proc_) = sample();
        let sub = t
            .add_child(load, Actor::new("W", "1"), Mission::new("LL", "0"))
            .unwrap();
        let s = t.subtree(load);
        assert!(s.contains(&load) && s.contains(&sub));
        assert!(!s.contains(&job) && !s.contains(&proc_));
    }

    #[test]
    fn lookup_by_kinds() {
        let (t, _, load, _) = sample();
        assert_eq!(t.by_mission_kind("LoadGraph").count(), 1);
        assert_eq!(t.by_actor_kind("Job").count(), 3);
        assert_eq!(
            t.child_by_mission(t.root().unwrap(), "LoadGraph"),
            Some(load)
        );
    }
}
