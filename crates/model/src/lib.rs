//! # granula-model
//!
//! The Granula performance-model language (paper §3.2).
//!
//! Granula abstracts a Big Data job as a *hierarchy of operations*: the job is
//! the root operation, and every operation may be recursively decomposed into
//! filial operations. Each operation is annotated as an **actor** (e.g. a
//! worker, a master, the job client) executing a **mission** (e.g. a
//! computational algorithm step, a communication protocol round). Internally,
//! the performance characteristics of an operation are described by its
//! **information set** (`Info` records), from which sophisticated performance
//! metrics are *derived* via rules.
//!
//! The crate provides two complementary halves:
//!
//! * the *instance* side — [`Operation`], [`Info`], and the arena-backed
//!   [`OperationTree`] that holds one observed job execution, and
//! * the *definition* side — [`PerformanceModel`] and
//!   [`OperationTypeDef`], the analyst-authored description of which
//!   operations a platform is expected to perform, at which
//!   [`AbstractionLevel`], carrying which infos, with which
//!   [`DerivationRule`]s.
//!
//! Models are developed *incrementally* (requirement R3 of the paper): an
//! analyst starts from the domain level and refines only the operation types
//! that need finer-grained analysis. See [`PerformanceModel::refine`].
//!
//! ```
//! use granula_model::*;
//!
//! // An observed execution: a job with one load operation.
//! let mut tree = OperationTree::new();
//! let job = tree.add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))?;
//! let load = tree.add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))?;
//! tree.set_info(load, Info::raw(names::START_TIME, InfoValue::Int(0)))?;
//! tree.set_info(load, Info::raw(names::END_TIME, InfoValue::Int(2_000_000)))?;
//!
//! // The analyst's model: derive Duration everywhere.
//! let model = PerformanceModel::new("demo", "Demo")
//!     .with_type(OperationTypeDef::new("Job", "Job", AbstractionLevel::Domain))
//!     .with_type(
//!         OperationTypeDef::new("Job", "LoadGraph", AbstractionLevel::Domain)
//!             .child_of("Job", "Job"),
//!     );
//! RuleEngine::apply(&model, &mut tree);
//! assert_eq!(tree.op(load).duration_us(), Some(2_000_000));
//! # Ok::<(), granula_model::ModelError>(())
//! ```

pub mod error;
pub mod info;
pub mod level;
pub mod modeldef;
pub mod op;
pub mod rules;
pub mod tree;
pub mod validate;

pub use error::ModelError;
pub use info::{Info, InfoSource, InfoValue, SourceRecord};
pub use level::AbstractionLevel;
pub use modeldef::{
    model_from_json, model_to_json, InfoRequirement, OperationTypeDef, OperationTypeId,
    PerformanceModel,
};
pub use op::{Actor, Mission, OpId, Operation};
pub use rules::{ChildSelector, DerivationRule, RuleEngine};
pub use tree::OperationTree;
pub use validate::{ValidationIssue, ValidationReport};

/// Well-known info names used throughout the Granula pipeline.
pub mod names {
    /// Wall-clock start of the operation, in microseconds since job epoch.
    pub const START_TIME: &str = "StartTime";
    /// Wall-clock end of the operation, in microseconds since job epoch.
    pub const END_TIME: &str = "EndTime";
    /// Derived duration (`EndTime - StartTime`) in microseconds.
    pub const DURATION: &str = "Duration";
    /// The node (hostname) an operation ran on, when it is node-bound.
    pub const NODE: &str = "Node";
}
