//! Error type shared across the model crate.

use std::fmt;

use crate::op::OpId;

/// Errors raised while constructing or evaluating performance models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An operation id is not present in the tree it was used with.
    UnknownOperation(OpId),
    /// An info with the given name was expected on the operation but absent.
    MissingInfo { op: OpId, name: String },
    /// An info held a value of a different kind than the rule required.
    InfoType {
        op: OpId,
        name: String,
        expected: &'static str,
    },
    /// Attempted to create a cycle or otherwise invalid parent link.
    InvalidLink {
        child: OpId,
        parent: OpId,
        reason: &'static str,
    },
    /// The model definition references an operation type that does not exist.
    UnknownOperationType(String),
    /// An operation type was defined twice in the same model.
    DuplicateOperationType(String),
    /// A derivation rule failed to evaluate.
    Rule {
        op: OpId,
        rule: String,
        reason: String,
    },
    /// The tree has no root operation (empty tree where one was required).
    EmptyTree,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownOperation(id) => write!(f, "unknown operation {id}"),
            ModelError::MissingInfo { op, name } => {
                write!(f, "operation {op} is missing info `{name}`")
            }
            ModelError::InfoType { op, name, expected } => {
                write!(f, "info `{name}` on operation {op} is not {expected}")
            }
            ModelError::InvalidLink {
                child,
                parent,
                reason,
            } => {
                write!(f, "cannot link {child} under {parent}: {reason}")
            }
            ModelError::UnknownOperationType(t) => write!(f, "unknown operation type `{t}`"),
            ModelError::DuplicateOperationType(t) => {
                write!(f, "operation type `{t}` defined twice")
            }
            ModelError::Rule { op, rule, reason } => {
                write!(f, "rule `{rule}` failed on operation {op}: {reason}")
            }
            ModelError::EmptyTree => write!(f, "operation tree is empty"),
        }
    }
}

impl std::error::Error for ModelError {}
