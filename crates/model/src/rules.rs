//! Derivation rules: transforming raw info into performance metrics.
//!
//! The performance model defines, per operation type, "the rules to
//! transform raw info into performance metrics" (paper §3.3, P1). Rules are
//! evaluated bottom-up over an [`OperationTree`], so aggregate metrics of a
//! parent can consume metrics derived on its children.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::info::{Info, InfoValue};
use crate::modeldef::PerformanceModel;
use crate::names;
use crate::op::{OpId, Operation};
use crate::tree::OperationTree;

/// Selects a subset of an operation's children for aggregation rules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChildSelector {
    /// Every child.
    All,
    /// Children with the given mission kind.
    MissionKind(String),
    /// Children with the given actor kind.
    ActorKind(String),
}

impl ChildSelector {
    fn matches(&self, op: &Operation) -> bool {
        match self {
            ChildSelector::All => true,
            ChildSelector::MissionKind(k) => op.mission.kind == *k,
            ChildSelector::ActorKind(k) => op.actor.kind == *k,
        }
    }
}

/// A rule deriving one info on an operation from other infos.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DerivationRule {
    /// `Duration := EndTime - StartTime` (microseconds).
    Duration,
    /// `output := sum(child.info)` over selected children.
    SumChildren {
        info: String,
        select: ChildSelector,
        output: String,
    },
    /// `output := max(child.info)` over selected children.
    MaxChildren {
        info: String,
        select: ChildSelector,
        output: String,
    },
    /// `output := min(child.info)` over selected children.
    MinChildren {
        info: String,
        select: ChildSelector,
        output: String,
    },
    /// `output := mean(child.info)` over selected children.
    MeanChildren {
        info: String,
        select: ChildSelector,
        output: String,
    },
    /// `output := count` of selected children.
    CountChildren {
        select: ChildSelector,
        output: String,
    },
    /// `output := max(child.EndTime) - min(child.StartTime)` over selected
    /// children (the *makespan* of a group of parallel children).
    SpanChildren {
        select: ChildSelector,
        output: String,
    },
    /// `output := self.info / parent.info` — e.g. fraction of the job
    /// runtime spent in this operation.
    FractionOfParent { info: String, output: String },
    /// `output := self.a - self.b`.
    Diff {
        a: String,
        b: String,
        output: String,
    },
    /// `output := self.amount / (self.Duration in seconds)` — a throughput.
    RatePerSecond { amount: String, output: String },
}

impl DerivationRule {
    /// A short rule name used for provenance.
    pub fn name(&self) -> &'static str {
        match self {
            DerivationRule::Duration => "Duration",
            DerivationRule::SumChildren { .. } => "SumChildren",
            DerivationRule::MaxChildren { .. } => "MaxChildren",
            DerivationRule::MinChildren { .. } => "MinChildren",
            DerivationRule::MeanChildren { .. } => "MeanChildren",
            DerivationRule::CountChildren { .. } => "CountChildren",
            DerivationRule::SpanChildren { .. } => "SpanChildren",
            DerivationRule::FractionOfParent { .. } => "FractionOfParent",
            DerivationRule::Diff { .. } => "Diff",
            DerivationRule::RatePerSecond { .. } => "RatePerSecond",
        }
    }
}

/// Evaluates derivation rules over operation trees.
#[derive(Debug, Default)]
pub struct RuleEngine;

impl RuleEngine {
    /// Applies every rule of `model` to `tree`, bottom-up. Returns the number
    /// of infos derived. Rules whose inputs are absent are skipped silently:
    /// monitoring is allowed to under-deliver and the model to over-specify
    /// (the validation pass reports such gaps; see [`crate::validate`]).
    pub fn apply(model: &PerformanceModel, tree: &mut OperationTree) -> usize {
        let mut derived = 0;
        for id in tree.bottom_up() {
            let Some(ty) = model.match_op(tree.op(id)) else {
                continue;
            };
            let rules = ty.rules.clone();
            for rule in &rules {
                if Self::apply_rule(tree, id, rule).is_some() {
                    derived += 1;
                }
            }
        }
        derived
    }

    /// Applies a single rule to one operation; returns the derived info name
    /// on success.
    pub fn apply_rule(tree: &mut OperationTree, id: OpId, rule: &DerivationRule) -> Option<String> {
        let info = Self::evaluate(tree, id, rule)?;
        let name = info.name.clone();
        tree.op_mut(id).set_info(info);
        Some(name)
    }

    fn child_values(
        tree: &OperationTree,
        id: OpId,
        select: &ChildSelector,
        info: &str,
    ) -> (Vec<f64>, Vec<String>) {
        let mut vals = Vec::new();
        let mut inputs = Vec::new();
        for child in tree.children(id) {
            if select.matches(child) {
                if let Some(v) = child.info_f64(info) {
                    vals.push(v);
                    inputs.push(format!("{}/{}", child.label(), info));
                }
            }
        }
        (vals, inputs)
    }

    fn number(v: f64) -> InfoValue {
        if v.fract() == 0.0 && v.abs() < i64::MAX as f64 {
            InfoValue::Int(v as i64)
        } else {
            InfoValue::Float(v)
        }
    }

    fn evaluate(tree: &OperationTree, id: OpId, rule: &DerivationRule) -> Option<Info> {
        let op = tree.op(id);
        let rule_name = rule.name();
        match rule {
            DerivationRule::Duration => {
                let (s, e) = (op.start_us()?, op.end_us()?);
                if e < s {
                    return None;
                }
                Some(Info::derived(
                    names::DURATION,
                    InfoValue::Int((e - s) as i64),
                    rule_name,
                    vec![
                        format!("{}/{}", op.label(), names::START_TIME),
                        format!("{}/{}", op.label(), names::END_TIME),
                    ],
                ))
            }
            DerivationRule::SumChildren {
                info,
                select,
                output,
            } => {
                let (vals, inputs) = Self::child_values(tree, id, select, info);
                if vals.is_empty() {
                    return None;
                }
                Some(Info::derived(
                    output,
                    Self::number(vals.iter().sum()),
                    rule_name,
                    inputs,
                ))
            }
            DerivationRule::MaxChildren {
                info,
                select,
                output,
            } => {
                let (vals, inputs) = Self::child_values(tree, id, select, info);
                let m = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                if vals.is_empty() {
                    return None;
                }
                Some(Info::derived(output, Self::number(m), rule_name, inputs))
            }
            DerivationRule::MinChildren {
                info,
                select,
                output,
            } => {
                let (vals, inputs) = Self::child_values(tree, id, select, info);
                let m = vals.iter().copied().fold(f64::INFINITY, f64::min);
                if vals.is_empty() {
                    return None;
                }
                Some(Info::derived(output, Self::number(m), rule_name, inputs))
            }
            DerivationRule::MeanChildren {
                info,
                select,
                output,
            } => {
                let (vals, inputs) = Self::child_values(tree, id, select, info);
                if vals.is_empty() {
                    return None;
                }
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                Some(Info::derived(
                    output,
                    InfoValue::Float(mean),
                    rule_name,
                    inputs,
                ))
            }
            DerivationRule::CountChildren { select, output } => {
                let n = tree.children(id).filter(|c| select.matches(c)).count();
                Some(Info::derived(
                    output,
                    InfoValue::Int(n as i64),
                    rule_name,
                    vec![],
                ))
            }
            DerivationRule::SpanChildren { select, output } => {
                let mut lo = u64::MAX;
                let mut hi = 0u64;
                let mut inputs = Vec::new();
                for child in tree.children(id) {
                    if select.matches(child) {
                        if let (Some(s), Some(e)) = (child.start_us(), child.end_us()) {
                            lo = lo.min(s);
                            hi = hi.max(e);
                            inputs.push(child.label());
                        }
                    }
                }
                if inputs.is_empty() || hi < lo {
                    return None;
                }
                Some(Info::derived(
                    output,
                    InfoValue::Int((hi - lo) as i64),
                    rule_name,
                    inputs,
                ))
            }
            DerivationRule::FractionOfParent { info, output } => {
                let own = op.info_f64(info)?;
                let parent = tree.op(op.parent?);
                let base = parent.info_f64(info)?;
                if base == 0.0 {
                    return None;
                }
                Some(Info::derived(
                    output,
                    InfoValue::Float(own / base),
                    rule_name,
                    vec![
                        format!("{}/{}", op.label(), info),
                        format!("{}/{}", parent.label(), info),
                    ],
                ))
            }
            DerivationRule::Diff { a, b, output } => {
                let (va, vb) = (op.info_f64(a)?, op.info_f64(b)?);
                Some(Info::derived(
                    output,
                    Self::number(va - vb),
                    rule_name,
                    vec![
                        format!("{}/{}", op.label(), a),
                        format!("{}/{}", op.label(), b),
                    ],
                ))
            }
            DerivationRule::RatePerSecond { amount, output } => {
                let v = op.info_f64(amount)?;
                let d_us = op.duration_us()? as f64;
                if d_us <= 0.0 {
                    return None;
                }
                Some(Info::derived(
                    output,
                    InfoValue::Float(v / (d_us / 1e6)),
                    rule_name,
                    vec![format!("{}/{}", op.label(), amount)],
                ))
            }
        }
    }
}

/// Convenience: derive `Duration` on every operation that has start and end
/// timestamps but no duration yet. Returns the number of durations derived.
pub fn derive_all_durations(tree: &mut OperationTree) -> usize {
    let mut n = 0;
    for id in tree.bottom_up() {
        let op = tree.op(id);
        if op.info(names::DURATION).is_none()
            && RuleEngine::apply_rule(tree, id, &DerivationRule::Duration).is_some()
        {
            n += 1;
        }
    }
    n
}

/// Evaluate one rule on an operation without a model; exposed for tests and
/// ad-hoc analysis. Errors if the operation id is invalid.
pub fn apply_rule_checked(
    tree: &mut OperationTree,
    id: OpId,
    rule: &DerivationRule,
) -> Result<Option<String>, ModelError> {
    if tree.get(id).is_none() {
        return Err(ModelError::UnknownOperation(id));
    }
    Ok(RuleEngine::apply_rule(tree, id, rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Actor, Mission};

    fn tree_with_children(vals: &[i64]) -> (OperationTree, OpId, Vec<OpId>) {
        let mut t = OperationTree::new();
        let root = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        let mut kids = Vec::new();
        for (i, v) in vals.iter().enumerate() {
            let c = t
                .add_child(
                    root,
                    Actor::new("Worker", i.to_string()),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            t.set_info(c, Info::raw("Work", InfoValue::Int(*v)))
                .unwrap();
            kids.push(c);
        }
        (t, root, kids)
    }

    #[test]
    fn duration_rule_derives_end_minus_start() {
        let mut t = OperationTree::new();
        let r = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        t.set_info(r, Info::raw(names::START_TIME, InfoValue::Int(1_000)))
            .unwrap();
        t.set_info(r, Info::raw(names::END_TIME, InfoValue::Int(5_500)))
            .unwrap();
        RuleEngine::apply_rule(&mut t, r, &DerivationRule::Duration).unwrap();
        assert_eq!(t.op(r).info_i64(names::DURATION), Some(4_500));
        assert!(t.op(r).info(names::DURATION).unwrap().is_derived());
    }

    #[test]
    fn sum_max_min_mean_count_over_children() {
        let (mut t, root, _) = tree_with_children(&[10, 30, 20]);
        for rule in [
            DerivationRule::SumChildren {
                info: "Work".into(),
                select: ChildSelector::All,
                output: "TotalWork".into(),
            },
            DerivationRule::MaxChildren {
                info: "Work".into(),
                select: ChildSelector::All,
                output: "MaxWork".into(),
            },
            DerivationRule::MinChildren {
                info: "Work".into(),
                select: ChildSelector::All,
                output: "MinWork".into(),
            },
            DerivationRule::MeanChildren {
                info: "Work".into(),
                select: ChildSelector::All,
                output: "MeanWork".into(),
            },
            DerivationRule::CountChildren {
                select: ChildSelector::All,
                output: "NumChildren".into(),
            },
        ] {
            RuleEngine::apply_rule(&mut t, root, &rule).unwrap();
        }
        let op = t.op(root);
        assert_eq!(op.info_i64("TotalWork"), Some(60));
        assert_eq!(op.info_i64("MaxWork"), Some(30));
        assert_eq!(op.info_i64("MinWork"), Some(10));
        assert_eq!(op.info_f64("MeanWork"), Some(20.0));
        assert_eq!(op.info_i64("NumChildren"), Some(3));
    }

    #[test]
    fn selector_filters_by_mission_kind() {
        let (mut t, root, _) = tree_with_children(&[10, 30]);
        let other = t
            .add_child(root, Actor::new("Master", "0"), Mission::new("Sync", "0"))
            .unwrap();
        t.set_info(other, Info::raw("Work", InfoValue::Int(999)))
            .unwrap();
        RuleEngine::apply_rule(
            &mut t,
            root,
            &DerivationRule::SumChildren {
                info: "Work".into(),
                select: ChildSelector::MissionKind("Compute".into()),
                output: "ComputeWork".into(),
            },
        )
        .unwrap();
        assert_eq!(t.op(root).info_i64("ComputeWork"), Some(40));
    }

    #[test]
    fn fraction_of_parent() {
        let (mut t, root, kids) = tree_with_children(&[25]);
        t.set_info(root, Info::raw("Work", InfoValue::Int(100)))
            .unwrap();
        RuleEngine::apply_rule(
            &mut t,
            kids[0],
            &DerivationRule::FractionOfParent {
                info: "Work".into(),
                output: "Frac".into(),
            },
        )
        .unwrap();
        assert_eq!(t.op(kids[0]).info_f64("Frac"), Some(0.25));
    }

    #[test]
    fn fraction_of_parent_skips_zero_base() {
        let (mut t, root, kids) = tree_with_children(&[25]);
        t.set_info(root, Info::raw("Work", InfoValue::Int(0)))
            .unwrap();
        assert!(RuleEngine::apply_rule(
            &mut t,
            kids[0],
            &DerivationRule::FractionOfParent {
                info: "Work".into(),
                output: "Frac".into()
            },
        )
        .is_none());
    }

    #[test]
    fn span_children_is_makespan() {
        let (mut t, root, kids) = tree_with_children(&[1, 1]);
        t.set_info(kids[0], Info::raw(names::START_TIME, InfoValue::Int(100)))
            .unwrap();
        t.set_info(kids[0], Info::raw(names::END_TIME, InfoValue::Int(300)))
            .unwrap();
        t.set_info(kids[1], Info::raw(names::START_TIME, InfoValue::Int(200)))
            .unwrap();
        t.set_info(kids[1], Info::raw(names::END_TIME, InfoValue::Int(700)))
            .unwrap();
        RuleEngine::apply_rule(
            &mut t,
            root,
            &DerivationRule::SpanChildren {
                select: ChildSelector::All,
                output: "Makespan".into(),
            },
        )
        .unwrap();
        assert_eq!(t.op(root).info_i64("Makespan"), Some(600));
    }

    #[test]
    fn rate_per_second() {
        let (mut t, _, kids) = tree_with_children(&[0]);
        let c = kids[0];
        t.set_info(c, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(c, Info::raw(names::END_TIME, InfoValue::Int(2_000_000)))
            .unwrap();
        t.set_info(c, Info::raw("Bytes", InfoValue::Int(10_000_000)))
            .unwrap();
        RuleEngine::apply_rule(
            &mut t,
            c,
            &DerivationRule::RatePerSecond {
                amount: "Bytes".into(),
                output: "Throughput".into(),
            },
        )
        .unwrap();
        assert_eq!(t.op(c).info_f64("Throughput"), Some(5_000_000.0));
    }

    #[test]
    fn missing_inputs_skip_rule() {
        let (mut t, root, _) = tree_with_children(&[]);
        assert!(RuleEngine::apply_rule(&mut t, root, &DerivationRule::Duration).is_none());
        assert!(RuleEngine::apply_rule(
            &mut t,
            root,
            &DerivationRule::SumChildren {
                info: "Work".into(),
                select: ChildSelector::All,
                output: "T".into()
            }
        )
        .is_none());
    }

    #[test]
    fn derive_all_durations_covers_tree() {
        let (mut t, root, kids) = tree_with_children(&[1, 2]);
        for id in [root, kids[0], kids[1]] {
            t.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(0)))
                .unwrap();
            t.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(10)))
                .unwrap();
        }
        assert_eq!(derive_all_durations(&mut t), 3);
        // Second pass derives nothing new.
        assert_eq!(derive_all_durations(&mut t), 0);
    }

    #[test]
    fn apply_rule_checked_rejects_bad_id() {
        let mut t = OperationTree::new();
        assert!(apply_rule_checked(&mut t, OpId(3), &DerivationRule::Duration).is_err());
    }
}
