//! Performance-model definitions: the analyst's abstract description of a
//! platform (paper §3.2, P1).
//!
//! A [`PerformanceModel`] is a set of [`OperationTypeDef`]s arranged in a
//! type hierarchy: each operation type names the (actor kind, mission kind)
//! pair it matches, its abstraction level, its parent type, the infos
//! monitoring is expected to collect for it, and the derivation rules that
//! turn those infos into metrics. Models are built incrementally: start with
//! the domain level and [`PerformanceModel::refine`] only what needs
//! finer-grained analysis.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::level::AbstractionLevel;
use crate::op::Operation;
use crate::rules::DerivationRule;

/// Identifies an operation type by the actor/mission kinds it matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OperationTypeId {
    /// Actor kind the type matches, e.g. `"Worker"`.
    pub actor_kind: String,
    /// Mission kind the type matches, e.g. `"Superstep"`.
    pub mission_kind: String,
}

impl OperationTypeId {
    /// Creates a type id.
    pub fn new(actor_kind: impl Into<String>, mission_kind: impl Into<String>) -> Self {
        OperationTypeId {
            actor_kind: actor_kind.into(),
            mission_kind: mission_kind.into(),
        }
    }

    /// `Mission @ Actor` notation.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.mission_kind, self.actor_kind)
    }
}

/// Whether an expected info is mandatory for a conforming archive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InfoRequirement {
    /// Info name, e.g. `"StartTime"`.
    pub name: String,
    /// Mandatory infos produce validation issues when absent.
    pub mandatory: bool,
}

impl InfoRequirement {
    /// A mandatory info requirement.
    pub fn required(name: impl Into<String>) -> Self {
        InfoRequirement {
            name: name.into(),
            mandatory: true,
        }
    }

    /// An optional info requirement.
    pub fn optional(name: impl Into<String>) -> Self {
        InfoRequirement {
            name: name.into(),
            mandatory: false,
        }
    }
}

/// The definition of one operation type within a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperationTypeDef {
    /// Matching key.
    pub id: OperationTypeId,
    /// Abstraction level the type belongs to.
    pub level: AbstractionLevel,
    /// Parent type, `None` for the root (job) type.
    pub parent: Option<OperationTypeId>,
    /// Infos monitoring should collect or rules should derive.
    pub infos: Vec<InfoRequirement>,
    /// Rules to evaluate on matching operations.
    pub rules: Vec<DerivationRule>,
    /// Marks iterative missions (`Superstep-0..n` by the same actor).
    pub iterative: bool,
    /// Marks task-parallel missions (same mission by many actors).
    pub parallel: bool,
    /// Free-form analyst note.
    pub description: String,
}

impl OperationTypeDef {
    /// Creates a minimal type definition; use the builder methods to extend it.
    pub fn new(
        actor_kind: impl Into<String>,
        mission_kind: impl Into<String>,
        level: AbstractionLevel,
    ) -> Self {
        OperationTypeDef {
            id: OperationTypeId::new(actor_kind, mission_kind),
            level,
            parent: None,
            infos: vec![
                InfoRequirement::required(crate::names::START_TIME),
                InfoRequirement::required(crate::names::END_TIME),
            ],
            rules: vec![DerivationRule::Duration],
            iterative: false,
            parallel: false,
            description: String::new(),
        }
    }

    /// Sets the parent type.
    pub fn child_of(
        mut self,
        actor_kind: impl Into<String>,
        mission_kind: impl Into<String>,
    ) -> Self {
        self.parent = Some(OperationTypeId::new(actor_kind, mission_kind));
        self
    }

    /// Adds an expected info.
    pub fn with_info(mut self, req: InfoRequirement) -> Self {
        self.infos.push(req);
        self
    }

    /// Adds a derivation rule.
    pub fn with_rule(mut self, rule: DerivationRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Marks the type as iterative (e.g. supersteps).
    pub fn iterative(mut self) -> Self {
        self.iterative = true;
        self
    }

    /// Marks the type as task-parallel (one mission, many actors).
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Sets the description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }
}

/// A complete performance model for one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceModel {
    /// Model name, e.g. `"giraph-v4"`.
    pub name: String,
    /// Platform the model describes, e.g. `"Giraph"`.
    pub platform: String,
    /// All operation types keyed by their matching id.
    pub types: Vec<OperationTypeDef>,
}

impl PerformanceModel {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>, platform: impl Into<String>) -> Self {
        PerformanceModel {
            name: name.into(),
            platform: platform.into(),
            types: Vec::new(),
        }
    }

    /// Adds a type definition; errors on duplicates.
    pub fn add_type(&mut self, def: OperationTypeDef) -> Result<(), ModelError> {
        if self.types.iter().any(|t| t.id == def.id) {
            return Err(ModelError::DuplicateOperationType(def.id.label()));
        }
        self.types.push(def);
        Ok(())
    }

    /// Builder-style [`PerformanceModel::add_type`]; panics on duplicates
    /// (intended for statically-known model literals).
    pub fn with_type(mut self, def: OperationTypeDef) -> Self {
        self.add_type(def)
            .expect("duplicate operation type in model literal");
        self
    }

    /// Looks up a type definition.
    pub fn get_type(&self, id: &OperationTypeId) -> Option<&OperationTypeDef> {
        self.types.iter().find(|t| t.id == *id)
    }

    /// Finds the type matching an observed operation.
    pub fn match_op(&self, op: &Operation) -> Option<&OperationTypeDef> {
        self.types
            .iter()
            .find(|t| t.id.actor_kind == op.actor.kind && t.id.mission_kind == op.mission.kind)
    }

    /// The deepest abstraction level present in the model.
    pub fn max_depth(&self) -> u8 {
        self.types
            .iter()
            .map(|t| t.level.depth())
            .max()
            .unwrap_or(0)
    }

    /// Types at a given abstraction level.
    pub fn types_at(&self, level: AbstractionLevel) -> impl Iterator<Item = &OperationTypeDef> {
        self.types.iter().filter(move |t| t.level == level)
    }

    /// **Incremental refinement (R3)**: decompose the existing type `target`
    /// by adding `children` one abstraction level finer, parented to it.
    /// Children keep their own actor/mission kinds; their level and parent
    /// are overwritten to be consistent with `target`.
    pub fn refine(
        &mut self,
        target: &OperationTypeId,
        children: Vec<OperationTypeDef>,
    ) -> Result<(), ModelError> {
        let level = self
            .get_type(target)
            .ok_or_else(|| ModelError::UnknownOperationType(target.label()))?
            .level;
        for mut child in children {
            child.level = level.finer();
            child.parent = Some(target.clone());
            self.add_type(child)?;
        }
        Ok(())
    }

    /// Restricts the model to types at or above (coarser than) `max_level`.
    /// This is the other direction of the coarse/fine trade-off: an analyst
    /// can run a cheap coarse-grained evaluation using a truncated model.
    pub fn truncated(&self, max_level: AbstractionLevel) -> PerformanceModel {
        PerformanceModel {
            name: format!("{}@{}", self.name, max_level.depth()),
            platform: self.platform.clone(),
            types: self
                .types
                .iter()
                .filter(|t| t.level.depth() <= max_level.depth())
                .cloned()
                .collect(),
        }
    }
}

/// Serializes a model to JSON — models are shareable artifacts like
/// archives (requirement R2): an analyst's model of a platform is reusable
/// by every other analyst of that platform.
pub fn model_to_json(model: &PerformanceModel) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(model)
}

/// Reads a model back from JSON.
pub fn model_from_json(json: &str) -> Result<PerformanceModel, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Actor, Mission, OpId};

    fn base_model() -> PerformanceModel {
        PerformanceModel::new("test", "TestPlatform")
            .with_type(OperationTypeDef::new(
                "Job",
                "Job",
                AbstractionLevel::Domain,
            ))
            .with_type(
                OperationTypeDef::new("Job", "LoadGraph", AbstractionLevel::Domain)
                    .child_of("Job", "Job"),
            )
    }

    fn op(actor: &str, mission: &str) -> Operation {
        Operation {
            id: OpId(0),
            actor: Actor::new(actor, "0"),
            mission: Mission::new(mission, "0"),
            parent: None,
            children: vec![],
            infos: vec![],
        }
    }

    #[test]
    fn duplicate_types_rejected() {
        let mut m = base_model();
        let dup = OperationTypeDef::new("Job", "Job", AbstractionLevel::Domain);
        assert_eq!(
            m.add_type(dup),
            Err(ModelError::DuplicateOperationType("Job @ Job".into()))
        );
    }

    #[test]
    fn match_op_by_kinds() {
        let m = base_model();
        assert!(m.match_op(&op("Job", "LoadGraph")).is_some());
        assert!(m.match_op(&op("Worker", "LoadGraph")).is_none());
    }

    #[test]
    fn refine_adds_children_one_level_finer() {
        let mut m = base_model();
        m.refine(
            &OperationTypeId::new("Job", "LoadGraph"),
            vec![OperationTypeDef::new("Worker", "LocalLoad", AbstractionLevel::Domain).parallel()],
        )
        .unwrap();
        let t = m
            .get_type(&OperationTypeId::new("Worker", "LocalLoad"))
            .unwrap();
        assert_eq!(t.level, AbstractionLevel::System);
        assert_eq!(t.parent, Some(OperationTypeId::new("Job", "LoadGraph")));
        assert!(t.parallel);
    }

    #[test]
    fn refine_unknown_target_errors() {
        let mut m = base_model();
        assert!(m
            .refine(&OperationTypeId::new("Job", "Nope"), vec![])
            .is_err());
    }

    #[test]
    fn truncated_drops_finer_levels() {
        let mut m = base_model();
        m.refine(
            &OperationTypeId::new("Job", "LoadGraph"),
            vec![OperationTypeDef::new(
                "Worker",
                "LocalLoad",
                AbstractionLevel::Domain,
            )],
        )
        .unwrap();
        assert_eq!(m.max_depth(), 2);
        let coarse = m.truncated(AbstractionLevel::Domain);
        assert_eq!(coarse.max_depth(), 1);
        assert_eq!(coarse.types.len(), 2);
    }

    #[test]
    fn model_json_roundtrip() {
        let mut m = base_model();
        m.refine(
            &OperationTypeId::new("Job", "LoadGraph"),
            vec![
                OperationTypeDef::new("Worker", "LocalLoad", AbstractionLevel::Domain)
                    .parallel()
                    .with_rule(DerivationRule::RatePerSecond {
                        amount: "Bytes".into(),
                        output: "Throughput".into(),
                    }),
            ],
        )
        .unwrap();
        let json = model_to_json(&m).unwrap();
        let back = model_from_json(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn default_type_expects_timestamps_and_duration_rule() {
        let t = OperationTypeDef::new("Job", "Job", AbstractionLevel::Domain);
        assert!(t
            .infos
            .iter()
            .any(|i| i.name == crate::names::START_TIME && i.mandatory));
        assert!(matches!(t.rules[0], DerivationRule::Duration));
    }
}
