//! Validation: does an observed operation tree conform to a performance
//! model?
//!
//! The monitoring stage is allowed to under-deliver (logs get lost) and the
//! model to over-specify (an analyst models operations the platform skipped
//! for this workload). Validation surfaces every mismatch as a
//! [`ValidationIssue`] so the analyst can decide whether to fix the model,
//! the instrumentation, or neither — this feedback drives the iterative
//! evaluation loop of paper Figure 2.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::modeldef::{OperationTypeId, PerformanceModel};
use crate::op::OpId;
use crate::tree::OperationTree;

/// One conformance problem found during validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationIssue {
    /// An observed operation matches no type in the model.
    UnmodeledOperation { op: OpId, label: String },
    /// A mandatory info is missing on a matched operation.
    MissingInfo {
        op: OpId,
        label: String,
        info: String,
    },
    /// An operation's parent has a different type than the model prescribes.
    WrongParent {
        op: OpId,
        label: String,
        expected: OperationTypeId,
        actual: Option<String>,
    },
    /// A modeled type never occurred in the tree.
    UnobservedType { ty: OperationTypeId },
    /// An operation's timestamps fall outside its parent's interval.
    OutsideParentInterval { op: OpId, label: String },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::UnmodeledOperation { label, .. } => {
                write!(f, "operation `{label}` matches no model type")
            }
            ValidationIssue::MissingInfo { label, info, .. } => {
                write!(f, "operation `{label}` is missing mandatory info `{info}`")
            }
            ValidationIssue::WrongParent {
                label,
                expected,
                actual,
                ..
            } => write!(
                f,
                "operation `{label}` should be filial to `{}` but is under `{}`",
                expected.label(),
                actual.as_deref().unwrap_or("<root>")
            ),
            ValidationIssue::UnobservedType { ty } => {
                write!(f, "modeled type `{}` was never observed", ty.label())
            }
            ValidationIssue::OutsideParentInterval { label, .. } => {
                write!(
                    f,
                    "operation `{label}` runs outside its parent's time interval"
                )
            }
        }
    }
}

/// Result of validating a tree against a model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All issues found, in tree order.
    pub issues: Vec<ValidationIssue>,
    /// Operations that matched a model type.
    pub matched_ops: usize,
    /// Total operations inspected.
    pub total_ops: usize,
}

impl ValidationReport {
    /// True when no issues were found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Model *coverage*: fraction of observed operations that the model
    /// describes. Low coverage tells the analyst where refinement (R3) is
    /// still missing.
    pub fn coverage(&self) -> f64 {
        if self.total_ops == 0 {
            return 1.0;
        }
        self.matched_ops as f64 / self.total_ops as f64
    }
}

/// Validates `tree` against `model`.
pub fn validate(model: &PerformanceModel, tree: &OperationTree) -> ValidationReport {
    let mut report = ValidationReport {
        total_ops: tree.len(),
        ..Default::default()
    };
    let mut observed = vec![false; model.types.len()];

    for id in tree.dfs() {
        let op = tree.op(id);
        let Some(ty) = model.match_op(op) else {
            report.issues.push(ValidationIssue::UnmodeledOperation {
                op: id,
                label: op.label(),
            });
            continue;
        };
        report.matched_ops += 1;
        if let Some(pos) = model.types.iter().position(|t| t.id == ty.id) {
            observed[pos] = true;
        }

        for req in &ty.infos {
            if req.mandatory && op.info(&req.name).is_none() {
                report.issues.push(ValidationIssue::MissingInfo {
                    op: id,
                    label: op.label(),
                    info: req.name.clone(),
                });
            }
        }

        if let Some(expected_parent) = &ty.parent {
            let actual = op.parent.map(|p| tree.op(p));
            let ok = actual.is_some_and(|p| {
                p.actor.kind == expected_parent.actor_kind
                    && p.mission.kind == expected_parent.mission_kind
            });
            if !ok {
                report.issues.push(ValidationIssue::WrongParent {
                    op: id,
                    label: op.label(),
                    expected: expected_parent.clone(),
                    actual: actual.map(|p| p.label()),
                });
            }
        }

        if let (Some(parent), Some(s), Some(e)) =
            (op.parent.map(|p| tree.op(p)), op.start_us(), op.end_us())
        {
            if let (Some(ps), Some(pe)) = (parent.start_us(), parent.end_us()) {
                if s < ps || e > pe {
                    report.issues.push(ValidationIssue::OutsideParentInterval {
                        op: id,
                        label: op.label(),
                    });
                }
            }
        }
    }

    for (pos, seen) in observed.iter().enumerate() {
        if !seen {
            report.issues.push(ValidationIssue::UnobservedType {
                ty: model.types[pos].id.clone(),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::{Info, InfoValue};
    use crate::level::AbstractionLevel;
    use crate::modeldef::OperationTypeDef;
    use crate::names;
    use crate::op::{Actor, Mission};

    fn model() -> PerformanceModel {
        PerformanceModel::new("m", "P")
            .with_type(OperationTypeDef::new(
                "Job",
                "Job",
                AbstractionLevel::Domain,
            ))
            .with_type(
                OperationTypeDef::new("Job", "LoadGraph", AbstractionLevel::Domain)
                    .child_of("Job", "Job"),
            )
    }

    fn timestamp(tree: &mut OperationTree, id: OpId, s: i64, e: i64) {
        tree.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(s)))
            .unwrap();
        tree.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(e)))
            .unwrap();
    }

    #[test]
    fn clean_tree_validates() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        timestamp(&mut t, job, 0, 100);
        timestamp(&mut t, load, 10, 90);
        let r = validate(&model(), &t);
        assert!(r.is_clean(), "issues: {:?}", r.issues);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn unmodeled_operation_reported() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        timestamp(&mut t, job, 0, 100);
        let w = t
            .add_child(job, Actor::new("Ghost", "1"), Mission::new("Mystery", "0"))
            .unwrap();
        timestamp(&mut t, w, 0, 10);
        let r = validate(&model(), &t);
        assert!(r
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::UnmodeledOperation { .. })));
        assert!(r.coverage() < 1.0);
    }

    #[test]
    fn missing_mandatory_info_reported() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        timestamp(&mut t, job, 0, 100);
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        // LoadGraph has no timestamps -> two missing-info issues.
        let r = validate(&model(), &t);
        let missing: Vec<_> = r
            .issues
            .iter()
            .filter(|i| matches!(i, ValidationIssue::MissingInfo { op, .. } if *op == load))
            .collect();
        assert_eq!(missing.len(), 2);
    }

    #[test]
    fn wrong_parent_reported() {
        let mut t = OperationTree::new();
        // LoadGraph as root: model says it must be under Job.
        let load = t
            .add_root(Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        timestamp(&mut t, load, 0, 10);
        let r = validate(&model(), &t);
        assert!(r
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::WrongParent { .. })));
    }

    #[test]
    fn unobserved_type_reported() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        timestamp(&mut t, job, 0, 100);
        let r = validate(&model(), &t);
        assert!(r.issues.iter().any(|i| matches!(
            i,
            ValidationIssue::UnobservedType { ty } if ty.mission_kind == "LoadGraph"
        )));
    }

    #[test]
    fn child_outside_parent_interval_reported() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        timestamp(&mut t, job, 0, 100);
        timestamp(&mut t, load, 50, 150);
        let r = validate(&model(), &t);
        assert!(r
            .issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::OutsideParentInterval { .. })));
    }

    #[test]
    fn empty_tree_has_full_coverage_but_unobserved_types() {
        let t = OperationTree::new();
        let r = validate(&model(), &t);
        assert_eq!(r.coverage(), 1.0);
        assert_eq!(r.issues.len(), 2); // both types unobserved
    }
}
