//! Abstraction levels of a performance model (paper §3.2).
//!
//! Every platform can be modeled with at least three levels: the **domain**
//! level (common to all graph-processing platforms), the **system** level
//! (the platform's own operation workflow), and one or more
//! **implementation** levels (optimization-relevant detail). Figure 4 of the
//! paper shows a four-level Giraph model: levels 3 and 4 are both
//! implementation levels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Abstraction level of an operation type within a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AbstractionLevel {
    /// Level 1: operations common to the whole application domain
    /// (graph processing: Startup, LoadGraph, ProcessGraph, OffloadGraph,
    /// Cleanup).
    Domain,
    /// Level 2: the platform-specific operation workflow.
    System,
    /// Level 3 and finer: implementation details. The payload is the depth,
    /// starting at 3.
    Implementation(u8),
}

impl AbstractionLevel {
    /// Numeric depth: Domain = 1, System = 2, Implementation(n) = n.
    pub fn depth(self) -> u8 {
        match self {
            AbstractionLevel::Domain => 1,
            AbstractionLevel::System => 2,
            AbstractionLevel::Implementation(n) => n,
        }
    }

    /// Builds a level from a numeric depth (clamping 0 to 1).
    pub fn from_depth(depth: u8) -> Self {
        match depth {
            0 | 1 => AbstractionLevel::Domain,
            2 => AbstractionLevel::System,
            n => AbstractionLevel::Implementation(n),
        }
    }

    /// The next level down (refinement target).
    pub fn finer(self) -> Self {
        AbstractionLevel::from_depth(self.depth() + 1)
    }
}

impl fmt::Display for AbstractionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractionLevel::Domain => write!(f, "domain (1)"),
            AbstractionLevel::System => write!(f, "system (2)"),
            AbstractionLevel::Implementation(n) => write!(f, "implementation ({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_roundtrip() {
        for d in 1..=6u8 {
            assert_eq!(AbstractionLevel::from_depth(d).depth(), d);
        }
    }

    #[test]
    fn finer_steps_down_one_level() {
        assert_eq!(AbstractionLevel::Domain.finer(), AbstractionLevel::System);
        assert_eq!(
            AbstractionLevel::System.finer(),
            AbstractionLevel::Implementation(3)
        );
        assert_eq!(
            AbstractionLevel::Implementation(3).finer(),
            AbstractionLevel::Implementation(4)
        );
    }

    #[test]
    fn ordering_follows_depth() {
        assert!(AbstractionLevel::Domain < AbstractionLevel::System);
        assert!(AbstractionLevel::System < AbstractionLevel::Implementation(3));
    }

    #[test]
    fn zero_depth_clamps_to_domain() {
        assert_eq!(AbstractionLevel::from_depth(0), AbstractionLevel::Domain);
    }
}
