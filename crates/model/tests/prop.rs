//! Property-based tests of the model crate's core invariants.

use proptest::prelude::*;

use granula_model::rules::apply_rule_checked;
use granula_model::{
    names, AbstractionLevel, Actor, ChildSelector, DerivationRule, Info, InfoValue, Mission, OpId,
    OperationTree,
};

/// Builds a random tree: `parents[i]` (for node i+1) is an index < i+1.
fn arb_tree() -> impl Strategy<Value = OperationTree> {
    prop::collection::vec(0usize..1000, 0..60).prop_map(|parent_picks| {
        let mut t = OperationTree::new();
        let root = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .expect("fresh tree");
        let mut ids = vec![root];
        for (i, pick) in parent_picks.into_iter().enumerate() {
            let parent = ids[pick % ids.len()];
            let id = t
                .add_child(
                    parent,
                    Actor::new("Worker", (i % 7).to_string()),
                    Mission::new("Op", i.to_string()),
                )
                .expect("parent exists");
            ids.push(id);
        }
        t
    })
}

proptest! {
    /// DFS visits every operation exactly once.
    #[test]
    fn dfs_is_a_permutation(tree in arb_tree()) {
        let order = tree.dfs();
        prop_assert_eq!(order.len(), tree.len());
        let mut seen = vec![false; tree.len()];
        for id in order {
            prop_assert!(!seen[id.0 as usize], "duplicate visit");
            seen[id.0 as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Bottom-up order puts every child before its parent.
    #[test]
    fn bottom_up_children_first(tree in arb_tree()) {
        let order = tree.bottom_up();
        let mut pos = vec![0usize; tree.len()];
        for (i, id) in order.iter().enumerate() {
            pos[id.0 as usize] = i;
        }
        for op in tree.iter() {
            if let Some(p) = op.parent {
                prop_assert!(pos[op.id.0 as usize] < pos[p.0 as usize]);
            }
        }
    }

    /// Depth is consistent: child depth = parent depth + 1; root depth 0.
    #[test]
    fn depth_is_parent_plus_one(tree in arb_tree()) {
        for op in tree.iter() {
            match op.parent {
                None => prop_assert_eq!(tree.depth(op.id), 0),
                Some(p) => prop_assert_eq!(tree.depth(op.id), tree.depth(p) + 1),
            }
        }
    }

    /// Subtree sizes: the root's subtree is the whole tree, and every
    /// subtree contains its own root.
    #[test]
    fn subtree_invariants(tree in arb_tree()) {
        let root = tree.root().expect("non-empty");
        prop_assert_eq!(tree.subtree(root).len(), tree.len());
        for op in tree.iter() {
            let s = tree.subtree(op.id);
            prop_assert_eq!(s[0], op.id);
            // All members are descendants: walking parents reaches op.id.
            for m in s {
                let mut cur = m;
                let mut hops = 0;
                while cur != op.id {
                    cur = tree.op(cur).parent.expect("descendant has a path to subtree root");
                    hops += 1;
                    prop_assert!(hops <= tree.len());
                }
            }
        }
    }

    /// Duration rule equals end - start for arbitrary consistent stamps.
    #[test]
    fn duration_rule_exact(start in 0i64..1_000_000_000, len in 0i64..1_000_000_000) {
        let mut t = OperationTree::new();
        let r = t.add_root(Actor::new("J", "0"), Mission::new("M", "0")).expect("fresh");
        t.set_info(r, Info::raw(names::START_TIME, InfoValue::Int(start))).expect("root");
        t.set_info(r, Info::raw(names::END_TIME, InfoValue::Int(start + len))).expect("root");
        apply_rule_checked(&mut t, r, &DerivationRule::Duration).expect("valid id");
        prop_assert_eq!(t.op(r).info_i64(names::DURATION), Some(len));
    }

    /// SumChildren equals the manual sum over any child values.
    #[test]
    fn sum_children_exact(values in prop::collection::vec(-1_000_000i64..1_000_000, 1..40)) {
        let mut t = OperationTree::new();
        let root = t.add_root(Actor::new("J", "0"), Mission::new("M", "0")).expect("fresh");
        for (i, v) in values.iter().enumerate() {
            let c = t
                .add_child(root, Actor::new("W", i.to_string()), Mission::new("C", "0"))
                .expect("root exists");
            t.set_info(c, Info::raw("X", InfoValue::Int(*v))).expect("child");
        }
        apply_rule_checked(
            &mut t,
            root,
            &DerivationRule::SumChildren {
                info: "X".into(),
                select: ChildSelector::All,
                output: "Total".into(),
            },
        )
        .expect("valid id");
        prop_assert_eq!(t.op(root).info_i64("Total"), Some(values.iter().sum()));
    }

    /// Max/Min over children bound every child value.
    #[test]
    fn max_min_bound_children(values in prop::collection::vec(-1_000i64..1_000, 1..30)) {
        let mut t = OperationTree::new();
        let root = t.add_root(Actor::new("J", "0"), Mission::new("M", "0")).expect("fresh");
        for (i, v) in values.iter().enumerate() {
            let c = t
                .add_child(root, Actor::new("W", i.to_string()), Mission::new("C", "0"))
                .expect("root exists");
            t.set_info(c, Info::raw("X", InfoValue::Int(*v))).expect("child");
        }
        for rule in [
            DerivationRule::MaxChildren {
                info: "X".into(),
                select: ChildSelector::All,
                output: "Max".into(),
            },
            DerivationRule::MinChildren {
                info: "X".into(),
                select: ChildSelector::All,
                output: "Min".into(),
            },
        ] {
            apply_rule_checked(&mut t, root, &rule).expect("valid id");
        }
        prop_assert_eq!(t.op(root).info_i64("Max"), values.iter().copied().max());
        prop_assert_eq!(t.op(root).info_i64("Min"), values.iter().copied().min());
    }

    /// Abstraction level depth roundtrips for all depths.
    #[test]
    fn level_depth_roundtrip(d in 1u8..=255) {
        prop_assert_eq!(AbstractionLevel::from_depth(d).depth(), d);
    }

    /// Span covers every timestamped operation.
    #[test]
    fn span_covers_everything(stamps in prop::collection::vec((0u64..1_000, 0u64..1_000), 1..30)) {
        let mut t = OperationTree::new();
        let root = t.add_root(Actor::new("J", "0"), Mission::new("M", "0")).expect("fresh");
        let mut any = false;
        for (i, (a, b)) in stamps.iter().enumerate() {
            let (s, e) = (*a.min(b), *a.max(b));
            let c = t
                .add_child(root, Actor::new("W", i.to_string()), Mission::new("C", "0"))
                .expect("root exists");
            t.set_info(c, Info::raw(names::START_TIME, InfoValue::Int(s as i64))).expect("child");
            t.set_info(c, Info::raw(names::END_TIME, InfoValue::Int(e as i64))).expect("child");
            any = true;
        }
        let (lo, hi) = t.span_us().expect("timestamped children exist");
        prop_assert!(any);
        for op in t.iter() {
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                prop_assert!(lo <= s && e <= hi);
            }
        }
    }
}

/// Non-proptest sanity: OpIds are dense indices.
#[test]
fn op_ids_are_dense() {
    let mut t = OperationTree::new();
    let root = t
        .add_root(Actor::new("J", "0"), Mission::new("M", "0"))
        .unwrap();
    let a = t
        .add_child(root, Actor::new("W", "1"), Mission::new("C", "0"))
        .unwrap();
    assert_eq!(root, OpId(0));
    assert_eq!(a, OpId(1));
}
