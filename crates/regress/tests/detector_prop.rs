//! Property-based tests of the shift detector — the statistical
//! replacement for hand-locked goldens has to earn its two guarantees:
//!
//! 1. **No false positives**: deterministic-simulation jitter strictly
//!    inside the tolerance band never flags, across a thousand generated
//!    histories (this is what lets CI gate on the verdict).
//! 2. **No missed onsets**: an injected step or ramp-and-plateau drift is
//!    detected, attributed to the exact run where the shift began.

use proptest::prelude::*;

use granula_regress::{detect, Status, Tolerance};

/// Applies multiplicative jitter to a constant base level.
fn jittered(base: f64, jitter: &[f64]) -> Vec<f64> {
    jitter.iter().map(|j| base * (1.0 + j)).collect()
}

/// Jitter strictly inside half the ±2% band: worst-case window means
/// differ by under 1%, so the band gate must hold regardless of
/// statistical significance.
fn arb_jitter(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-0.005f64..0.005, len)
}

fn arb_base() -> impl Strategy<Value = f64> {
    1.0e5f64..1.0e9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// Guarantee 1: a jitter-only series never flags.
    #[test]
    fn jitter_only_series_never_flags(
        base in arb_base(),
        jitter in arb_jitter(6..24),
    ) {
        let series = jittered(base, &jitter);
        let d = detect(&series, &Tolerance::default());
        prop_assert_eq!(
            d.status,
            Status::Ok,
            "false positive on jitter-only series: {:?} (series {:?})",
            d,
            series
        );
        prop_assert!(d.first_offending.is_none());
    }

    /// Guarantee 2a: a step shift past the band is always caught, and the
    /// first offending index is exactly where the step landed.
    #[test]
    fn step_shift_is_detected_at_its_onset(
        base in arb_base(),
        pre in prop::collection::vec(-0.003f64..0.003, 5..12),
        post in prop::collection::vec(-0.003f64..0.003, 4..8),
        step in 0.04f64..0.15,
    ) {
        let mut series = jittered(base, &pre);
        series.extend(jittered(base * (1.0 + step), &post));
        let d = detect(&series, &Tolerance::default());
        prop_assert_eq!(d.status, Status::Regressed, "missed +{}% step: {:?}", step * 100.0, d);
        prop_assert_eq!(
            d.first_offending,
            Some(pre.len()),
            "wrong onset for +{}% step over {} pre-runs: {:?}",
            step * 100.0,
            pre.len(),
            d
        );
        prop_assert!(d.effect > 0.02, "effect {} under the band", d.effect);
    }

    /// Guarantee 2b: a ramp that drifts upward and plateaus is attributed
    /// to the *first* ramp run, not to the statistically loudest split.
    #[test]
    fn drift_is_walked_back_to_its_first_run(
        base in arb_base(),
        flat_len in 6usize..=10,
        ramp_len in 2usize..=4,
        step in 0.05f64..0.10,
        plateau_len in 6usize..=10,
        jitter in prop::collection::vec(-0.003f64..0.003, 30),
    ) {
        let mut series = Vec::new();
        let mut level = base;
        for j in &jitter[..flat_len] {
            series.push(base * (1.0 + j));
        }
        for j in &jitter[flat_len..flat_len + ramp_len] {
            level *= 1.0 + step;
            series.push(level * (1.0 + j));
        }
        for j in &jitter[flat_len + ramp_len..flat_len + ramp_len + plateau_len] {
            series.push(level * (1.0 + j));
        }
        let d = detect(&series, &Tolerance::default());
        prop_assert_eq!(d.status, Status::Regressed, "missed drift: {:?}", d);
        prop_assert_eq!(
            d.first_offending,
            Some(flat_len),
            "drift onset is the first ramp run (flat {}, ramp {} x {}%): {:?}",
            flat_len,
            ramp_len,
            step * 100.0,
            d
        );
    }

    /// Downward shifts are reported as improvements, never regressions.
    #[test]
    fn speedups_are_improvements(
        base in arb_base(),
        pre in prop::collection::vec(-0.003f64..0.003, 5..10),
        post in prop::collection::vec(-0.003f64..0.003, 4..8),
        drop in 0.04f64..0.15,
    ) {
        let mut series = jittered(base, &pre);
        series.extend(jittered(base * (1.0 - drop), &post));
        let d = detect(&series, &Tolerance::default());
        prop_assert_eq!(d.status, Status::Improved, "{:?}", d);
        prop_assert!(d.effect < -0.02);
    }
}
