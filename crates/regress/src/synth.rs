//! Synthetic history construction: deterministic timing perturbation of
//! archives, used by the fixture generator, the proptest suite, and CI's
//! injected-slowdown smoke check.

use granula_archive::ArchiveStore;
use granula_model::{names, InfoValue, OperationTree};

/// Multiplies every timing info (`StartTime`, `EndTime`, `Duration`) in
/// the tree by `factor`, rounding to the nearest microsecond.
///
/// Scaling all three keeps the tree self-consistent:
/// [`duration_us`](granula_model::Operation::duration_us) prefers the
/// explicit `Duration` info over `EndTime - StartTime`, so scaling only
/// the endpoints would leave stale durations behind.
pub fn scale_timings(tree: &mut OperationTree, factor: f64) {
    for id in tree.dfs() {
        let op = tree.op_mut(id);
        for info in &mut op.infos {
            if info.name != names::START_TIME
                && info.name != names::END_TIME
                && info.name != names::DURATION
            {
                continue;
            }
            if let InfoValue::Int(v) = info.value {
                info.value = InfoValue::Int((v as f64 * factor).round() as i64);
            }
        }
    }
}

/// A deep copy of `store` with every archive's timings scaled by
/// `factor`. The run header is preserved; restamp it with
/// [`ArchiveStore::set_run`] when the copy joins a history as a new run.
pub fn scaled_store(store: &ArchiveStore, factor: f64) -> ArchiveStore {
    let mut out = ArchiveStore::new().with_run(store.run().clone());
    for archive in store.iter() {
        let mut archive = archive.clone();
        scale_timings(&mut archive.tree, factor);
        out.add(archive).expect("source store has unique job ids");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::{JobArchive, JobMeta};
    use granula_model::{Actor, Info, Mission};

    fn store(total_us: i64) -> ArchiveStore {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(total_us)))
            .unwrap();
        t.set_info(job, Info::raw(names::DURATION, InfoValue::Int(total_us)))
            .unwrap();
        let mut s = ArchiveStore::new();
        s.add(JobArchive::new(
            JobMeta {
                job_id: "j".into(),
                ..JobMeta::default()
            },
            t,
        ))
        .unwrap();
        s
    }

    #[test]
    fn scaling_moves_all_three_timing_infos() {
        let scaled = scaled_store(&store(1_000_000), 1.05);
        let a = scaled.get("j").unwrap();
        assert_eq!(a.total_runtime_us(), Some(1_050_000));
        let root = a.tree.root().unwrap();
        assert_eq!(
            a.tree.op(root).info_i64(names::END_TIME),
            Some(1_050_000),
            "endpoints scale together with the duration"
        );
    }

    #[test]
    fn unit_factor_is_identity() {
        let base = store(123_456);
        let scaled = scaled_store(&base, 1.0);
        assert_eq!(
            scaled.get("j").unwrap().tree,
            base.get("j").unwrap().tree,
            "factor 1.0 must not perturb rounded timings"
        );
    }
}
