//! The shared statistics layer: descriptive moments, Welch's t-test, a
//! one-sample prediction test, and a changepoint scan over sliding
//! windows.
//!
//! Extracted from the variance-ablation machinery in `granula-bench`
//! (which now reuses [`mean_std`]) and grown into the statistical core of
//! the regression service. Everything is pure, dependency-free `f64`
//! arithmetic; p-values come from the Student-t distribution evaluated
//! through the regularized incomplete beta function (Lentz's continued
//! fraction), so no lookup tables and no external crates.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Mean and *population* standard deviation (the spread estimator the
/// variance ablation reports: divisor `n`, not `n - 1`).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Mean and *unbiased* sample variance (divisor `n - 1`), the pair the
/// t-tests are built on. Variance is 0 for fewer than two samples.
pub fn sample_mean_var(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    if values.len() < 2 {
        return (mean(values), 0.0);
    }
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Outcome of a t-test: the statistic, its degrees of freedom, and the
/// two-sided p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic. Positive means the second sample (or the tested
    /// point) is *larger* than the first sample's mean.
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the two-sample test).
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
}

/// Welch's unequal-variances t-test between two samples. Returns `None`
/// when either sample has fewer than two points. Deterministic-simulation
/// degeneracies (both samples constant) are mapped to `p = 1` for equal
/// means and `p = 0` otherwise.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, va) = sample_mean_var(a);
    let (mb, vb) = sample_mean_var(b);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Some(degenerate(ma, mb, na + nb - 2.0));
    }
    let t = (mb - ma) / se2.sqrt();
    let tail = |v: f64, n: f64| {
        if v > 0.0 {
            (v / n).powi(2) / (n - 1.0)
        } else {
            0.0
        }
    };
    let denom = tail(va, na) + tail(vb, nb);
    let df = if denom > 0.0 {
        se2.powi(2) / denom
    } else {
        na + nb - 2.0
    };
    Some(TTest {
        t,
        df,
        p: t_sf_two_sided(t, df),
    })
}

/// One-sample *prediction* test: is the single observation `x` consistent
/// with being one more draw from the population behind `baseline`? Uses
/// the prediction-interval standard error `s * sqrt(1 + 1/n)` with
/// `n - 1` degrees of freedom. Returns `None` for fewer than two
/// baseline points.
pub fn prediction_t_test(baseline: &[f64], x: f64) -> Option<TTest> {
    if baseline.len() < 2 {
        return None;
    }
    let n = baseline.len() as f64;
    let (m, v) = sample_mean_var(baseline);
    let se2 = v * (1.0 + 1.0 / n);
    if se2 <= 0.0 {
        return Some(degenerate(m, x, n - 1.0));
    }
    let t = (x - m) / se2.sqrt();
    Some(TTest {
        t,
        df: n - 1.0,
        p: t_sf_two_sided(t, n - 1.0),
    })
}

/// Zero-variance fallback: equal values are a certain match, different
/// values a certain mismatch.
fn degenerate(base: f64, other: f64, df: f64) -> TTest {
    if other == base {
        TTest { t: 0.0, df, p: 1.0 }
    } else {
        TTest {
            t: if other > base {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            },
            df,
            p: 0.0,
        }
    }
}

// ------------------------------------------------------- t distribution

/// Two-sided survival probability of a Student-t statistic:
/// `P(|T| >= |t|)` for `df` degrees of freedom, via
/// `I_{df/(df+t²)}(df/2, 1/2)`.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    if df <= 0.0 || !df.is_finite() {
        return 1.0;
    }
    reg_inc_beta(df / 2.0, 0.5, df / (df + t * t)).clamp(0.0, 1.0)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the continued fraction inputs positive.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Continued-fraction kernel of the incomplete beta function (modified
/// Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Pick the representation whose continued fraction converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

// ------------------------------------------------------------ changepoint

/// A statistically significant level shift located inside a series.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangePoint {
    /// Index of the first offending sample: the earliest run whose value
    /// breaches the tolerance band around the preceding baseline, in the
    /// direction of the detected shift.
    pub index: usize,
    /// The t statistic at the detected split (sign = shift direction).
    pub t: f64,
    /// Two-sided p-value at the detected split.
    pub p: f64,
    /// Mean of the series before [`index`](Self::index).
    pub before_mean: f64,
    /// Mean of the post-shift window at the detected split.
    pub after_mean: f64,
}

/// Scans a series for a level shift: every split point compares the full
/// prefix against a sliding window of up to `window` following samples
/// with Welch's t-test (or the one-sample prediction test when only the
/// final sample remains). A split is *significant* when its p-value is
/// below `alpha` **and** the relative mean shift exceeds
/// `min_rel_shift` — the band gate is primary, so statistically resolvable
/// but operationally irrelevant micro-shifts are never flagged. Among
/// significant splits the largest `|t|` wins (earliest on ties), then the
/// index is walked back to the first sample breaching the band in the
/// shift's direction.
///
/// Returns `None` for series shorter than 4 samples or when no split is
/// significant.
pub fn changepoint_scan(
    series: &[f64],
    window: usize,
    alpha: f64,
    min_rel_shift: f64,
) -> Option<ChangePoint> {
    let n = series.len();
    if n < 4 {
        return None;
    }
    let window = window.max(2);
    let rel = |from: f64, to: f64| (to - from) / from.abs().max(f64::EPSILON);
    let mut best: Option<ChangePoint> = None;
    for i in 2..n {
        let pre = &series[..i];
        let post = &series[i..(i + window).min(n)];
        let test = if post.len() >= 2 {
            welch_t_test(pre, post)
        } else {
            prediction_t_test(pre, post[0])
        };
        let Some(test) = test else { continue };
        let (pre_mean, post_mean) = (mean(pre), mean(post));
        let shift = rel(pre_mean, post_mean);
        if test.p < alpha && shift.abs() > min_rel_shift {
            // Strict `>` keeps the earliest split on |t| ties (e.g. two
            // zero-variance infinities).
            if best.as_ref().is_none_or(|b| test.t.abs() > b.t.abs()) {
                best = Some(ChangePoint {
                    index: i,
                    t: test.t,
                    p: test.p,
                    before_mean: pre_mean,
                    after_mean: post_mean,
                });
            }
        }
    }
    let mut cp = best?;
    // Walk back to the onset: a drift's maximum-|t| split sits well after
    // the first band breach.
    let upward = cp.after_mean > cp.before_mean;
    while cp.index > 2 {
        let prev = cp.index - 1;
        let base = mean(&series[..prev]);
        let dev = rel(base, series[prev]);
        if dev.abs() > min_rel_shift && (dev > 0.0) == upward {
            cp.index = prev;
        } else {
            break;
        }
    }
    cp.before_mean = mean(&series[..cp.index]);
    Some(cp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_hand_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let (m, s) = mean_std(&xs);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12, "population std, got {s}");
        let (m2, v) = sample_mean_var(&xs);
        assert_eq!(m, m2);
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_0.5(a, a) = 0.5 by symmetry.
        for a in [0.5, 1.0, 2.0, 7.5] {
            assert!((reg_inc_beta(a, a, 0.5) - 0.5).abs() < 1e-10);
        }
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.1, 0.25, 0.9] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-10);
        }
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn t_distribution_reference_values() {
        // df=1 is a Cauchy: P(|T| >= 1) = 0.5.
        assert!((t_sf_two_sided(1.0, 1.0) - 0.5).abs() < 1e-9);
        // Classic table entries.
        assert!((t_sf_two_sided(2.228, 10.0) - 0.05).abs() < 5e-4);
        assert!((t_sf_two_sided(2.086, 20.0) - 0.05).abs() < 5e-4);
        assert!((t_sf_two_sided(0.0, 7.0) - 1.0).abs() < 1e-12);
        assert_eq!(t_sf_two_sided(f64::INFINITY, 5.0), 0.0);
    }

    #[test]
    fn welch_detects_separated_samples() {
        let a = [10.0, 10.1, 9.9, 10.05, 9.95];
        let b = [12.0, 12.1, 11.9, 12.05, 11.95];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.t > 10.0, "t = {}", r.t);
        assert!(r.p < 1e-6, "p = {}", r.p);
        // Same distribution: insignificant.
        let r = welch_t_test(&a, &[10.02, 9.97, 10.03, 9.98]).unwrap();
        assert!(r.p > 0.1, "p = {}", r.p);
        assert!(welch_t_test(&a, &[1.0]).is_none());
    }

    #[test]
    fn welch_handles_zero_variance() {
        let flat = [5.0, 5.0, 5.0, 5.0];
        let r = welch_t_test(&flat, &[5.0, 5.0]).unwrap();
        assert_eq!((r.t, r.p), (0.0, 1.0));
        let r = welch_t_test(&flat, &[6.0, 6.0]).unwrap();
        assert_eq!(r.p, 0.0);
        assert_eq!(r.t, f64::INFINITY);
    }

    #[test]
    fn prediction_test_widares_with_small_n() {
        let base = [100.0, 101.0, 99.0, 100.5, 99.5];
        let inside = prediction_t_test(&base, 100.2).unwrap();
        assert!(inside.p > 0.5);
        let outside = prediction_t_test(&base, 110.0).unwrap();
        assert!(outside.p < 0.01, "p = {}", outside.p);
        assert!(outside.t > 0.0);
    }

    #[test]
    fn changepoint_finds_step_exactly() {
        let mut series: Vec<f64> = Vec::new();
        let noise = [0.001, -0.002, 0.0015, -0.0005, 0.002, -0.001];
        for i in 0..8 {
            series.push(100.0 * (1.0 + noise[i % noise.len()]));
        }
        for i in 0..6 {
            series.push(110.0 * (1.0 + noise[(i + 3) % noise.len()]));
        }
        let cp = changepoint_scan(&series, 4, 1e-3, 0.02).expect("10% step is found");
        assert_eq!(cp.index, 8);
        assert!(cp.t > 0.0);
        assert!((cp.before_mean - 100.0).abs() < 0.5);
    }

    #[test]
    fn changepoint_walks_back_to_drift_onset() {
        // 6 flat, 3 ramp steps of +4%, then a plateau.
        let mut series = vec![100.0; 6];
        for j in 1..=3 {
            series.push(100.0 * (1.0 + 0.04 * j as f64));
        }
        series.extend([112.0; 5]);
        let cp = changepoint_scan(&series, 4, 1e-3, 0.02).expect("drift is found");
        assert_eq!(cp.index, 6, "first band breach is the first ramp step");
    }

    #[test]
    fn changepoint_ignores_jitter_and_short_series() {
        let series: Vec<f64> = (0..20)
            .map(|i| 100.0 * (1.0 + 0.004 * ((i * 7 % 5) as f64 - 2.0) / 2.0))
            .collect();
        assert_eq!(changepoint_scan(&series, 4, 1e-3, 0.02), None);
        assert_eq!(changepoint_scan(&[1.0, 2.0, 3.0], 4, 0.05, 0.0), None);
    }

    #[test]
    fn changepoint_detects_improvement_direction() {
        let mut series = vec![100.0, 100.1, 99.9, 100.05, 99.95, 100.0];
        series.extend([90.0, 90.1, 89.9, 90.05]);
        let cp = changepoint_scan(&series, 4, 1e-3, 0.02).unwrap();
        assert_eq!(cp.index, 6);
        assert!(cp.t < 0.0, "faster runs give a negative shift");
    }
}
