//! Archive history: a directory of `.gar` stores ordered into a time
//! series by their embedded [`RunMeta`] headers, with per-run query
//! engines and metric-series extraction.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use granula_archive::{ArchiveStore, Query, QueryEngine, QueryMode, RunMeta};
use serde::{Deserialize, Serialize};

/// Mission kinds reported as per-phase cost metrics, the choke-point
/// phases of the paper's fig. 5 breakdown plus the superstep loop.
pub const PHASE_KINDS: [&str; 6] = [
    "Startup",
    "LoadGraph",
    "ProcessGraph",
    "OffloadGraph",
    "Cleanup",
    "Superstep",
];

/// Metric name of the whole-job runtime series.
pub const MAKESPAN: &str = "makespan";

/// One archived run inside the history.
#[derive(Debug)]
pub struct RunEntry {
    /// The run header the store was stamped with (or a fallback derived
    /// from the filename for pre-header v1 stores).
    pub meta: RunMeta,
    /// Where the run came from: a file name, or a caller-given tag.
    pub source: String,
    /// The indexed engine serving this run's archives. Public so tests
    /// and tools can interleave queries with `upsert` against a live
    /// history.
    pub engine: QueryEngine,
}

/// One metric's value across the history, oldest run first.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    /// Job id the metric belongs to.
    pub job_id: String,
    /// Metric name: [`MAKESPAN`] or `phase/<Kind>`.
    pub metric: String,
    /// Metric values in run order, microseconds.
    pub values: Vec<f64>,
    /// For each value, the index into [`History::runs`] it came from
    /// (runs missing the job or the phase contribute nothing).
    pub run_indexes: Vec<usize>,
}

/// A history run that could not be ingested (unreadable or corrupt
/// `.gar` file). Skipped runs are carried through analysis into the
/// report (`skipped_runs` in `regress.json`) so a regression verdict
/// always discloses the evidence it was *not* able to weigh.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkippedRun {
    /// The file name of the run that was skipped.
    pub source: String,
    /// Why loading failed.
    pub reason: String,
}

/// An ordered sequence of archived runs.
#[derive(Debug, Default)]
pub struct History {
    runs: Vec<RunEntry>,
    skipped: Vec<SkippedRun>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads every `*.gar` file in `dir` (sorted by file name, then
    /// re-ordered by run header). Pre-header stores keep their filename
    /// position via the stable sort and get the file stem as run id.
    ///
    /// A run that fails to load — unreadable file, failed checksum,
    /// truncated or malformed payload — does **not** abort the ingest: a
    /// crashed run must not take regression detection down with it. The
    /// run is recorded in [`History::skipped`] instead, and the detector
    /// degrades to `insufficient` on its own when too few runs survive.
    /// Only the directory listing itself failing is an error.
    pub fn load_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let _span = granula_trace::span!("archiving", "history.load_dir");
        let mut paths: Vec<_> = std::fs::read_dir(dir.as_ref())?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "gar"))
            .collect();
        paths.sort();
        let mut history = History::new();
        for path in paths {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            match ArchiveStore::load(&path) {
                Ok(store) => history.push_store(store, name),
                Err(e) => history.skipped.push(SkippedRun {
                    source: name,
                    reason: e.to_string(),
                }),
            }
        }
        Ok(history)
    }

    /// Appends a run, then restores header order (stable, so ties keep
    /// insertion order). A store with an empty run id inherits its source
    /// stem as id.
    pub fn push_store(&mut self, store: ArchiveStore, source: impl Into<String>) {
        let source = source.into();
        let mut meta = store.run().clone();
        if meta.run_id.is_empty() {
            meta.run_id = source.trim_end_matches(".gar").to_string();
        }
        self.runs.push(RunEntry {
            meta,
            source,
            engine: QueryEngine::from_store(store),
        });
        self.runs.sort_by(|a, b| {
            let ka = a.meta.sort_key();
            let kb = b.meta.sort_key();
            (ka.0, ka.1.to_string()).cmp(&(kb.0, kb.1.to_string()))
        });
    }

    /// Appends the run *under test*: forced to the end of the order by
    /// bumping its timestamp past the newest history entry if needed, and
    /// named `current` when it carries no run id.
    pub fn push_latest(&mut self, store: ArchiveStore, source: impl Into<String>) {
        let mut meta = store.run().clone();
        if meta.run_id.is_empty() {
            meta.run_id = "current".to_string();
        }
        let newest = self.runs.iter().map(|r| r.meta.timestamp_us).max();
        if let Some(newest) = newest {
            if meta.timestamp_us <= newest {
                meta.timestamp_us = newest + 1;
            }
        }
        let store = store.with_run(meta);
        self.push_store(store, source);
    }

    /// The ordered runs.
    pub fn runs(&self) -> &[RunEntry] {
        &self.runs
    }

    /// Runs that were present on disk but could not be loaded.
    pub fn skipped(&self) -> &[SkippedRun] {
        &self.skipped
    }

    /// Mutable access to one run's entry (for query/upsert interleaving).
    pub fn run_mut(&mut self, index: usize) -> &mut RunEntry {
        &mut self.runs[index]
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no run was loaded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Extracts every metric series: per job, the makespan plus each
    /// non-zero phase cost. Phase costs are computed through the query
    /// engine ([`QueryMode::FindAll`] over the phase kind), so repeated
    /// extraction exercises the planner and the result cache rather than
    /// re-walking the trees.
    pub fn series(&mut self) -> Vec<MetricSeries> {
        let _span = granula_trace::span!("archiving", "history.series runs={}", self.runs.len());
        let queries: Vec<(String, Query)> = PHASE_KINDS
            .iter()
            .map(|k| {
                (
                    format!("phase/{k}"),
                    Query::parse(k).expect("phase kinds are valid queries"),
                )
            })
            .collect();
        let mut map: BTreeMap<(String, String), MetricSeries> = BTreeMap::new();
        for run_idx in 0..self.runs.len() {
            let job_ids: Vec<String> = self.runs[run_idx]
                .engine
                .store()
                .iter()
                .map(|a| a.meta.job_id.clone())
                .collect();
            for job_id in job_ids {
                let engine = &mut self.runs[run_idx].engine;
                let mut push = |metric: &str, value: f64| {
                    let entry = map
                        .entry((job_id.clone(), metric.to_string()))
                        .or_insert_with(|| MetricSeries {
                            job_id: job_id.clone(),
                            metric: metric.to_string(),
                            values: Vec::new(),
                            run_indexes: Vec::new(),
                        });
                    entry.values.push(value);
                    entry.run_indexes.push(run_idx);
                };
                if let Some(total) = engine
                    .store()
                    .get(&job_id)
                    .and_then(|a| a.total_runtime_us())
                {
                    push(MAKESPAN, total as f64);
                }
                for (metric, query) in &queries {
                    let Some(ids) = engine.query(&job_id, query, QueryMode::FindAll) else {
                        continue;
                    };
                    let archive = engine.store().get(&job_id).expect("job id just queried");
                    let total: u64 = ids
                        .iter()
                        .filter_map(|&id| archive.tree.op(id).duration_us())
                        .sum();
                    if total > 0 {
                        push(metric, total as f64);
                    }
                }
            }
        }
        map.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::scaled_store;
    use granula_archive::{JobArchive, JobMeta};
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn store(run: RunMeta, total_us: i64) -> ArchiveStore {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(total_us)))
            .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        t.set_info(load, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(
            load,
            Info::raw(names::END_TIME, InfoValue::Int(total_us / 4)),
        )
        .unwrap();
        let mut s = ArchiveStore::new().with_run(run);
        s.add(JobArchive::new(
            JobMeta {
                job_id: "giraph-bfs".into(),
                platform: "Giraph".into(),
                ..JobMeta::default()
            },
            t,
        ))
        .unwrap();
        s
    }

    #[test]
    fn runs_order_by_header_not_insertion() {
        let mut h = History::new();
        h.push_store(store(RunMeta::new("r2", 200, ""), 100), "b.gar");
        h.push_store(store(RunMeta::new("r1", 100, ""), 100), "a.gar");
        h.push_store(store(RunMeta::new("r3", 300, ""), 100), "c.gar");
        let ids: Vec<_> = h.runs().iter().map(|r| r.meta.run_id.as_str()).collect();
        assert_eq!(ids, ["r1", "r2", "r3"]);
    }

    #[test]
    fn push_latest_always_lands_last() {
        let mut h = History::new();
        h.push_store(store(RunMeta::new("r1", 500, ""), 100), "a.gar");
        // A header-less store would otherwise sort first (timestamp 0).
        h.push_latest(store(RunMeta::default(), 100), "fresh.gar");
        assert_eq!(h.runs().last().unwrap().meta.run_id, "current");
        assert_eq!(h.runs().last().unwrap().meta.timestamp_us, 501);
    }

    #[test]
    fn series_extracts_makespan_and_nonzero_phases() {
        let mut h = History::new();
        for (i, f) in [1.0, 1.001, 0.999].iter().enumerate() {
            let base = store(
                RunMeta::new(format!("r{i}"), 100 * (i as u64 + 1), ""),
                1_000_000,
            );
            h.push_store(scaled_store(&base, *f), format!("r{i}.gar"));
        }
        let series = h.series();
        let metrics: Vec<_> = series.iter().map(|s| s.metric.as_str()).collect();
        assert_eq!(metrics, ["makespan", "phase/LoadGraph"]);
        for s in &series {
            assert_eq!(s.values.len(), 3);
            assert_eq!(s.run_indexes, [0, 1, 2]);
            assert_eq!(s.job_id, "giraph-bfs");
        }
        assert_eq!(series[0].values[0], 1_000_000.0);
        assert_eq!(series[1].values[0], 250_000.0);
    }

    #[test]
    fn load_dir_skips_corrupt_runs_with_reasons() {
        let dir = std::env::temp_dir().join(format!("granula-hist-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        store(RunMeta::new("good", 1_000, ""), 100)
            .save(dir.join("good.gar"))
            .unwrap();
        // A torn write: valid store chopped mid-file.
        let mut torn =
            granula_archive::store_to_bytes(&store(RunMeta::new("torn", 2_000, ""), 100));
        torn.truncate(torn.len() / 2);
        std::fs::write(dir.join("torn.gar"), &torn).unwrap();
        // Not an archive at all.
        std::fs::write(dir.join("junk.gar"), b"not an archive").unwrap();
        let h = History::load_dir(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(h.len(), 1);
        assert_eq!(h.runs()[0].meta.run_id, "good");
        let mut skipped: Vec<_> = h.skipped().iter().map(|s| s.source.as_str()).collect();
        skipped.sort();
        assert_eq!(skipped, ["junk.gar", "torn.gar"]);
        for s in h.skipped() {
            assert!(!s.reason.is_empty(), "{}: reason must say why", s.source);
        }
    }

    #[test]
    fn load_dir_round_trips_headers() {
        let dir = std::env::temp_dir().join(format!("granula-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // File names in *reverse* chronological order: headers must win.
        store(RunMeta::new("new", 2_000, ""), 100)
            .save(dir.join("a-newest.gar"))
            .unwrap();
        store(RunMeta::new("old", 1_000, ""), 100)
            .save(dir.join("z-oldest.gar"))
            .unwrap();
        let h = History::load_dir(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let ids: Vec<_> = h.runs().iter().map(|r| r.meta.run_id.as_str()).collect();
        assert_eq!(ids, ["old", "new"]);
        assert_eq!(h.runs()[0].source, "z-oldest.gar");
    }
}
