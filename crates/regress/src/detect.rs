//! Verdict layer: maps a metric's time series to an
//! ok/improved/regressed status through the [`stats`](crate::stats)
//! machinery, under a configurable tolerance.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::stats::{changepoint_scan, mean_std, prediction_t_test, ChangePoint};

/// Detection thresholds.
///
/// Both gates must trip before a metric is flagged: the shift must be
/// statistically resolvable (`alpha`) *and* operationally meaningful
/// (`rel`). The deterministic simulator makes tiny shifts trivially
/// significant, so the relative band is the knob that matters in
/// practice — it replaces the old hand-locked golden makespans with a
/// tolerance the history can drift inside.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerance {
    /// Relative mean-shift band; shifts within `±rel` never flag.
    pub rel: f64,
    /// Two-sided significance level for the t-tests.
    pub alpha: f64,
    /// Post-split comparison window (runs) for the changepoint scan.
    pub window: usize,
    /// Minimum series length before any verdict other than
    /// [`Status::Insufficient`].
    pub min_runs: usize,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel: 0.02,
            alpha: 1e-3,
            window: 4,
            min_runs: 4,
        }
    }
}

/// Per-metric verdict. Metrics are durations, so a positive shift is a
/// slowdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// No significant shift anywhere in the series.
    Ok,
    /// A significant *downward* shift (the platform got faster).
    Improved,
    /// A significant *upward* shift (the platform got slower).
    Regressed,
    /// Too few runs to test.
    Insufficient,
}

impl Status {
    /// Stable lowercase wire name, the one `regress.json` carries.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "regressed",
            Status::Insufficient => "insufficient",
        }
    }
}

// Manual serde: the wire format is the lowercase name, not a struct.
impl Serialize for Status {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Status {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s == "ok" => Ok(Status::Ok),
            Value::Str(s) if s == "improved" => Ok(Status::Improved),
            Value::Str(s) if s == "regressed" => Ok(Status::Regressed),
            Value::Str(s) if s == "insufficient" => Ok(Status::Insufficient),
            _ => Err(DeError::expected("status string")),
        }
    }
}

/// Everything the detector concluded about one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The verdict.
    pub status: Status,
    /// Index (into the series) of the first offending run, when a shift
    /// was found.
    pub first_offending: Option<usize>,
    /// Relative mean shift: post-shift vs pre-shift mean for a detected
    /// change, latest-vs-baseline otherwise.
    pub effect: f64,
    /// p-value of the decisive test (1.0 when insufficient).
    pub p_value: f64,
    /// Mean of the baseline segment (everything before the shift, or the
    /// whole series minus the latest run).
    pub baseline_mean: f64,
    /// Population standard deviation of the baseline segment.
    pub baseline_std: f64,
    /// Number of baseline samples.
    pub n_baseline: usize,
    /// The raw changepoint, when one was found.
    pub change: Option<ChangePoint>,
}

/// Runs the full detection pipeline over one metric series (ordered
/// oldest → newest, the last sample being the run under test).
pub fn detect(series: &[f64], tol: &Tolerance) -> Detection {
    let n = series.len();
    if n < tol.min_runs.max(2) {
        let (m, s) = mean_std(series);
        return Detection {
            status: Status::Insufficient,
            first_offending: None,
            effect: 0.0,
            p_value: 1.0,
            baseline_mean: m,
            baseline_std: s,
            n_baseline: n,
            change: None,
        };
    }
    if let Some(cp) = changepoint_scan(series, tol.window, tol.alpha, tol.rel) {
        let (m, s) = mean_std(&series[..cp.index]);
        let effect = (cp.after_mean - cp.before_mean) / cp.before_mean.abs().max(f64::EPSILON);
        return Detection {
            status: if effect > 0.0 {
                Status::Regressed
            } else {
                Status::Improved
            },
            first_offending: Some(cp.index),
            effect,
            p_value: cp.p,
            baseline_mean: m,
            baseline_std: s,
            n_baseline: cp.index,
            change: Some(cp),
        };
    }
    // No shift: report how the latest run sits against its history.
    let baseline = &series[..n - 1];
    let latest = series[n - 1];
    let (m, s) = mean_std(baseline);
    let p = prediction_t_test(baseline, latest).map_or(1.0, |t| t.p);
    Detection {
        status: Status::Ok,
        first_offending: None,
        effect: (latest - m) / m.abs().max(f64::EPSILON),
        p_value: p,
        baseline_mean: m,
        baseline_std: s,
        n_baseline: baseline.len(),
        change: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittered(base: f64, n: usize) -> Vec<f64> {
        let noise = [0.0008, -0.0015, 0.0011, -0.0004, 0.0013, -0.0009];
        (0..n)
            .map(|i| base * (1.0 + noise[i % noise.len()]))
            .collect()
    }

    #[test]
    fn stable_series_is_ok() {
        let d = detect(&jittered(80e6, 8), &Tolerance::default());
        assert_eq!(d.status, Status::Ok);
        assert_eq!(d.first_offending, None);
        assert!(d.effect.abs() < 0.01);
        assert_eq!(d.n_baseline, 7);
    }

    #[test]
    fn slowdown_is_regressed_at_the_right_run() {
        let mut series = jittered(80e6, 6);
        series.extend(jittered(84e6, 4)); // +5% from run 6 on
        let d = detect(&series, &Tolerance::default());
        assert_eq!(d.status, Status::Regressed);
        assert_eq!(d.first_offending, Some(6));
        assert!((d.effect - 0.05).abs() < 0.01, "effect = {}", d.effect);
        assert!(d.p_value < 1e-3);
    }

    #[test]
    fn speedup_is_improved() {
        let mut series = jittered(100.0, 6);
        series.extend(jittered(90.0, 4));
        let d = detect(&series, &Tolerance::default());
        assert_eq!(d.status, Status::Improved);
        assert!(d.effect < -0.05);
    }

    #[test]
    fn short_series_is_insufficient() {
        let d = detect(&[1.0, 2.0], &Tolerance::default());
        assert_eq!(d.status, Status::Insufficient);
        assert_eq!(d.p_value, 1.0);
    }

    #[test]
    fn shift_inside_the_band_stays_ok() {
        // A real but sub-band (+1%) shift must not flag under rel = 2%.
        let mut series = jittered(100.0, 6);
        series.extend(jittered(101.0, 4));
        assert_eq!(detect(&series, &Tolerance::default()).status, Status::Ok);
    }

    #[test]
    fn status_round_trips_through_serde() {
        for s in [
            Status::Ok,
            Status::Improved,
            Status::Regressed,
            Status::Insufficient,
        ] {
            let v = s.to_value();
            assert_eq!(v, Value::Str(s.as_str().to_string()));
            assert_eq!(Status::from_value(&v).unwrap(), s);
        }
        assert!(Status::from_value(&Value::Str("bogus".into())).is_err());
    }
}
