//! The machine-readable verdict (`regress.json`) and its text rendering.

use serde::{Deserialize, Serialize};

use crate::detect::{detect, Detection, Status, Tolerance};
use crate::history::{History, MetricSeries, SkippedRun};

/// Version stamped into `regress.json`; consumers (CI) check it before
/// trusting the field layout.
///
/// v2 added `skipped_runs`: history files that were present on disk but
/// could not be loaded (corrupt or unreadable `.gar`). They no longer
/// abort the analysis — the verdict is computed over the surviving runs,
/// degrading to `insufficient` when too few remain.
pub const SCHEMA_VERSION: u32 = 2;

/// One run of the analyzed history, in series order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunInfo {
    /// Run id from the store header.
    pub run_id: String,
    /// Header timestamp, microseconds since the epoch.
    pub timestamp_us: u64,
    /// Header label (branch, commit, machine).
    pub label: String,
    /// File or tag the run was ingested from.
    pub source: String,
}

/// Verdict for one `(job, metric)` series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricReport {
    /// Job id the metric belongs to.
    pub job_id: String,
    /// Metric name (`makespan` or `phase/<Kind>`).
    pub metric: String,
    /// Unit of the `*_us` fields; always `"us"` today.
    pub unit: String,
    /// The verdict.
    pub status: Status,
    /// Baseline (pre-shift) mean, microseconds.
    pub baseline_mean_us: f64,
    /// Baseline population standard deviation, microseconds.
    pub baseline_std_us: f64,
    /// The newest run's value, microseconds.
    pub current_us: f64,
    /// Relative mean shift (positive = slower).
    pub effect: f64,
    /// p-value of the decisive test.
    pub p_value: f64,
    /// Run id of the first run breaching the tolerance band, when a
    /// shift was detected.
    pub first_offending_run: Option<String>,
    /// Number of runs in the baseline segment.
    pub n_baseline: usize,
}

/// The full regression report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressReport {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Thresholds the verdicts were computed under.
    pub tolerance: Tolerance,
    /// The analyzed runs, oldest first.
    pub runs: Vec<RunInfo>,
    /// History files that could not be loaded and were excluded from the
    /// analysis, with the reason each failed.
    pub skipped_runs: Vec<SkippedRun>,
    /// Per-metric verdicts, sorted by `(job_id, metric)`.
    pub metrics: Vec<MetricReport>,
    /// Aggregate verdict: `regressed` if any metric regressed, else
    /// `improved` if any improved, else `ok`; `insufficient` only when
    /// every metric lacked history.
    pub verdict: Status,
}

impl RegressReport {
    /// Metrics with the given status.
    pub fn with_status(&self, status: Status) -> impl Iterator<Item = &MetricReport> {
        self.metrics.iter().filter(move |m| m.status == status)
    }
}

/// A metric series paired with its detection — the unit the trend charts
/// render.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedSeries {
    /// The extracted series.
    pub series: MetricSeries,
    /// What the detector concluded about it.
    pub detection: Detection,
}

/// Runs detection over every metric series of `history` and assembles
/// the report plus the per-series detail (for rendering).
pub fn analyze(history: &mut History, tol: &Tolerance) -> (RegressReport, Vec<AnalyzedSeries>) {
    let run_id_of = |history: &History, idx: usize| history.runs()[idx].meta.run_id.clone();
    let all_series = history.series();
    let mut metrics = Vec::with_capacity(all_series.len());
    let mut analyzed = Vec::with_capacity(all_series.len());
    for series in all_series {
        let detection = detect(&series.values, tol);
        metrics.push(MetricReport {
            job_id: series.job_id.clone(),
            metric: series.metric.clone(),
            unit: "us".to_string(),
            status: detection.status,
            baseline_mean_us: detection.baseline_mean,
            baseline_std_us: detection.baseline_std,
            current_us: series.values.last().copied().unwrap_or(0.0),
            effect: detection.effect,
            p_value: detection.p_value,
            first_offending_run: detection
                .first_offending
                .map(|i| run_id_of(history, series.run_indexes[i])),
            n_baseline: detection.n_baseline,
        });
        analyzed.push(AnalyzedSeries { series, detection });
    }
    let verdict = if metrics.iter().any(|m| m.status == Status::Regressed) {
        Status::Regressed
    } else if metrics.iter().any(|m| m.status == Status::Improved) {
        Status::Improved
    } else if metrics.iter().any(|m| m.status == Status::Ok) {
        Status::Ok
    } else {
        Status::Insufficient
    };
    let runs = history
        .runs()
        .iter()
        .map(|r| RunInfo {
            run_id: r.meta.run_id.clone(),
            timestamp_us: r.meta.timestamp_us,
            label: r.meta.label.clone(),
            source: r.source.clone(),
        })
        .collect();
    (
        RegressReport {
            schema_version: SCHEMA_VERSION,
            tolerance: *tol,
            runs,
            skipped_runs: history.skipped().to_vec(),
            metrics,
            verdict,
        },
        analyzed,
    )
}

/// Plain-text rendering of the report, one line per metric.
pub fn render_text(report: &RegressReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "regression report over {} runs (band ±{:.1}%, alpha {:.0e})\n",
        report.runs.len(),
        report.tolerance.rel * 100.0,
        report.tolerance.alpha
    ));
    for s in &report.skipped_runs {
        out.push_str(&format!(
            "  WARNING: skipped unreadable run {}: {}\n",
            s.source, s.reason
        ));
    }
    let width = report
        .metrics
        .iter()
        .map(|m| m.job_id.len() + m.metric.len() + 1)
        .max()
        .unwrap_or(0);
    for m in &report.metrics {
        let name = format!("{} {}", m.job_id, m.metric);
        let mut line = format!(
            "  {name:<width$}  {:>12}  {:+7.2}%  {:<12}",
            format_us(m.current_us),
            m.effect * 100.0,
            m.status.as_str(),
        );
        if let Some(run) = &m.first_offending_run {
            line.push_str(&format!("  since {run} (p={:.2e})", m.p_value));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push_str(&format!("verdict: {}\n", report.verdict.as_str()));
    out
}

fn format_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.3} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1} ms", us / 1e3)
    } else {
        format!("{us:.0} us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::synth::scaled_store;
    use granula_archive::{ArchiveStore, JobArchive, JobMeta, RunMeta};
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn base_store(total_us: i64) -> ArchiveStore {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(total_us)))
            .unwrap();
        let mut s = ArchiveStore::new();
        s.add(JobArchive::new(
            JobMeta {
                job_id: "g".into(),
                ..JobMeta::default()
            },
            t,
        ))
        .unwrap();
        s
    }

    fn history(factors: &[f64]) -> History {
        let mut h = History::new();
        for (i, f) in factors.iter().enumerate() {
            let run = RunMeta::new(format!("r{i}"), 1_000 + i as u64, "");
            h.push_store(
                scaled_store(&base_store(1_000_000), *f).with_run(run),
                format!("r{i}.gar"),
            );
        }
        h
    }

    #[test]
    fn stable_history_verdict_is_ok() {
        let mut h = history(&[1.0, 1.001, 0.999, 1.0005, 0.9995, 1.0]);
        let (report, analyzed) = analyze(&mut h, &Tolerance::default());
        assert_eq!(report.verdict, Status::Ok);
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.runs.len(), 6);
        assert_eq!(report.metrics.len(), 1);
        assert_eq!(analyzed.len(), 1);
        assert!(report.metrics[0].first_offending_run.is_none());
    }

    #[test]
    fn shifted_history_names_the_offending_run() {
        let mut h = history(&[1.0, 1.001, 0.999, 1.0005, 1.05, 1.051, 1.049, 1.0505]);
        let (report, _) = analyze(&mut h, &Tolerance::default());
        assert_eq!(report.verdict, Status::Regressed);
        let m = &report.metrics[0];
        assert_eq!(m.status, Status::Regressed);
        assert_eq!(m.first_offending_run.as_deref(), Some("r4"));
        assert!((m.effect - 0.05).abs() < 0.01);
        assert!((m.baseline_mean_us - 1_000_000.0).abs() < 2_000.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut h = history(&[1.0, 1.001, 0.999, 1.0005]);
        let (report, _) = analyze(&mut h, &Tolerance::default());
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RegressReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        for key in [
            "schema_version",
            "verdict",
            "metrics",
            "runs",
            "skipped_runs",
            "first_offending_run",
            "p_value",
        ] {
            assert!(json.contains(key), "regress.json must carry `{key}`");
        }
    }

    #[test]
    fn skipped_runs_flow_into_the_report() {
        let dir = std::env::temp_dir().join(format!("granula-report-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (i, f) in [1.0, 1.001, 0.999, 1.0005, 1.0, 0.9995].iter().enumerate() {
            let run = RunMeta::new(format!("r{i}"), 1_000 + i as u64, "");
            scaled_store(&base_store(1_000_000), *f)
                .with_run(run)
                .save(dir.join(format!("r{i}.gar")))
                .unwrap();
        }
        std::fs::write(dir.join("crashed.gar"), b"GRNA torn to bits").unwrap();
        let mut h = History::load_dir(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let (report, _) = analyze(&mut h, &Tolerance::default());
        assert_eq!(report.verdict, Status::Ok, "6 good runs still analyze");
        assert_eq!(report.skipped_runs.len(), 1);
        assert_eq!(report.skipped_runs[0].source, "crashed.gar");
        let text = render_text(&report);
        assert!(text.contains("WARNING: skipped unreadable run crashed.gar"));
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("crashed.gar"));
    }

    #[test]
    fn too_few_surviving_runs_degrade_to_insufficient() {
        let dir = std::env::temp_dir().join(format!("granula-report-few-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Two good runs (below Tolerance::default().min_runs), two corrupt.
        for i in 0..2 {
            let run = RunMeta::new(format!("r{i}"), 1_000 + i as u64, "");
            base_store(1_000_000)
                .with_run(run)
                .save(dir.join(format!("r{i}.gar")))
                .unwrap();
        }
        std::fs::write(dir.join("bad1.gar"), b"zzzz").unwrap();
        std::fs::write(dir.join("bad2.gar"), b"").unwrap();
        let mut h = History::load_dir(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let (report, _) = analyze(&mut h, &Tolerance::default());
        assert_eq!(report.verdict, Status::Insufficient);
        assert_eq!(report.skipped_runs.len(), 2);
    }

    #[test]
    fn text_rendering_mentions_status_and_verdict() {
        let mut h = history(&[1.0, 1.001, 0.999, 1.0005, 1.05, 1.051, 1.049, 1.05]);
        let (report, _) = analyze(&mut h, &Tolerance::default());
        let text = render_text(&report);
        assert!(text.contains("verdict: regressed"));
        assert!(text.contains("since r4"));
        assert!(text.contains("g makespan"));
    }

    #[test]
    fn empty_history_is_insufficient() {
        let mut h = History::new();
        let (report, _) = analyze(&mut h, &Tolerance::default());
        assert_eq!(report.verdict, Status::Insufficient);
        assert!(report.metrics.is_empty());
    }
}
