//! # granula-regress
//!
//! The continuous performance-regression service (paper §6, future
//! work): archives are collected per run into `.gar` stores, ordered
//! into a history by their embedded [`RunMeta`](granula_archive::RunMeta)
//! headers, and interrogated as *time series* — per-job makespan and
//! per-choke-point phase costs — rather than as isolated snapshots.
//!
//! The test layer replaces hand-locked golden values with statistics:
//! a metric regresses only when a level shift is both statistically
//! significant (Welch's t-test over sliding windows, [`stats`]) *and*
//! larger than a relative tolerance band ([`detect::Tolerance`]).
//! Deterministic-simulation jitter below the band never flags, which the
//! proptest suite (`tests/detector_prop.rs`) locks in across a thousand
//! generated histories.
//!
//! The pipeline:
//!
//! 1. [`history::History::load_dir`] ingests a directory of `.gar`
//!    stores, sorted by run header;
//! 2. [`history::History::series`] extracts metric series through the
//!    indexed [`QueryEngine`](granula_archive::QueryEngine);
//! 3. [`detect::detect`] runs the changepoint scan per series;
//! 4. [`report::analyze`] assembles the machine-readable
//!    [`report::RegressReport`] (`regress.json`) consumed by CI, plus
//!    per-series detail for the trend charts in `granula-viz`.
//!
//! ```
//! use granula_regress::{analyze, History, Status, Tolerance};
//!
//! let mut history = History::new(); // normally History::load_dir(...)
//! let (report, _) = analyze(&mut history, &Tolerance::default());
//! assert_eq!(report.verdict, Status::Insufficient); // no runs yet
//! ```

pub mod detect;
pub mod history;
pub mod report;
pub mod stats;
pub mod synth;

pub use detect::{detect, Detection, Status, Tolerance};
pub use history::{History, MetricSeries, RunEntry, SkippedRun, MAKESPAN, PHASE_KINDS};
pub use report::{
    analyze, render_text, AnalyzedSeries, MetricReport, RegressReport, RunInfo, SCHEMA_VERSION,
};
pub use stats::{
    changepoint_scan, mean, mean_std, prediction_t_test, sample_mean_var, t_sf_two_sided,
    welch_t_test, ChangePoint, TTest,
};
pub use synth::{scale_timings, scaled_store};
