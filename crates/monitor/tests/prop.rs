//! Property-based tests: the log grammar and the assembler's robustness.
//!
//! Real log scraping faces truncated files, interleaving and loss; the
//! assembler must *never* panic and must keep its structural invariants no
//! matter what subset of events arrives in what order.

use proptest::prelude::*;

use granula_model::{names, Actor, InfoValue, Mission};
use granula_monitor::{parse_line, Assembler, LogEvent, SkewCorrector};

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9]{0,11}".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = InfoValue> {
    prop_oneof![
        any::<i64>().prop_map(InfoValue::Int),
        (-1.0e12f64..1.0e12).prop_map(InfoValue::Float),
        // Free-form text, excluding strings the grammar would (correctly)
        // re-parse as numbers — that ambiguity is inherent to text logs.
        "[A-Za-z0-9 _.:-]{1,24}"
            .prop_filter("numeric-looking text is parsed as a number", |s| {
                s.parse::<f64>().is_err()
            })
            .prop_map(InfoValue::Text),
    ]
}

fn arb_event() -> impl Strategy<Value = LogEvent> {
    (
        any::<u32>(),
        ident(),
        ident(),
        ident(),
        "[0-9]{1,3}",
        ident(),
        "[0-9]{1,3}",
        prop_oneof![Just(0u8), Just(1), Just(2)],
        ident(),
        arb_value(),
    )
        .prop_map(|(t, node, process, ak, ai, mk, mi, kind, iname, ivalue)| {
            let actor = Actor::new(ak, ai);
            let mission = Mission::new(mk, mi);
            match kind {
                0 => LogEvent::start(t as u64, node, process, actor, mission, None),
                1 => LogEvent::end(t as u64, node, process, actor, mission),
                _ => LogEvent::info(t as u64, node, process, actor, mission, iname, ivalue),
            }
        })
}

/// A well-formed stream: one root + `n` children, each opened and closed.
fn well_formed(n: usize) -> Vec<LogEvent> {
    let job = (Actor::new("Job", "0"), Mission::new("Job", "0"));
    let mut events = vec![LogEvent::start(
        0,
        "n0",
        "p",
        job.0.clone(),
        job.1.clone(),
        None,
    )];
    for i in 0..n {
        let op = (
            Actor::new("W", i.to_string()),
            Mission::new("C", i.to_string()),
        );
        events.push(LogEvent::start(
            (i as u64 + 1) * 10,
            "n0",
            "p",
            op.0.clone(),
            op.1.clone(),
            Some(job.clone()),
        ));
        events.push(LogEvent::end(
            (i as u64 + 1) * 10 + 5,
            "n0",
            "p",
            op.0,
            op.1,
        ));
    }
    events.push(LogEvent::end(1_000_000, "n0", "p", job.0, job.1));
    events
}

proptest! {
    /// Every event survives the line-format roundtrip.
    #[test]
    fn line_roundtrip(event in arb_event()) {
        let line = event.to_line();
        let parsed = parse_line(&line);
        prop_assert_eq!(parsed, Some(event));
    }

    /// The assembler never panics on arbitrary event soup, and structural
    /// invariants hold: operation count never exceeds START count, and no
    /// closed operation ends before it starts.
    #[test]
    fn assembler_total_on_arbitrary_events(events in prop::collection::vec(arb_event(), 0..80)) {
        let starts = events
            .iter()
            .filter(|e| matches!(e.payload, granula_monitor::EventPayload::OpStart { .. }))
            .count();
        let outcome = Assembler::new().assemble(events);
        prop_assert_eq!(outcome.tree.len(), starts.min(outcome.tree.len()));
        prop_assert!(outcome.tree.len() <= starts);
        for op in outcome.tree.iter() {
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                prop_assert!(e >= s, "closed op ends before start");
            }
        }
    }

    /// Dropping an arbitrary subset of a well-formed stream still assembles,
    /// and the number of warnings accounts for the damage.
    #[test]
    fn assembler_tolerates_loss(keep in prop::collection::vec(any::<bool>(), 42)) {
        let events = well_formed(20); // 42 events total
        let kept: Vec<LogEvent> = events
            .into_iter()
            .zip(keep.iter().copied().chain(std::iter::repeat(true)))
            .filter_map(|(e, k)| k.then_some(e))
            .collect();
        let outcome = Assembler::new().assemble(kept.clone());
        let starts = kept
            .iter()
            .filter(|e| matches!(e.payload, granula_monitor::EventPayload::OpStart { .. }))
            .count();
        prop_assert_eq!(outcome.tree.len(), starts);
    }

    /// Shuffling a well-formed stream (same timestamps) yields the same
    /// operation count and durations as the ordered stream.
    #[test]
    fn assembler_order_insensitive(seed in any::<u64>()) {
        let ordered = well_formed(15);
        let mut shuffled = ordered.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = Assembler::new().assemble(ordered);
        let b = Assembler::new().assemble(shuffled);
        prop_assert_eq!(a.tree.len(), b.tree.len());
        let dur = |t: &granula_model::OperationTree| -> Vec<Option<u64>> {
            let mut d: Vec<Option<u64>> = t.iter().map(|o| o.duration_us()).collect();
            d.sort();
            d
        };
        prop_assert_eq!(dur(&a.tree), dur(&b.tree));
    }

    /// Skew correction by `o` then `-o` is the identity when no saturation
    /// occurs.
    #[test]
    fn skew_correction_inverts(t in 1_000_000u64..1_000_000_000, o in -900_000i64..900_000) {
        let mut fwd = SkewCorrector::new();
        fwd.set_offset("n", o);
        let mut bwd = SkewCorrector::new();
        bwd.set_offset("n", -o);
        let mut e = LogEvent::start(t, "n", "p", Actor::new("A", "0"), Mission::new("M", "0"), None);
        fwd.correct(&mut e);
        bwd.correct(&mut e);
        prop_assert_eq!(e.time_us, t);
    }

    /// Anchor-estimated offsets always align the anchor events exactly to
    /// the earliest observation.
    #[test]
    fn anchors_align(base in 1_000u64..1_000_000, skews in prop::collection::vec(0u64..10_000, 2..6)) {
        let group: Vec<(String, u64)> = skews
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("n{i}"), base + s))
            .collect();
        let c = SkewCorrector::from_anchors([group.as_slice()]);
        let reference = base + skews.iter().min().expect("non-empty");
        for (node, t) in &group {
            let mut e = LogEvent::start(*t, node.clone(), "p", Actor::new("A", "0"), Mission::new("M", "0"), None);
            c.correct(&mut e);
            prop_assert_eq!(e.time_us, reference);
        }
    }
}

/// A failure `line_roundtrip` once caught, promoted to a named case: an
/// info whose text value is a single space. The line format delimits
/// fields with whitespace, so a value that *is* whitespace survives only
/// because the value field is last and parsed greedily — exactly the kind
/// of boundary a format change would silently break.
#[test]
fn line_roundtrip_preserves_whitespace_only_text_value() {
    let event = LogEvent::info(
        0,
        "A",
        "a",
        Actor::new("A", "0"),
        Mission::new("A", "0"),
        "A",
        InfoValue::Text(" ".into()),
    );
    let line = event.to_line();
    assert_eq!(parse_line(&line), Some(event));
}

/// Deterministic check: a well-formed stream assembles without warnings and
/// with exact timestamps.
#[test]
fn well_formed_assembles_cleanly() {
    let outcome = Assembler::new().assemble(well_formed(10));
    assert!(outcome.warnings.is_empty());
    assert_eq!(outcome.tree.len(), 11);
    let root = outcome.tree.root().unwrap();
    assert_eq!(
        outcome.tree.op(root).info_i64(names::END_TIME),
        Some(1_000_000)
    );
}
