//! Assembly: rebuilding one coherent operation tree from distributed logs.
//!
//! This is the heart of the archiving stage: events from many nodes arrive
//! interleaved, sometimes out of order, sometimes with pieces missing. The
//! assembler is tolerant — it never fails outright; instead it records
//! [`AssemblyWarning`]s, which feed the iterative evaluation loop (an analyst
//! seeing warnings improves the instrumentation or the model).
//!
//! Matching semantics: an operation instance is keyed by its full
//! `(actor, mission)` identity. A `START` opens an instance; the next `END`
//! with the same key closes the *most recently opened* open instance
//! (platforms that genuinely re-execute an identical operation are expected
//! to bump the mission id, as iterative missions do).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use granula_model::{names, Actor, Info, InfoValue, Mission, OpId, OperationTree, SourceRecord};

use crate::event::{EventPayload, LogEvent};

/// A problem encountered while assembling the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssemblyWarning {
    /// An `END` without a matching open `START`; the event was dropped.
    EndWithoutStart { label: String, time_us: u64 },
    /// An `INFO` for an operation that was never started; the event was dropped.
    InfoWithoutStart { label: String, time_us: u64 },
    /// A `START` whose declared parent is unknown; attached to the root.
    OrphanAttachedToRoot { label: String },
    /// A `START` arrived before any root existed; a synthetic root was created.
    SyntheticRoot,
    /// The operation never received an `END`; left without `EndTime`.
    Unclosed { label: String },
}

/// The assembled tree plus everything the analyst should know about gaps.
#[derive(Debug, Clone)]
pub struct AssemblyOutcome {
    /// The reconstructed operation hierarchy.
    pub tree: OperationTree,
    /// Gaps and repairs performed during assembly.
    pub warnings: Vec<AssemblyWarning>,
    /// Number of events consumed (after filtering).
    pub events_processed: usize,
}

/// Rebuilds operation trees from event streams.
#[derive(Debug, Default)]
pub struct Assembler {
    /// Retain raw log lines as [`SourceRecord`]s on `StartTime`/`EndTime`
    /// infos. Costs memory; default off.
    pub keep_source_records: bool,
}

impl Assembler {
    /// Creates an assembler with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables retention of raw source records.
    pub fn with_source_records(mut self) -> Self {
        self.keep_source_records = true;
        self
    }

    /// Assembles a tree from events. Events are sorted by timestamp first
    /// (stable, so same-timestamp events keep log order).
    pub fn assemble(&self, mut events: Vec<LogEvent>) -> AssemblyOutcome {
        let _span = granula_trace::span!("archiving", "assemble events={}", events.len());
        events.sort_by_key(|e| e.time_us);
        let mut tree = OperationTree::new();
        let mut warnings = Vec::new();
        // Open instances per identity key; a stack per key tolerates re-entry.
        let mut open: HashMap<(Actor, Mission), Vec<OpId>> = HashMap::new();
        // Most recent instance (open or closed) per key, for INFO events that
        // arrive after END.
        let mut last_instance: HashMap<(Actor, Mission), OpId> = HashMap::new();
        let events_processed = events.len();

        for event in events {
            let (actor, mission) = {
                let (a, m) = event.op_identity();
                (a.clone(), m.clone())
            };
            let key = (actor.clone(), mission.clone());
            let label = format!("{mission} @ {actor}");
            match &event.payload {
                EventPayload::OpStart { parent, .. } => {
                    let parent_id = match parent {
                        Some((pa, pm)) => {
                            let pkey = (pa.clone(), pm.clone());
                            match open.get(&pkey).and_then(|s| s.last().copied()) {
                                Some(pid) => Some(pid),
                                None => {
                                    warnings.push(AssemblyWarning::OrphanAttachedToRoot {
                                        label: label.clone(),
                                    });
                                    tree.root()
                                }
                            }
                        }
                        None => None,
                    };
                    let id = match parent_id {
                        Some(pid) => tree
                            .add_child(pid, actor.clone(), mission.clone())
                            .expect("parent id originates from this tree"),
                        None => {
                            if tree.root().is_some() {
                                // A second root-less START: treat the existing
                                // root as its parent rather than failing.
                                warnings.push(AssemblyWarning::OrphanAttachedToRoot {
                                    label: label.clone(),
                                });
                                let root = tree.root().expect("checked above");
                                tree.add_child(root, actor.clone(), mission.clone())
                                    .expect("root id is valid")
                            } else {
                                tree.add_root(actor.clone(), mission.clone())
                                    .expect("tree has no root yet")
                            }
                        }
                    };
                    let info = self.stamp(names::START_TIME, event.time_us, &event);
                    tree.op_mut(id).set_info(info);
                    tree.op_mut(id)
                        .set_info(Info::raw(names::NODE, InfoValue::Text(event.node.clone())));
                    open.entry(key.clone()).or_default().push(id);
                    last_instance.insert(key, id);
                }
                EventPayload::OpEnd { .. } => match open.get_mut(&key).and_then(Vec::pop) {
                    Some(id) => {
                        let info = self.stamp(names::END_TIME, event.time_us, &event);
                        tree.op_mut(id).set_info(info);
                    }
                    None => warnings.push(AssemblyWarning::EndWithoutStart {
                        label,
                        time_us: event.time_us,
                    }),
                },
                EventPayload::OpInfo { name, value, .. } => {
                    let target = open
                        .get(&key)
                        .and_then(|s| s.last().copied())
                        .or_else(|| last_instance.get(&key).copied());
                    match target {
                        Some(id) => {
                            let info = if self.keep_source_records {
                                Info::raw_with_records(
                                    name.clone(),
                                    value.clone(),
                                    vec![SourceRecord::new(
                                        format!("platform:{}/{}", event.node, event.process),
                                        event.to_line(),
                                    )],
                                )
                            } else {
                                Info::raw(name.clone(), value.clone())
                            };
                            tree.op_mut(id).set_info(info);
                        }
                        None => warnings.push(AssemblyWarning::InfoWithoutStart {
                            label,
                            time_us: event.time_us,
                        }),
                    }
                }
            }
        }

        // Report operations that never closed.
        for (key, stack) in &open {
            for _ in stack {
                warnings.push(AssemblyWarning::Unclosed {
                    label: format!("{} @ {}", key.1, key.0),
                });
            }
        }

        AssemblyOutcome {
            tree,
            warnings,
            events_processed,
        }
    }

    /// Parses raw log lines (mixed Granula and platform noise) and assembles.
    pub fn assemble_lines<'a>(&self, lines: impl IntoIterator<Item = &'a str>) -> AssemblyOutcome {
        let events = lines
            .into_iter()
            .filter_map(crate::event::parse_line)
            .collect();
        self.assemble(events)
    }

    fn stamp(&self, name: &str, time_us: u64, event: &LogEvent) -> Info {
        if self.keep_source_records {
            Info::raw_with_records(
                name,
                InfoValue::Int(time_us as i64),
                vec![SourceRecord::new(
                    format!("platform:{}/{}", event.node, event.process),
                    event.to_line(),
                )],
            )
        } else {
            Info::raw(name, InfoValue::Int(time_us as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(k: &str, i: &str) -> Actor {
        Actor::new(k, i)
    }
    fn m(k: &str, i: &str) -> Mission {
        Mission::new(k, i)
    }

    fn job_events() -> Vec<LogEvent> {
        let job = (a("Job", "0"), m("GiraphJob", "0"));
        let load = (a("Job", "0"), m("LoadGraph", "0"));
        vec![
            LogEvent::start(0, "n0", "client", job.0.clone(), job.1.clone(), None),
            LogEvent::start(
                10,
                "n0",
                "client",
                load.0.clone(),
                load.1.clone(),
                Some(job.clone()),
            ),
            LogEvent::info(
                15,
                "n0",
                "client",
                load.0.clone(),
                load.1.clone(),
                "Bytes",
                InfoValue::Int(1024),
            ),
            LogEvent::end(50, "n0", "client", load.0.clone(), load.1.clone()),
            LogEvent::end(100, "n0", "client", job.0, job.1),
        ]
    }

    #[test]
    fn clean_stream_assembles_without_warnings() {
        let out = Assembler::new().assemble(job_events());
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
        assert_eq!(out.tree.len(), 2);
        let root = out.tree.root().unwrap();
        let root_op = out.tree.op(root);
        assert_eq!(root_op.duration_us(), Some(100));
        let load = out.tree.child_by_mission(root, "LoadGraph").unwrap();
        assert_eq!(out.tree.op(load).info_i64("Bytes"), Some(1024));
        assert_eq!(out.tree.op(load).duration_us(), Some(40));
    }

    #[test]
    fn out_of_order_events_are_sorted() {
        let mut ev = job_events();
        ev.reverse();
        let out = Assembler::new().assemble(ev);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
        assert_eq!(out.tree.len(), 2);
    }

    #[test]
    fn end_without_start_warns_and_drops() {
        let ev = vec![LogEvent::end(5, "n", "p", a("Job", "0"), m("X", "0"))];
        let out = Assembler::new().assemble(ev);
        assert!(out.tree.is_empty());
        assert!(matches!(
            out.warnings[0],
            AssemblyWarning::EndWithoutStart { .. }
        ));
    }

    #[test]
    fn info_without_start_warns() {
        let ev = vec![LogEvent::info(
            5,
            "n",
            "p",
            a("Job", "0"),
            m("X", "0"),
            "K",
            InfoValue::Int(1),
        )];
        let out = Assembler::new().assemble(ev);
        assert!(matches!(
            out.warnings[0],
            AssemblyWarning::InfoWithoutStart { .. }
        ));
    }

    #[test]
    fn info_after_end_attaches_to_last_instance() {
        let key = (a("Worker", "1"), m("Compute", "0"));
        let ev = vec![
            LogEvent::start(0, "n", "p", key.0.clone(), key.1.clone(), None),
            LogEvent::end(10, "n", "p", key.0.clone(), key.1.clone()),
            LogEvent::info(12, "n", "p", key.0, key.1, "Late", InfoValue::Int(7)),
        ];
        let out = Assembler::new().assemble(ev);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
        let root = out.tree.root().unwrap();
        assert_eq!(out.tree.op(root).info_i64("Late"), Some(7));
    }

    #[test]
    fn missing_parent_attaches_to_root_with_warning() {
        let job = (a("Job", "0"), m("Job", "0"));
        let ghost_parent = (a("Job", "0"), m("NeverStarted", "0"));
        let child = (a("Worker", "1"), m("Compute", "0"));
        let ev = vec![
            LogEvent::start(0, "n", "p", job.0.clone(), job.1.clone(), None),
            LogEvent::start(5, "n", "p", child.0, child.1, Some(ghost_parent)),
        ];
        let out = Assembler::new().assemble(ev);
        assert!(matches!(
            out.warnings[0],
            AssemblyWarning::OrphanAttachedToRoot { .. }
        ));
        let root = out.tree.root().unwrap();
        assert_eq!(out.tree.op(root).children.len(), 1);
    }

    #[test]
    fn unclosed_operation_warns_and_has_no_end_time() {
        let job = (a("Job", "0"), m("Job", "0"));
        let ev = vec![LogEvent::start(0, "n", "p", job.0, job.1, None)];
        let out = Assembler::new().assemble(ev);
        assert!(matches!(out.warnings[0], AssemblyWarning::Unclosed { .. }));
        let root = out.tree.root().unwrap();
        assert_eq!(out.tree.op(root).end_us(), None);
    }

    #[test]
    fn second_rootless_start_becomes_child_of_root() {
        let ev = vec![
            LogEvent::start(0, "n", "p", a("Job", "0"), m("Job", "0"), None),
            LogEvent::start(1, "n", "p", a("Job", "1"), m("Rogue", "0"), None),
        ];
        let out = Assembler::new().assemble(ev);
        assert_eq!(out.tree.len(), 2);
        assert!(out
            .warnings
            .iter()
            .any(|w| matches!(w, AssemblyWarning::OrphanAttachedToRoot { .. })));
    }

    #[test]
    fn assemble_lines_skips_noise() {
        let lines = [
            "INFO org.apache.hadoop: starting container",
            "GRANULA 0 n0 client START Job-0@Job-0",
            "some random stderr",
            "GRANULA 9 n0 client END Job-0@Job-0",
        ];
        let out = Assembler::new().assemble_lines(lines);
        assert_eq!(out.events_processed, 2);
        assert_eq!(out.tree.len(), 1);
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn source_records_retained_when_enabled() {
        let out = Assembler::new()
            .with_source_records()
            .assemble(job_events());
        let root = out.tree.root().unwrap();
        let info = out.tree.op(root).info(names::START_TIME).unwrap();
        match &info.source {
            granula_model::InfoSource::Raw { records } => {
                assert_eq!(records.len(), 1);
                assert!(records[0].content.contains("START"));
            }
            _ => panic!("expected raw source"),
        }
    }

    #[test]
    fn node_info_recorded_on_start() {
        let out = Assembler::new().assemble(job_events());
        let root = out.tree.root().unwrap();
        assert_eq!(
            out.tree
                .op(root)
                .info_value(names::NODE)
                .and_then(|v| v.as_text()),
            Some("n0")
        );
    }
}
