//! Model-driven event filtering.
//!
//! "The collected data are automatically filtered, analyzed, and eventually
//! stored in a performance archive, based on the Granula performance model
//! defined by the analyst" (paper §4.2). A coarse model therefore means a
//! cheap evaluation — only the events the model mentions are retained —
//! which is how Granula implements the coarse/fine trade-off (R3).

use std::collections::BTreeSet;

use granula_model::PerformanceModel;

use crate::event::LogEvent;

/// Predicate over log events.
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    /// Mission kinds to retain; empty = retain all.
    mission_kinds: BTreeSet<String>,
    /// Nodes to retain; empty = retain all.
    nodes: BTreeSet<String>,
    /// Half-open time window `[start, end)`; `None` = unbounded.
    window_us: Option<(u64, u64)>,
}

impl EventFilter {
    /// A filter that accepts everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Builds a filter that retains exactly the mission kinds defined in the
    /// model — the automatic, model-driven filter of the archiving stage.
    pub fn from_model(model: &PerformanceModel) -> Self {
        EventFilter {
            mission_kinds: model
                .types
                .iter()
                .map(|t| t.id.mission_kind.clone())
                .collect(),
            ..Default::default()
        }
    }

    /// Restricts to one node.
    pub fn on_node(mut self, node: impl Into<String>) -> Self {
        self.nodes.insert(node.into());
        self
    }

    /// Restricts to a time window `[start_us, end_us)`.
    pub fn in_window(mut self, start_us: u64, end_us: u64) -> Self {
        self.window_us = Some((start_us, end_us));
        self
    }

    /// Adds a mission kind to the whitelist.
    pub fn with_mission_kind(mut self, kind: impl Into<String>) -> Self {
        self.mission_kinds.insert(kind.into());
        self
    }

    /// Does the filter accept this event?
    pub fn accepts(&self, event: &LogEvent) -> bool {
        if !self.mission_kinds.is_empty() {
            let (_, mission) = event.op_identity();
            if !self.mission_kinds.contains(&mission.kind) {
                return false;
            }
        }
        if !self.nodes.is_empty() && !self.nodes.contains(&event.node) {
            return false;
        }
        if let Some((s, e)) = self.window_us {
            if event.time_us < s || event.time_us >= e {
                return false;
            }
        }
        true
    }

    /// Applies the filter to a batch, keeping accepted events.
    pub fn apply(&self, events: Vec<LogEvent>) -> Vec<LogEvent> {
        events.into_iter().filter(|e| self.accepts(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{AbstractionLevel, Actor, Mission, OperationTypeDef};

    fn ev(kind: &str, node: &str, t: u64) -> LogEvent {
        LogEvent::start(
            t,
            node,
            "p",
            Actor::new("Job", "0"),
            Mission::new(kind, "0"),
            None,
        )
    }

    #[test]
    fn all_accepts_everything() {
        assert!(EventFilter::all().accepts(&ev("Anything", "n0", 5)));
    }

    #[test]
    fn model_filter_keeps_only_modeled_kinds() {
        let model = PerformanceModel::new("m", "P")
            .with_type(OperationTypeDef::new(
                "Job",
                "Job",
                AbstractionLevel::Domain,
            ))
            .with_type(OperationTypeDef::new(
                "Job",
                "LoadGraph",
                AbstractionLevel::Domain,
            ));
        let f = EventFilter::from_model(&model);
        assert!(f.accepts(&ev("LoadGraph", "n0", 0)));
        assert!(!f.accepts(&ev("ZkCleanup", "n0", 0)));
    }

    #[test]
    fn node_and_window_constraints() {
        let f = EventFilter::all().on_node("n1").in_window(10, 20);
        assert!(f.accepts(&ev("X", "n1", 10)));
        assert!(!f.accepts(&ev("X", "n0", 10)));
        assert!(!f.accepts(&ev("X", "n1", 20))); // half-open
        assert!(!f.accepts(&ev("X", "n1", 9)));
    }

    #[test]
    fn apply_filters_batch() {
        let f = EventFilter::all().with_mission_kind("Keep");
        let out = f.apply(vec![
            ev("Keep", "n", 0),
            ev("Drop", "n", 1),
            ev("Keep", "n", 2),
        ]);
        assert_eq!(out.len(), 2);
    }
}
