//! Environment monitoring: resource-usage time series per cluster node.
//!
//! Environment logs "reveal the performance impact on the underlying cluster
//! environment" (paper §3.3). Granula maps fine-grained resource data, such
//! as per-node CPU usage, onto the corresponding system operations —
//! Figures 6 and 7 of the paper are exactly this mapping.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use granula_model::{Info, InfoValue, OperationTree};

/// The resource a sample measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// CPU time consumed per second of wall time (i.e. busy cores).
    Cpu,
    /// Resident memory, bytes.
    Memory,
    /// Network throughput, bytes/second.
    Network,
    /// Disk throughput, bytes/second.
    Disk,
}

impl ResourceKind {
    /// Canonical info-name suffix for the resource, e.g. `CpuSeries`.
    pub fn series_name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "CpuSeries",
            ResourceKind::Memory => "MemorySeries",
            ResourceKind::Network => "NetworkSeries",
            ResourceKind::Disk => "DiskSeries",
        }
    }
}

/// One environment-monitor sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSample {
    /// Sample time, microseconds since job epoch.
    pub time_us: u64,
    /// Node the sample was taken on.
    pub node: String,
    /// Resource measured.
    pub kind: ResourceKind,
    /// Value in the resource's unit (busy cores for CPU, bytes for memory,
    /// bytes/s for network and disk).
    pub value: f64,
}

/// Aggregate usage of one node over some interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeUsage {
    /// Node name.
    pub node: String,
    /// Mean value over the interval.
    pub mean: f64,
    /// Peak value over the interval.
    pub peak: f64,
    /// Number of samples in the interval.
    pub samples: usize,
}

/// The environment log of one experiment: samples per (node, resource),
/// sorted by time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnvLog {
    series: BTreeMap<(String, ResourceKind), Vec<(u64, f64)>>,
}

impl EnvLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one sample (samples may arrive out of order).
    pub fn push(&mut self, sample: ResourceSample) {
        let series = self.series.entry((sample.node, sample.kind)).or_default();
        series.push((sample.time_us, sample.value));
        // Keep sorted; samples are usually appended in order so this is O(1).
        let n = series.len();
        if n > 1 && series[n - 2].0 > series[n - 1].0 {
            series.sort_by_key(|&(t, _)| t);
        }
    }

    /// Ingests many samples.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = ResourceSample>) {
        for s in samples {
            self.push(s);
        }
    }

    /// All node names that have at least one sample.
    pub fn nodes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.series.keys().map(|(n, _)| n.as_str()).collect();
        out.dedup();
        out
    }

    /// The full series for a node and resource.
    pub fn series(&self, node: &str, kind: ResourceKind) -> Option<&[(u64, f64)]> {
        self.series
            .get(&(node.to_string(), kind))
            .map(Vec::as_slice)
    }

    /// Samples of a node/resource within `[start_us, end_us)`.
    pub fn window(
        &self,
        node: &str,
        kind: ResourceKind,
        start_us: u64,
        end_us: u64,
    ) -> &[(u64, f64)] {
        let Some(series) = self.series(node, kind) else {
            return &[];
        };
        let lo = series.partition_point(|&(t, _)| t < start_us);
        let hi = series.partition_point(|&(t, _)| t < end_us);
        &series[lo..hi]
    }

    /// Aggregate usage of a node/resource within an interval. Operations
    /// shorter than the sampling period fall back to the sample covering
    /// their start (samples describe the bucket *starting* at their
    /// timestamp).
    pub fn usage(
        &self,
        node: &str,
        kind: ResourceKind,
        start_us: u64,
        end_us: u64,
    ) -> Option<NodeUsage> {
        let mut w = self.window(node, kind, start_us, end_us);
        if w.is_empty() {
            // Fall back to the covering bucket: the last sample at or
            // before `start_us`, provided the series extends past it.
            let series = self.series(node, kind)?;
            let idx = series.partition_point(|&(t, _)| t <= start_us);
            if idx == 0 {
                return None;
            }
            w = &series[idx - 1..idx];
        }
        let sum: f64 = w.iter().map(|&(_, v)| v).sum();
        let peak = w.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
        Some(NodeUsage {
            node: node.to_string(),
            mean: sum / w.len() as f64,
            peak,
            samples: w.len(),
        })
    }

    /// Cluster-wide cumulative series: at every sample time of any node, the
    /// sum of the latest value of each node (step-wise). This is the
    /// "cumulative CPU usage of distributed Linux processes" of Figures 6-7.
    pub fn cumulative(&self, kind: ResourceKind) -> Vec<(u64, f64)> {
        let mut nodes: Vec<&Vec<(u64, f64)>> = self
            .series
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| v)
            .collect();
        nodes.retain(|s| !s.is_empty());
        if nodes.is_empty() {
            return vec![];
        }
        let mut times: Vec<u64> = nodes
            .iter()
            .flat_map(|s| s.iter().map(|&(t, _)| t))
            .collect();
        times.sort_unstable();
        times.dedup();
        let mut cursors = vec![0usize; nodes.len()];
        let mut latest = vec![0.0f64; nodes.len()];
        let mut out = Vec::with_capacity(times.len());
        for t in times {
            for (i, s) in nodes.iter().enumerate() {
                while cursors[i] < s.len() && s[cursors[i]].0 <= t {
                    latest[i] = s[cursors[i]].1;
                    cursors[i] += 1;
                }
            }
            out.push((t, latest.iter().sum()));
        }
        out
    }

    /// **Operation mapping** (paper §4.3): attach, to every operation in the
    /// tree that has timestamps and a `Node` info, the mean and peak usage of
    /// `kind` on that node during the operation's interval, as infos
    /// `"<Kind>Mean"` / `"<Kind>Peak"`. Operations without a node get the
    /// cluster-wide aggregate. Returns the number of operations annotated.
    pub fn map_to_operations(&self, tree: &mut OperationTree, kind: ResourceKind) -> usize {
        let (mean_name, peak_name) = match kind {
            ResourceKind::Cpu => ("CpuMean", "CpuPeak"),
            ResourceKind::Memory => ("MemoryMean", "MemoryPeak"),
            ResourceKind::Network => ("NetworkMean", "NetworkPeak"),
            ResourceKind::Disk => ("DiskMean", "DiskPeak"),
        };
        let mut annotated = 0;
        for id in tree.dfs() {
            let op = tree.op(id);
            let (Some(s), Some(e)) = (op.start_us(), op.end_us()) else {
                continue;
            };
            let node = op
                .info_value(granula_model::names::NODE)
                .and_then(|v| v.as_text())
                .map(str::to_string);
            let usage = match &node {
                Some(n) => self.usage(n, kind, s, e),
                None => {
                    // Cluster-wide view for node-less (job-level) operations.
                    let cum = self.cumulative(kind);
                    let w: Vec<&(u64, f64)> =
                        cum.iter().filter(|&&(t, _)| t >= s && t < e).collect();
                    if w.is_empty() {
                        None
                    } else {
                        let sum: f64 = w.iter().map(|&&(_, v)| v).sum();
                        let peak = w.iter().map(|&&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
                        Some(NodeUsage {
                            node: "<cluster>".into(),
                            mean: sum / w.len() as f64,
                            peak,
                            samples: w.len(),
                        })
                    }
                }
            };
            if let Some(u) = usage {
                let op = tree.op_mut(id);
                op.set_info(Info::raw(mean_name, InfoValue::Float(u.mean)));
                op.set_info(Info::raw(peak_name, InfoValue::Float(u.peak)));
                annotated += 1;
            }
        }
        annotated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{names, Actor, Mission};

    fn sample(t: u64, node: &str, v: f64) -> ResourceSample {
        ResourceSample {
            time_us: t,
            node: node.into(),
            kind: ResourceKind::Cpu,
            value: v,
        }
    }

    #[test]
    fn window_selects_half_open_interval() {
        let mut log = EnvLog::new();
        log.extend([
            sample(0, "n0", 1.0),
            sample(10, "n0", 2.0),
            sample(20, "n0", 3.0),
        ]);
        let w = log.window("n0", ResourceKind::Cpu, 0, 20);
        assert_eq!(w, &[(0, 1.0), (10, 2.0)]);
    }

    #[test]
    fn out_of_order_samples_get_sorted() {
        let mut log = EnvLog::new();
        log.extend([sample(20, "n0", 3.0), sample(0, "n0", 1.0)]);
        assert_eq!(log.series("n0", ResourceKind::Cpu).unwrap()[0].0, 0);
    }

    #[test]
    fn usage_mean_and_peak() {
        let mut log = EnvLog::new();
        log.extend([
            sample(0, "n0", 1.0),
            sample(10, "n0", 5.0),
            sample(20, "n0", 3.0),
        ]);
        let u = log.usage("n0", ResourceKind::Cpu, 0, 30).unwrap();
        assert_eq!(u.mean, 3.0);
        assert_eq!(u.peak, 5.0);
        assert_eq!(u.samples, 3);
    }

    #[test]
    fn cumulative_sums_latest_per_node() {
        let mut log = EnvLog::new();
        log.extend([
            sample(0, "n0", 1.0),
            sample(0, "n1", 2.0),
            sample(10, "n0", 4.0),
        ]);
        let c = log.cumulative(ResourceKind::Cpu);
        assert_eq!(c, vec![(0, 3.0), (10, 6.0)]);
    }

    #[test]
    fn cumulative_empty_for_unmeasured_resource() {
        let mut log = EnvLog::new();
        log.push(sample(0, "n0", 1.0));
        assert!(log.cumulative(ResourceKind::Disk).is_empty());
    }

    #[test]
    fn map_to_operations_annotates_node_bound_ops() {
        let mut log = EnvLog::new();
        log.extend([
            sample(0, "n0", 2.0),
            sample(10, "n0", 4.0),
            sample(20, "n0", 6.0),
        ]);
        let mut tree = OperationTree::new();
        let root = tree
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        tree.set_info(root, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        tree.set_info(root, Info::raw(names::END_TIME, InfoValue::Int(15)))
            .unwrap();
        tree.set_info(root, Info::raw(names::NODE, InfoValue::Text("n0".into())))
            .unwrap();
        let n = log.map_to_operations(&mut tree, ResourceKind::Cpu);
        assert_eq!(n, 1);
        assert_eq!(tree.op(root).info_f64("CpuMean"), Some(3.0));
        assert_eq!(tree.op(root).info_f64("CpuPeak"), Some(4.0));
    }

    #[test]
    fn map_to_operations_uses_cluster_view_without_node() {
        let mut log = EnvLog::new();
        log.extend([sample(0, "n0", 1.0), sample(0, "n1", 2.0)]);
        let mut tree = OperationTree::new();
        let root = tree
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        tree.set_info(root, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        tree.set_info(root, Info::raw(names::END_TIME, InfoValue::Int(10)))
            .unwrap();
        log.map_to_operations(&mut tree, ResourceKind::Cpu);
        assert_eq!(tree.op(root).info_f64("CpuMean"), Some(3.0));
    }

    #[test]
    fn nodes_lists_each_node_once() {
        let mut log = EnvLog::new();
        log.extend([
            sample(0, "n0", 1.0),
            sample(1, "n0", 1.0),
            sample(0, "n1", 1.0),
        ]);
        assert_eq!(log.nodes(), vec!["n0", "n1"]);
    }
}
