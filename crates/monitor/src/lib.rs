//! # granula-monitor
//!
//! The Granula **monitoring** stage (paper §3.3, P2).
//!
//! Two types of performance data are collected while platform jobs run:
//!
//! 1. **platform logs** reveal the internal operations of the platform —
//!    modelled here as a stream of [`LogEvent`]s in a small text grammar that
//!    instrumented platforms emit and [`event::parse_line`] recovers;
//! 2. **environment logs** reveal the performance impact on the underlying
//!    cluster — modelled as [`ResourceSample`] time series per node.
//!
//! The crate also owns the machinery that turns distributed, interleaved,
//! possibly skewed and lossy logs back into one coherent
//! [`granula_model::OperationTree`]: clock-skew correction
//! ([`clock::SkewCorrector`]), model-driven filtering ([`filter::EventFilter`])
//! and assembly ([`assemble::Assembler`]).
//!
//! ```
//! use granula_monitor::Assembler;
//!
//! let logs = [
//!     "INFO some ordinary platform logging",
//!     "GRANULA 0 node01 client START Job-0@Job-0",
//!     "GRANULA 9000000 node01 client END Job-0@Job-0",
//! ];
//! let outcome = Assembler::new().assemble_lines(logs);
//! assert!(outcome.warnings.is_empty());
//! assert_eq!(outcome.tree.len(), 1);
//! ```

pub mod assemble;
pub mod clock;
pub mod collect;
pub mod env;
pub mod event;
pub mod filter;

pub use assemble::{Assembler, AssemblyOutcome, AssemblyWarning};
pub use clock::SkewCorrector;
pub use collect::{collect_dir, write_env_logs, write_logs, CollectStats};
pub use env::{EnvLog, NodeUsage, ResourceKind, ResourceSample};
pub use event::{parse_line, EventPayload, LogEvent};
pub use filter::EventFilter;
