//! File-based log collection: the mechanics of real monitoring.
//!
//! A deployed Granula scrapes log *files* — one per process per node —
//! after the job finishes. This module writes event streams out in exactly
//! that layout (platform log lines mixed with whatever else the process
//! printed) and collects a directory of such files back into events,
//! tolerating unknown files and non-Granula lines.
//!
//! Environment samples use a sibling line format:
//! `GRANULA-ENV <time_us> <node> <cpu|memory|network|disk> <value>`.

use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::env::{ResourceKind, ResourceSample};
use crate::event::{parse_line, LogEvent};

/// Statistics of one collection pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Log files read.
    pub files: usize,
    /// Total lines scanned.
    pub lines: usize,
    /// Granula events recovered.
    pub events: usize,
    /// Environment samples recovered.
    pub samples: usize,
}

fn kind_name(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Cpu => "cpu",
        ResourceKind::Memory => "memory",
        ResourceKind::Network => "network",
        ResourceKind::Disk => "disk",
    }
}

fn parse_kind(s: &str) -> Option<ResourceKind> {
    match s {
        "cpu" => Some(ResourceKind::Cpu),
        "memory" => Some(ResourceKind::Memory),
        "network" => Some(ResourceKind::Network),
        "disk" => Some(ResourceKind::Disk),
        _ => None,
    }
}

/// Renders one environment sample as a log line.
pub fn env_line(sample: &ResourceSample) -> String {
    format!(
        "GRANULA-ENV {} {} {} {:?}",
        sample.time_us,
        sample.node,
        kind_name(sample.kind),
        sample.value
    )
}

/// Parses an environment-sample line; `None` for other lines.
pub fn parse_env_line(line: &str) -> Option<ResourceSample> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "GRANULA-ENV" {
        return None;
    }
    Some(ResourceSample {
        time_us: parts.next()?.parse().ok()?,
        node: parts.next()?.to_string(),
        kind: parse_kind(parts.next()?)?,
        value: parts.next()?.parse().ok()?,
    })
}

/// Writes events into `dir`, one file per `(node, process)` pair, in the
/// layout a log scraper would find on a cluster. Returns the file count.
pub fn write_logs(events: &[LogEvent], dir: &Path) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    use std::collections::BTreeMap;
    let mut per_file: BTreeMap<String, Vec<&LogEvent>> = BTreeMap::new();
    for e in events {
        per_file
            .entry(format!("{}__{}.log", e.node, e.process))
            .or_default()
            .push(e);
    }
    for (name, events) in &per_file {
        let mut w = BufWriter::new(fs::File::create(dir.join(name))?);
        for e in events {
            writeln!(w, "{}", e.to_line())?;
        }
        w.flush()?;
    }
    Ok(per_file.len())
}

/// Writes environment samples into `dir/<node>__env.log` files.
pub fn write_env_logs(samples: &[ResourceSample], dir: &Path) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    use std::collections::BTreeMap;
    let mut per_node: BTreeMap<String, Vec<&ResourceSample>> = BTreeMap::new();
    for s in samples {
        per_node
            .entry(format!("{}__env.log", s.node))
            .or_default()
            .push(s);
    }
    for (name, samples) in &per_node {
        let mut w = BufWriter::new(fs::File::create(dir.join(name))?);
        for s in samples {
            writeln!(w, "{}", env_line(s))?;
        }
        w.flush()?;
    }
    Ok(per_node.len())
}

/// Scrapes every `*.log` file under `dir` (non-recursive), recovering
/// Granula events and environment samples; all other lines are skipped,
/// like the platform noise in real logs.
pub fn collect_dir(dir: &Path) -> io::Result<(Vec<LogEvent>, Vec<ResourceSample>, CollectStats)> {
    let mut events = Vec::new();
    let mut samples = Vec::new();
    let mut stats = CollectStats::default();
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|e| e.path().extension().is_some_and(|x| x == "log"))
        .collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        stats.files += 1;
        let reader = BufReader::new(fs::File::open(entry.path())?);
        let mut line = String::new();
        let mut reader = reader;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            stats.lines += 1;
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if let Some(event) = parse_line(trimmed) {
                events.push(event);
                stats.events += 1;
            } else if let Some(sample) = parse_env_line(trimmed) {
                samples.push(sample);
                stats.samples += 1;
            }
        }
    }
    Ok((events, samples, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{Actor, InfoValue, Mission};

    fn events() -> Vec<LogEvent> {
        let job = (Actor::new("Job", "0"), Mission::new("Job", "0"));
        vec![
            LogEvent::start(0, "n0", "client", job.0.clone(), job.1.clone(), None),
            LogEvent::info(
                3,
                "n1",
                "worker-1",
                Actor::new("W", "1"),
                Mission::new("C", "0"),
                "K",
                InfoValue::Int(5),
            ),
            LogEvent::end(9, "n0", "client", job.0, job.1),
        ]
    }

    fn samples() -> Vec<ResourceSample> {
        vec![
            ResourceSample {
                time_us: 0,
                node: "n0".into(),
                kind: ResourceKind::Cpu,
                value: 1.5,
            },
            ResourceSample {
                time_us: 1_000_000,
                node: "n1".into(),
                kind: ResourceKind::Network,
                value: 2.25e6,
            },
        ]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("granula-collect-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_collect_roundtrips() {
        let dir = tmp("roundtrip");
        assert_eq!(write_logs(&events(), &dir).unwrap(), 2); // n0__client, n1__worker-1
        assert_eq!(write_env_logs(&samples(), &dir).unwrap(), 2);
        let (mut collected, env, stats) = collect_dir(&dir).unwrap();
        assert_eq!(stats.files, 4);
        assert_eq!(stats.events, 3);
        assert_eq!(stats.samples, 2);
        // File iteration order differs from emission order; compare as sets.
        collected.sort_by_key(|e| e.time_us);
        assert_eq!(collected, events());
        assert_eq!(env.len(), 2);
        assert_eq!(env[0].kind, ResourceKind::Cpu);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn noise_lines_and_foreign_files_are_skipped() {
        let dir = tmp("noise");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("n0__client.log"),
            "INFO starting up\nGRANULA 5 n0 client START Job-0@Job-0\ngarbage\n",
        )
        .unwrap();
        fs::write(dir.join("notes.txt"), "GRANULA 5 n0 client END Job-0@Job-0").unwrap();
        let (events, samplez, stats) = collect_dir(&dir).unwrap();
        assert_eq!(stats.files, 1); // .txt ignored
        assert_eq!(events.len(), 1);
        assert!(samplez.is_empty());
        assert_eq!(stats.lines, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_line_roundtrip() {
        for s in samples() {
            assert_eq!(parse_env_line(&env_line(&s)), Some(s));
        }
        assert_eq!(parse_env_line("GRANULA-ENV x n0 cpu 1.0"), None);
        assert_eq!(parse_env_line("GRANULA-ENV 1 n0 gpu 1.0"), None);
        assert_eq!(parse_env_line("not env"), None);
    }

    #[test]
    fn empty_directory_collects_nothing() {
        let dir = tmp("empty");
        fs::create_dir_all(&dir).unwrap();
        let (events, samplez, stats) = collect_dir(&dir).unwrap();
        assert!(events.is_empty() && samplez.is_empty());
        assert_eq!(stats, CollectStats::default());
        let _ = fs::remove_dir_all(&dir);
    }
}
