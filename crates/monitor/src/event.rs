//! The Granula log-event grammar.
//!
//! Instrumented platforms emit one line per event; monitoring scrapes the
//! lines back. The grammar is deliberately line-oriented and greppable, like
//! the log4j markers real Granula injects into Giraph:
//!
//! ```text
//! GRANULA <time_us> <node> <process> START <mission>@<actor> parent=<mission>@<actor>
//! GRANULA <time_us> <node> <process> END   <mission>@<actor>
//! GRANULA <time_us> <node> <process> INFO  <mission>@<actor> <name>=<value>
//! ```
//!
//! `<mission>` and `<actor>` use `Kind-Id` notation; `parent=` is optional on
//! `START` (the job root has none). Values are parsed as integer, then float,
//! then text. Lines not starting with `GRANULA` belong to the platform's
//! ordinary logging and are ignored by the collector.

use serde::{Deserialize, Serialize};

use granula_model::{Actor, InfoValue, Mission};

/// What a log event reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventPayload {
    /// An operation began.
    OpStart {
        /// Operation identity.
        actor: Actor,
        /// Operation identity.
        mission: Mission,
        /// Identity of the parent operation, if the platform knows it.
        parent: Option<(Actor, Mission)>,
    },
    /// An operation completed.
    OpEnd {
        /// Operation identity.
        actor: Actor,
        /// Operation identity.
        mission: Mission,
    },
    /// A raw info about an operation.
    OpInfo {
        /// Operation identity.
        actor: Actor,
        /// Operation identity.
        mission: Mission,
        /// Info name.
        name: String,
        /// Info value.
        value: InfoValue,
    },
}

/// One event scraped from a platform log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEvent {
    /// Event timestamp in microseconds since job epoch (node-local clock).
    pub time_us: u64,
    /// Node the emitting process ran on, e.g. `"node340"`.
    pub node: String,
    /// Emitting process, e.g. `"worker-3"` or `"master"`.
    pub process: String,
    /// Payload.
    pub payload: EventPayload,
}

impl LogEvent {
    /// The operation identity the event concerns.
    pub fn op_identity(&self) -> (&Actor, &Mission) {
        match &self.payload {
            EventPayload::OpStart { actor, mission, .. }
            | EventPayload::OpEnd { actor, mission }
            | EventPayload::OpInfo { actor, mission, .. } => (actor, mission),
        }
    }

    /// Renders the event in the log-line grammar.
    pub fn to_line(&self) -> String {
        let (actor, mission) = self.op_identity();
        let head = format!("GRANULA {} {} {}", self.time_us, self.node, self.process);
        match &self.payload {
            EventPayload::OpStart { parent, .. } => match parent {
                Some((pa, pm)) => {
                    format!("{head} START {mission}@{actor} parent={pm}@{pa}")
                }
                None => format!("{head} START {mission}@{actor}"),
            },
            EventPayload::OpEnd { .. } => format!("{head} END {mission}@{actor}"),
            EventPayload::OpInfo { name, value, .. } => {
                format!(
                    "{head} INFO {mission}@{actor} {name}={}",
                    render_value(value)
                )
            }
        }
    }
}

fn render_value(v: &InfoValue) -> String {
    match v {
        InfoValue::Int(i) => i.to_string(),
        InfoValue::Float(f) => format!("{f:?}"),
        InfoValue::Text(t) => t.clone(),
        // Series are environment data and never travel through log lines.
        InfoValue::Series(_) => String::from("<series>"),
    }
}

fn parse_value(s: &str) -> InfoValue {
    if let Ok(i) = s.parse::<i64>() {
        return InfoValue::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return InfoValue::Float(f);
    }
    InfoValue::Text(s.to_string())
}

fn parse_identity(s: &str) -> Option<(Actor, Mission)> {
    let (mission, actor) = s.split_once('@')?;
    if mission.is_empty() || actor.is_empty() {
        return None;
    }
    Some((Actor::parse(actor), Mission::parse(mission)))
}

/// Parses one log line. Returns `None` for lines that are not Granula
/// events (ordinary platform logging) or are malformed.
pub fn parse_line(line: &str) -> Option<LogEvent> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "GRANULA" {
        return None;
    }
    let time_us = parts.next()?.parse::<u64>().ok()?;
    let node = parts.next()?.to_string();
    let process = parts.next()?.to_string();
    let kind = parts.next()?;
    let identity = parts.next()?;
    let (actor, mission) = parse_identity(identity)?;
    let payload = match kind {
        "START" => {
            let parent = match parts.next() {
                Some(p) => Some(parse_identity(p.strip_prefix("parent=")?)?),
                None => None,
            };
            EventPayload::OpStart {
                actor,
                mission,
                parent,
            }
        }
        "END" => EventPayload::OpEnd { actor, mission },
        "INFO" => {
            // The value may contain (and even start or end with) spaces, so
            // slice the raw line at the first `=` instead of re-joining
            // whitespace-split tokens: the name is the token immediately
            // before the `=`, the value is everything after it, verbatim.
            let eq = line.find('=')?;
            let name = line[..eq].split_whitespace().last()?;
            if name == identity || name.is_empty() {
                return None; // no name token between identity and `=`
            }
            EventPayload::OpInfo {
                actor,
                mission,
                name: name.to_string(),
                value: parse_value(&line[eq + 1..]),
            }
        }
        _ => return None,
    };
    Some(LogEvent {
        time_us,
        node,
        process,
        payload,
    })
}

/// Convenience constructors used by instrumented platforms.
impl LogEvent {
    /// A `START` event.
    pub fn start(
        time_us: u64,
        node: impl Into<String>,
        process: impl Into<String>,
        actor: Actor,
        mission: Mission,
        parent: Option<(Actor, Mission)>,
    ) -> Self {
        LogEvent {
            time_us,
            node: node.into(),
            process: process.into(),
            payload: EventPayload::OpStart {
                actor,
                mission,
                parent,
            },
        }
    }

    /// An `END` event.
    pub fn end(
        time_us: u64,
        node: impl Into<String>,
        process: impl Into<String>,
        actor: Actor,
        mission: Mission,
    ) -> Self {
        LogEvent {
            time_us,
            node: node.into(),
            process: process.into(),
            payload: EventPayload::OpEnd { actor, mission },
        }
    }

    /// An `INFO` event.
    pub fn info(
        time_us: u64,
        node: impl Into<String>,
        process: impl Into<String>,
        actor: Actor,
        mission: Mission,
        name: impl Into<String>,
        value: InfoValue,
    ) -> Self {
        LogEvent {
            time_us,
            node: node.into(),
            process: process.into(),
            payload: EventPayload::OpInfo {
                actor,
                mission,
                name: name.into(),
                value,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker() -> (Actor, Mission) {
        (Actor::new("Worker", "3"), Mission::new("Superstep", "4"))
    }

    #[test]
    fn start_line_roundtrip_with_parent() {
        let (a, m) = worker();
        let parent = (Actor::new("Job", "0"), Mission::new("ProcessGraph", "0"));
        let e = LogEvent::start(1234, "node01", "worker-3", a, m, Some(parent));
        let line = e.to_line();
        assert_eq!(
            line,
            "GRANULA 1234 node01 worker-3 START Superstep-4@Worker-3 parent=ProcessGraph-0@Job-0"
        );
        assert_eq!(parse_line(&line), Some(e));
    }

    #[test]
    fn start_line_roundtrip_without_parent() {
        let e = LogEvent::start(
            0,
            "n",
            "p",
            Actor::new("Job", "0"),
            Mission::new("Job", "0"),
            None,
        );
        assert_eq!(parse_line(&e.to_line()), Some(e));
    }

    #[test]
    fn end_line_roundtrip() {
        let (a, m) = worker();
        let e = LogEvent::end(99, "node02", "worker-3", a, m);
        assert_eq!(parse_line(&e.to_line()), Some(e));
    }

    #[test]
    fn info_line_roundtrips_each_value_kind() {
        let (a, m) = worker();
        for v in [
            InfoValue::Int(-42),
            InfoValue::Float(2.5),
            InfoValue::Text("hello world".into()),
        ] {
            let e = LogEvent::info(7, "n", "p", a.clone(), m.clone(), "K", v.clone());
            let parsed = parse_line(&e.to_line()).unwrap();
            match &parsed.payload {
                EventPayload::OpInfo { value, .. } => assert_eq!(value, &v),
                _ => panic!("wrong payload"),
            }
        }
    }

    #[test]
    fn non_granula_lines_ignored() {
        assert_eq!(
            parse_line("INFO org.apache.giraph.master: superstep 4 done"),
            None
        );
        assert_eq!(parse_line(""), None);
    }

    #[test]
    fn malformed_lines_rejected() {
        assert_eq!(parse_line("GRANULA x node p START A@B"), None); // bad time
        assert_eq!(parse_line("GRANULA 1 node p BEGIN A@B"), None); // bad kind
        assert_eq!(parse_line("GRANULA 1 node p START AB"), None); // no '@'
        assert_eq!(parse_line("GRANULA 1 node p INFO A@B novalue"), None); // no '='
        assert_eq!(parse_line("GRANULA 1 node p START A@B dad=X@Y"), None); // bad parent key
    }

    #[test]
    fn float_value_survives_precision() {
        let (a, m) = worker();
        let e = LogEvent::info(7, "n", "p", a, m, "F", InfoValue::Float(0.1 + 0.2));
        let parsed = parse_line(&e.to_line()).unwrap();
        match parsed.payload {
            EventPayload::OpInfo {
                value: InfoValue::Float(f),
                ..
            } => {
                assert_eq!(f, 0.1 + 0.2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
