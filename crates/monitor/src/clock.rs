//! Clock-skew correction for multi-node logs.
//!
//! Timestamps in distributed logs come from node-local clocks. Granula
//! corrects them before assembly using *anchor events*: events known to be
//! (approximately) simultaneous across nodes, such as the release of a
//! barrier every worker logs. From the anchors the corrector estimates one
//! offset per node and rewrites event timestamps to the reference clock.

use std::collections::BTreeMap;

use crate::event::LogEvent;

/// Per-node clock-offset table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SkewCorrector {
    /// Offset in microseconds *added* to each node's local timestamps.
    offsets: BTreeMap<String, i64>,
}

impl SkewCorrector {
    /// Creates a corrector with no offsets (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a node's offset explicitly.
    pub fn set_offset(&mut self, node: impl Into<String>, offset_us: i64) {
        self.offsets.insert(node.into(), offset_us);
    }

    /// The offset applied to a node (0 when unknown).
    pub fn offset(&self, node: &str) -> i64 {
        self.offsets.get(node).copied().unwrap_or(0)
    }

    /// Estimates offsets from anchor observations: tuples of
    /// `(node, local_time_us)` for an event that *truly* happened at the same
    /// instant on every node. The earliest observation is taken as the
    /// reference clock. With several anchors per node, offsets are averaged.
    pub fn from_anchors<'a>(
        anchors: impl IntoIterator<Item = &'a [(String, u64)]>,
    ) -> SkewCorrector {
        let mut sums: BTreeMap<String, (i64, u32)> = BTreeMap::new();
        for group in anchors {
            let Some(&reference) = group.iter().map(|(_, t)| t).min() else {
                continue;
            };
            for (node, t) in group {
                let entry = sums.entry(node.clone()).or_insert((0, 0));
                entry.0 += reference as i64 - *t as i64;
                entry.1 += 1;
            }
        }
        let mut corrector = SkewCorrector::new();
        for (node, (sum, n)) in sums {
            corrector.offsets.insert(node, sum / n as i64);
        }
        corrector
    }

    /// Applies the correction to one event (saturating at zero).
    pub fn correct(&self, event: &mut LogEvent) {
        let off = self.offset(&event.node);
        event.time_us = add_signed(event.time_us, off);
    }

    /// Applies the correction to a batch of events.
    pub fn correct_all(&self, events: &mut [LogEvent]) {
        for e in events {
            self.correct(e);
        }
    }
}

fn add_signed(t: u64, off: i64) -> u64 {
    if off >= 0 {
        t.saturating_add(off as u64)
    } else {
        t.saturating_sub(off.unsigned_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{Actor, Mission};

    fn event(node: &str, t: u64) -> LogEvent {
        LogEvent::start(
            t,
            node,
            "p",
            Actor::new("A", "0"),
            Mission::new("M", "0"),
            None,
        )
    }

    #[test]
    fn identity_without_offsets() {
        let c = SkewCorrector::new();
        let mut e = event("n0", 100);
        c.correct(&mut e);
        assert_eq!(e.time_us, 100);
    }

    #[test]
    fn anchors_align_nodes_to_earliest() {
        // Barrier released at true time ~1000; n1's clock is 50us fast.
        let group = vec![("n0".to_string(), 1000u64), ("n1".to_string(), 1050u64)];
        let c = SkewCorrector::from_anchors([group.as_slice()]);
        assert_eq!(c.offset("n0"), 0);
        assert_eq!(c.offset("n1"), -50);
        let mut e = event("n1", 1050);
        c.correct(&mut e);
        assert_eq!(e.time_us, 1000);
    }

    #[test]
    fn multiple_anchors_average() {
        let g1 = vec![("n0".to_string(), 100u64), ("n1".to_string(), 140u64)];
        let g2 = vec![("n0".to_string(), 200u64), ("n1".to_string(), 220u64)];
        let c = SkewCorrector::from_anchors([g1.as_slice(), g2.as_slice()]);
        assert_eq!(c.offset("n1"), -30);
    }

    #[test]
    fn negative_correction_saturates_at_zero() {
        let mut c = SkewCorrector::new();
        c.set_offset("n0", -500);
        let mut e = event("n0", 100);
        c.correct(&mut e);
        assert_eq!(e.time_us, 0);
    }

    #[test]
    fn correct_all_touches_only_known_nodes() {
        let mut c = SkewCorrector::new();
        c.set_offset("n1", 10);
        let mut events = vec![event("n0", 100), event("n1", 100)];
        c.correct_all(&mut events);
        assert_eq!(events[0].time_us, 100);
        assert_eq!(events[1].time_us, 110);
    }
}
