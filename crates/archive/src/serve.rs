//! The archive daemon: a line protocol over TCP in front of
//! [`ShardedEngine`].
//!
//! `granula-cli serve` binds this server over a fleet of `.gar` files
//! and keeps it up; analysts (or the load generator, or the future viz
//! UI) connect with any TCP client. The protocol is deliberately plain —
//! one UTF-8 line per request, one line per response — so `nc` works as
//! a debugging client and the responses are trivially comparable against
//! in-process results:
//!
//! ```text
//! → Q findall <job-id> <query>       ← OK <n> <id,id,...>   ("-" when empty)
//! → Q select  <job-id> <query>       ← OK <n> <id,id,...>
//!                                    ← NOJOB <job-id>        (unknown job)
//!                                    ← ERR <message>         (bad request / integrity)
//! → JOBS                             ← JOBS <n> <id> <id> ...
//! → STAT                             ← STAT <json ServeSnapshot>
//! → PING                             ← PONG
//! → SHUTDOWN                         ← BYE        (daemon exits)
//! ```
//!
//! **Batching:** every chunk of complete lines a connection has readable
//! at once is parsed as one batch and the `Q` members answered through
//! [`ShardedEngine::query_batch`] — grouped by shard, one snapshot and
//! one cache-lock amortization per shard group. A pipelining client
//! (write N requests, then read N responses) gets batch semantics
//! automatically; a lockstep client degrades to batches of one.
//!
//! **Bit-identical responses:** result ids are rendered by
//! [`format_ids`], and the serve E2E test renders in-process
//! [`QueryEngine`](crate::engine::QueryEngine) results through the same
//! function to assert byte equality of what the wire carries.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use granula_model::OpId;

use crate::engine::QueryMode;
use crate::query::Query;
use crate::shard::ShardedEngine;

/// Renders a result id list the way the wire protocol carries it:
/// comma-separated ids, `-` for the empty set. Shared by the server and
/// the bit-identical comparison in tests.
pub fn format_ids(ids: &[OpId]) -> String {
    if ids.is_empty() {
        return "-".to_string();
    }
    let mut out = String::with_capacity(ids.len() * 4);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.0.to_string());
    }
    out
}

/// One parsed request line.
enum Request {
    Query {
        mode: QueryMode,
        job_id: String,
        query: Query,
    },
    Jobs,
    Stat,
    Ping,
    Shutdown,
    /// Unparseable line, answered with `ERR` (the connection survives).
    Bad(String),
}

fn parse_line(line: &str) -> Request {
    let line = line.trim();
    let mut parts = line.splitn(4, ' ');
    match parts.next() {
        Some("Q") => {
            let mode = match parts.next() {
                Some("select") => QueryMode::Select,
                Some("findall") => QueryMode::FindAll,
                other => {
                    return Request::Bad(format!(
                        "bad mode {:?} (expected select|findall)",
                        other.unwrap_or("")
                    ))
                }
            };
            let Some(job_id) = parts.next() else {
                return Request::Bad("missing job id".into());
            };
            let Some(text) = parts.next() else {
                return Request::Bad("missing query".into());
            };
            match Query::parse(text) {
                Ok(query) => Request::Query {
                    mode,
                    job_id: job_id.to_string(),
                    query,
                },
                Err(e) => Request::Bad(format!("bad query: {e}")),
            }
        }
        Some("JOBS") => Request::Jobs,
        Some("STAT") => Request::Stat,
        Some("PING") => Request::Ping,
        Some("SHUTDOWN") => Request::Shutdown,
        other => Request::Bad(format!("unknown command {:?}", other.unwrap_or(""))),
    }
}

/// A bound, not-yet-running archive daemon.
pub struct Server {
    engine: Arc<ShardedEngine>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over
    /// `engine`.
    pub fn bind(engine: Arc<ShardedEngine>, addr: &str) -> io::Result<Server> {
        Ok(Server {
            engine,
            listener: TcpListener::bind(addr)?,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<ShardedEngine> {
        &self.engine
    }

    /// A flag that, once set, stops the accept loop at its next
    /// iteration (pair with a dummy connect to unblock `accept`; the
    /// `SHUTDOWN` command does both).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accepts connections until `SHUTDOWN` is received (or the shutdown
    /// flag is set externally and a final connection arrives). Each
    /// connection gets its own thread; request batching happens per
    /// connection.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let engine = Arc::clone(&self.engine);
            let shutdown = Arc::clone(&self.shutdown);
            std::thread::spawn(move || {
                // A connection error tears down that client only.
                let _ = handle_connection(stream, &engine, &shutdown, addr);
            });
        }
        Ok(())
    }
}

/// Reads line batches off one connection until EOF or shutdown.
fn handle_connection(
    mut stream: TcpStream,
    engine: &ShardedEngine,
    shutdown: &AtomicBool,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        pending.extend_from_slice(&chunk[..n]);
        // Split off every *complete* line received so far; a trailing
        // partial line waits for the next read. Everything complete in
        // this chunk is one batch.
        let Some(last_newline) = pending.iter().rposition(|&b| b == b'\n') else {
            continue;
        };
        let rest = pending.split_off(last_newline + 1);
        let batch_bytes = std::mem::replace(&mut pending, rest);
        let lines: Vec<String> = batch_bytes
            .split(|&b| b == b'\n')
            .filter(|l| !l.is_empty())
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect();

        let requests: Vec<Request> = lines.iter().map(|l| parse_line(l)).collect();
        let queries: Vec<(String, Query, QueryMode)> = requests
            .iter()
            .filter_map(|r| match r {
                Request::Query {
                    mode,
                    job_id,
                    query,
                } => Some((job_id.clone(), query.clone(), *mode)),
                _ => None,
            })
            .collect();
        let mut answers = engine.query_batch(&queries).into_iter();

        let mut out = String::new();
        let mut stop = false;
        for request in &requests {
            match request {
                Request::Query { job_id, .. } => {
                    match answers.next().expect("one answer per query") {
                        Ok(Some(ids)) => {
                            out.push_str(&format!("OK {} {}\n", ids.len(), format_ids(&ids)))
                        }
                        Ok(None) => out.push_str(&format!("NOJOB {job_id}\n")),
                        Err(e) => out.push_str(&format!("ERR {e}\n")),
                    }
                }
                Request::Jobs => {
                    let ids = engine.job_ids();
                    out.push_str(&format!("JOBS {}", ids.len()));
                    for id in ids {
                        out.push(' ');
                        out.push_str(&id);
                    }
                    out.push('\n');
                }
                Request::Stat => {
                    let json = serde_json::to_string(&engine.snapshot())
                        .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                    out.push_str(&format!("STAT {json}\n"));
                }
                Request::Ping => out.push_str("PONG\n"),
                Request::Shutdown => {
                    out.push_str("BYE\n");
                    stop = true;
                }
                Request::Bad(msg) => out.push_str(&format!("ERR {}\n", msg.replace('\n', " "))),
            }
        }
        stream.write_all(out.as_bytes())?;
        stream.flush()?;
        if stop {
            shutdown.store(true, Ordering::Release);
            // Unblock the accept loop so `run` observes the flag.
            let _ = TcpStream::connect(server_addr);
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ids_renders_empty_and_lists() {
        assert_eq!(format_ids(&[]), "-");
        assert_eq!(format_ids(&[OpId(0)]), "0");
        assert_eq!(format_ids(&[OpId(3), OpId(7), OpId(12)]), "3,7,12");
    }

    #[test]
    fn parse_rejects_malformed_lines_gracefully() {
        assert!(matches!(
            parse_line("Q findall j Compute"),
            Request::Query { .. }
        ));
        assert!(matches!(
            parse_line("Q sideways j Compute"),
            Request::Bad(_)
        ));
        assert!(matches!(parse_line("Q findall"), Request::Bad(_)));
        assert!(matches!(parse_line("Q findall j -bad-"), Request::Bad(_)));
        assert!(matches!(parse_line("NOPE"), Request::Bad(_)));
        assert!(matches!(parse_line("PING"), Request::Ping));
        assert!(matches!(parse_line("  SHUTDOWN  "), Request::Shutdown));
    }
}
