//! Crash-safe file writes for archive artifacts.
//!
//! Archives are durable evidence (paper §3.3): a half-written `.gar`
//! after a crash or power loss must never replace a good one. Every
//! archive write therefore goes through [`write_atomic`]:
//!
//! 1. the bytes are written to a temporary file **in the target's
//!    directory** (same filesystem, so the rename below is atomic);
//! 2. the temporary file is `fsync`ed — its contents are on disk before
//!    anything points at them;
//! 3. it is renamed over the target — POSIX rename is atomic, so readers
//!    observe either the complete old file or the complete new one,
//!    never a mix;
//! 4. the parent directory is `fsync`ed, making the rename itself
//!    durable (without this a crash can roll the directory entry back
//!    to the old file — acceptable — or, on some filesystems, to a
//!    zero-length inode — not acceptable).
//!
//! The temporary name embeds the process id and an in-process counter,
//! so concurrent writers (the parallel experiment runner archiving to a
//! shared directory) never collide on the staging file. If any step
//! fails, the temporary file is removed and the target is untouched.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes staging files of concurrent writers in one process.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically and durably replaces `path` with `bytes`
/// (write temp → fsync file → rename → fsync dir).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("not a writable file path: {}", path.display()),
            )
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));

    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        sync_dir(&dir);
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs a directory so a just-completed rename survives power loss.
/// Best-effort: some platforms/filesystems refuse to open or sync
/// directories, and an undurable-but-complete rename is still correct.
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("granula-durable-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_and_replaces() {
        let path = temp_path("replace.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn no_staging_file_left_behind() {
        let path = temp_path("staging.bin");
        write_atomic(&path, b"x").unwrap();
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("staging.bin.tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files left: {leftovers:?}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bare_filename_resolves_to_cwd() {
        // `save("store.gar")` must stage in `.` rather than fail on an
        // empty parent path.
        let name = format!("granula-durable-cwd-{}.bin", std::process::id());
        write_atomic(&name, b"cwd").unwrap();
        assert_eq!(fs::read(&name).unwrap(), b"cwd");
        let _ = fs::remove_file(&name);
    }

    #[test]
    fn failed_write_leaves_target_untouched() {
        let path = temp_path("untouched.bin");
        write_atomic(&path, b"good").unwrap();
        // Writing *through* the file as a directory must fail…
        let bad = path.join("child.bin");
        assert!(write_atomic(&bad, b"bad").is_err());
        // …and the original is intact.
        assert_eq!(fs::read(&path).unwrap(), b"good");
        let _ = fs::remove_file(&path);
    }
}
