//! Sharded, concurrently readable serving engine over archive fleets.
//!
//! The [`crate::engine::QueryEngine`] is a single-threaded library: one
//! store, one cache, `&mut self` everywhere. This module is the serving
//! shape ROADMAP item 1 asks for — the same query semantics, restructured
//! for many concurrent clients:
//!
//! * **Sharding.** Jobs are distributed over [`DEFAULT_SHARDS`] shards by
//!   an FNV-1a hash of the job id ([`shard_of`]), so unrelated jobs never
//!   contend on the same cache lock.
//! * **Lock-free reads of shard contents.** Each shard's job table is an
//!   immutable [`ShardData`] snapshot behind an [`ArcCell`]; writers
//!   publish a whole new snapshot (clone-and-swap), readers evaluate on
//!   the `Arc` they grabbed and can never observe a half-applied upsert.
//! * **Per-shard LRU result cache**, generation-tagged: a cached result
//!   is served only when its generation matches the current snapshot's,
//!   so a swap implicitly invalidates every stale entry for that shard.
//! * **Admission/eviction for resident jobs.** Fleet files are opened as
//!   [`MappedStore`]s — jobs stay as cold mmap extents until a query
//!   lands on one, which decodes and indexes it into a bounded per-shard
//!   resident LRU. Evicting a resident job costs nothing but the memory:
//!   the mmap extent is still there, and the next query re-admits it.
//! * **Batching.** [`ShardedEngine::query_batch`] groups a batch by
//!   shard and reuses one snapshot + one cache lock per shard group.
//!
//! Evaluation itself is byte-for-byte the engine's: the same planner,
//! the same `evaluate_candidates`/`scan` functions in `crate::engine`,
//! so served results are bit-identical to
//! [`QueryEngine::query`](crate::engine::QueryEngine::query) on the same
//! store — the equivalence the serve E2E test pins.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use granula_model::OpId;
use serde::{Deserialize, Serialize};

use crate::archive::JobArchive;
use crate::binfmt::BinError;
use crate::engine::{evaluate_candidates, scan, QueryMode, DEFAULT_CACHE_CAPACITY};
use crate::index::TreeIndex;
use crate::lru::LruMap;
use crate::query::Query;
use crate::store::{ArchiveStore, RunMeta};
use crate::swap::ArcCell;
use crate::zerocopy::MappedStore;

/// Default shard count. Shards bound lock contention, not capacity, so a
/// modest power of two covers typical fleets; tune via
/// [`ServeOptions::shards`].
pub const DEFAULT_SHARDS: usize = 8;

/// Default bound on decoded-and-indexed jobs resident per shard.
pub const DEFAULT_RESIDENT_CAPACITY: usize = 64;

/// Routes `job_id` to a shard: FNV-1a over the id bytes, mod `shards`.
/// Deterministic across processes, so operators can predict placement.
pub fn shard_of(job_id: &str, shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in job_id.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// Errors raised by fleet assembly and serving.
#[derive(Debug)]
pub enum ServeError {
    /// Two fleet files claim the same job id. Loading would silently
    /// let the last file win; name both so the operator can fix the
    /// fleet instead.
    DuplicateJob {
        /// The contested job id.
        job_id: String,
        /// File that introduced the job first.
        first: PathBuf,
        /// File that tried to introduce it again.
        second: PathBuf,
    },
    /// An archive file failed to open, verify, or decode.
    Bin(BinError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateJob {
                job_id,
                first,
                second,
            } => write!(
                f,
                "job id `{job_id}` appears in two fleet files: {} and {}",
                first.display(),
                second.display()
            ),
            ServeError::Bin(e) => write!(f, "archive error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BinError> for ServeError {
    fn from(e: BinError) -> Self {
        ServeError::Bin(e)
    }
}

/// A decoded, indexed job — the resident form queries evaluate against.
#[derive(Debug)]
struct ResidentJob {
    archive: JobArchive,
    index: TreeIndex,
}

impl ResidentJob {
    fn new(archive: JobArchive) -> Self {
        let index = TreeIndex::build(&archive.tree);
        ResidentJob { archive, index }
    }
}

/// Where a job's bytes live.
#[derive(Debug, Clone)]
enum JobSource {
    /// Cold extent of a mapped fleet file; decoded on first query.
    Mapped(Arc<MappedStore>),
    /// Directly owned (added via [`ShardedEngine::from_store`] or
    /// [`ShardedEngine::upsert`]); always resident.
    Owned(Arc<ResidentJob>),
}

/// One shard's immutable job table. Published behind an [`ArcCell`];
/// never mutated after publication.
#[derive(Debug)]
pub struct ShardData {
    /// Bumped on every publication; tags cache entries.
    generation: u64,
    jobs: HashMap<String, JobSource>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ResultKey {
    job_id: String,
    mode: QueryMode,
    query: String,
}

/// A memoized result, valid only for the generation it was computed on.
#[derive(Debug)]
struct CachedResult {
    generation: u64,
    result: Arc<Vec<OpId>>,
}

/// Mutable per-shard state, behind one short-held Mutex: cache probes
/// and inserts only — evaluation and decoding happen outside it.
#[derive(Debug)]
struct ShardState {
    results: LruMap<ResultKey, CachedResult>,
    /// Jobs decoded from mmap extents, bounded by the admission policy.
    /// Values are generation-tagged like results: an upsert makes the
    /// decoded copy stale.
    resident: LruMap<String, (u64, Arc<ResidentJob>)>,
}

#[derive(Debug)]
struct Shard {
    data: ArcCell<ShardData>,
    state: Mutex<ShardState>,
}

/// Serving counters, all monotone. Atomics so the query path never
/// takes a stats lock.
#[derive(Debug, Default)]
pub struct ServeStats {
    queries: AtomicU64,
    batches: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    result_evictions: AtomicU64,
    admissions: AtomicU64,
    resident_evictions: AtomicU64,
    decode_races: AtomicU64,
    swaps: AtomicU64,
}

/// A point-in-time copy of [`ServeStats`], for `STAT` responses and the
/// bench report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Queries answered (batch members count individually).
    pub queries: u64,
    /// Batches processed (a single query is a batch of one).
    pub batches: u64,
    /// Queries answered from a shard's result cache.
    pub cache_hits: u64,
    /// Queries that had to be evaluated.
    pub cache_misses: u64,
    /// Cached results evicted by the per-shard LRU bound.
    pub result_evictions: u64,
    /// Cold jobs decoded + indexed into residency.
    pub admissions: u64,
    /// Resident jobs evicted by the admission bound.
    pub resident_evictions: u64,
    /// Concurrent first touches that decoded the same job twice.
    pub decode_races: u64,
    /// Shard snapshot publications (upserts).
    pub swaps: u64,
    /// Jobs known across all shards.
    pub jobs: u64,
    /// Shard count.
    pub shards: u64,
    /// Jobs currently resident (decoded or owned).
    pub resident_jobs: u64,
}

/// Tuning knobs for [`ShardedEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Number of shards (≥1).
    pub shards: usize,
    /// Result-cache entries per shard.
    pub result_capacity: usize,
    /// Decoded jobs resident per shard before eviction.
    pub resident_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: DEFAULT_SHARDS,
            result_capacity: DEFAULT_CACHE_CAPACITY,
            resident_capacity: DEFAULT_RESIDENT_CAPACITY,
        }
    }
}

/// The concurrent serving engine: shards of immutable job tables with
/// per-shard caches. All query methods take `&self` and are safe to
/// call from many threads at once.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    options: ServeOptions,
    run: RunMeta,
    /// Mapped fleet files, kept alive for the engine's lifetime (job
    /// sources hold their own Arcs; this is the roster for STAT/fsck).
    sources: Vec<Arc<MappedStore>>,
    stats: ServeStats,
}

impl ShardedEngine {
    fn empty(options: ServeOptions, run: RunMeta) -> Self {
        let shards = (0..options.shards.max(1))
            .map(|_| Shard {
                data: ArcCell::new(Arc::new(ShardData {
                    generation: 0,
                    jobs: HashMap::new(),
                })),
                state: Mutex::new(ShardState {
                    results: LruMap::new(options.result_capacity),
                    resident: LruMap::new(options.resident_capacity),
                }),
            })
            .collect();
        ShardedEngine {
            shards,
            options,
            run,
            sources: Vec::new(),
            stats: ServeStats::default(),
        }
    }

    /// Opens a fleet of `.gar` files zero-copy and shards their jobs by
    /// id. Jobs stay cold (mmap extents) until queried. Two files
    /// claiming the same job id is a [`ServeError::DuplicateJob`] naming
    /// both — never silent last-wins.
    pub fn open_fleet(
        paths: &[impl AsRef<Path>],
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        let mut engine = Self::empty(options, RunMeta::default());
        let mut owner: HashMap<String, PathBuf> = HashMap::new();
        let mut tables: Vec<HashMap<String, JobSource>> =
            (0..engine.shards.len()).map(|_| HashMap::new()).collect();
        for path in paths {
            let mapped = Arc::new(MappedStore::open(path)?);
            if engine.run.is_empty() && !mapped.run().is_empty() {
                engine.run = mapped.run().clone();
            }
            for job_id in mapped.job_ids() {
                if let Some(first) = owner.get(job_id) {
                    return Err(ServeError::DuplicateJob {
                        job_id: job_id.to_string(),
                        first: first.clone(),
                        second: mapped.path().to_path_buf(),
                    });
                }
                owner.insert(job_id.to_string(), mapped.path().to_path_buf());
                tables[shard_of(job_id, engine.shards.len())]
                    .insert(job_id.to_string(), JobSource::Mapped(Arc::clone(&mapped)));
            }
            engine.sources.push(mapped);
        }
        for (shard, jobs) in engine.shards.iter().zip(tables) {
            shard.data.store(Arc::new(ShardData {
                generation: 1,
                jobs,
            }));
        }
        Ok(engine)
    }

    /// Wraps an in-memory store: every job becomes owned (resident).
    pub fn from_store(store: ArchiveStore, options: ServeOptions) -> Self {
        let run = store.run().clone();
        let engine = Self::empty(options, run);
        let mut tables: Vec<HashMap<String, JobSource>> =
            (0..engine.shards.len()).map(|_| HashMap::new()).collect();
        for archive in store.iter() {
            let job_id = archive.meta.job_id.clone();
            tables[shard_of(&job_id, engine.shards.len())].insert(
                job_id,
                JobSource::Owned(Arc::new(ResidentJob::new(archive.clone()))),
            );
        }
        for (shard, jobs) in engine.shards.iter().zip(tables) {
            shard.data.store(Arc::new(ShardData {
                generation: 1,
                jobs,
            }));
        }
        engine
    }

    /// The fleet's run header (from the first mapped file carrying one).
    pub fn run(&self) -> &RunMeta {
        &self.run
    }

    /// The tuning knobs this engine was built with.
    pub fn options(&self) -> ServeOptions {
        self.options
    }

    /// The mapped fleet files this engine serves (empty for
    /// [`from_store`](Self::from_store) engines).
    pub fn sources(&self) -> &[Arc<MappedStore>] {
        &self.sources
    }

    /// Job ids across all shards, sorted.
    pub fn job_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.data.load().jobs.keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Total jobs across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.data.load().jobs.len()).sum()
    }

    /// True when no shard holds a job.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluates one query. `None` for an unknown job id; results are
    /// bit-identical to [`QueryEngine::query`] on the same store.
    ///
    /// [`QueryEngine::query`]: crate::engine::QueryEngine::query
    pub fn query(
        &self,
        job_id: &str,
        query: &Query,
        mode: QueryMode,
    ) -> Result<Option<Arc<Vec<OpId>>>, BinError> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[shard_of(job_id, self.shards.len())];
        let snapshot = shard.data.load();
        self.query_on(shard, &snapshot, job_id, query, mode)
    }

    /// Evaluates a batch, grouped by shard: one snapshot grab per shard
    /// touched, cache probes amortized under one lock acquisition per
    /// request but a single generation per group.
    pub fn query_batch(
        &self,
        requests: &[(String, Query, QueryMode)],
    ) -> Vec<Result<Option<Arc<Vec<OpId>>>, BinError>> {
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, (job_id, _, _)) in requests.iter().enumerate() {
            groups[shard_of(job_id, self.shards.len())].push(i);
        }
        let mut out: Vec<Result<Option<Arc<Vec<OpId>>>, BinError>> =
            (0..requests.len()).map(|_| Ok(None)).collect();
        for (shard, group) in self.shards.iter().zip(groups) {
            if group.is_empty() {
                continue;
            }
            // One snapshot for the whole group: every answer in a batch
            // comes from a single shard generation.
            let snapshot = shard.data.load();
            for i in group {
                let (job_id, query, mode) = &requests[i];
                out[i] = self.query_on(shard, &snapshot, job_id, query, *mode);
            }
        }
        out
    }

    /// The query path proper, against a caller-chosen snapshot.
    fn query_on(
        &self,
        shard: &Shard,
        snapshot: &Arc<ShardData>,
        job_id: &str,
        query: &Query,
        mode: QueryMode,
    ) -> Result<Option<Arc<Vec<OpId>>>, BinError> {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let key = ResultKey {
            job_id: job_id.to_string(),
            mode,
            query: query.to_string(),
        };

        // Probe both caches under one short lock hold.
        let resident: Option<Arc<ResidentJob>> = {
            let mut state = shard.state.lock().expect("shard state poisoned");
            if let Some(hit) = state.results.get(&key) {
                if hit.generation == snapshot.generation {
                    self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(Arc::clone(&hit.result)));
                }
            }
            state
                .resident
                .get(job_id)
                .filter(|(gen, _)| *gen == snapshot.generation)
                .map(|(_, job)| Arc::clone(job))
        };
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Resolve the job to a resident form — decoding outside the lock.
        let job: Arc<ResidentJob> = match snapshot.jobs.get(job_id) {
            None => return Ok(None),
            Some(JobSource::Owned(job)) => Arc::clone(job),
            Some(JobSource::Mapped(mapped)) => match resident {
                Some(job) => job,
                None => {
                    let decoded = Arc::new(ResidentJob::new(mapped.decode_job(job_id)?));
                    let mut state = shard.state.lock().expect("shard state poisoned");
                    // Another thread may have admitted the same job while
                    // we decoded; keep the first copy so concurrent
                    // queries share one index.
                    match state
                        .resident
                        .get(job_id)
                        .filter(|(gen, _)| *gen == snapshot.generation)
                        .map(|(_, job)| Arc::clone(job))
                    {
                        Some(raced) => {
                            self.stats.decode_races.fetch_add(1, Ordering::Relaxed);
                            raced
                        }
                        None => {
                            self.stats.admissions.fetch_add(1, Ordering::Relaxed);
                            if state.resident.insert(
                                job_id.to_string(),
                                (snapshot.generation, Arc::clone(&decoded)),
                            ) {
                                self.stats
                                    .resident_evictions
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            decoded
                        }
                    }
                }
            },
        };

        // Evaluate outside any lock — same planner + evaluators as the
        // in-process engine, so results are bit-identical.
        let plan = job.index.plan_for(query, mode);
        let result = Arc::new(match job.index.candidates(&plan) {
            Some(candidates) => evaluate_candidates(&job.archive.tree, query, mode, &candidates),
            None => scan(&job.archive.tree, query, mode),
        });

        let mut state = shard.state.lock().expect("shard state poisoned");
        if state.results.insert(
            key,
            CachedResult {
                generation: snapshot.generation,
                result: Arc::clone(&result),
            },
        ) {
            self.stats.result_evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Some(result))
    }

    /// Adds or replaces a job by publishing a new snapshot of its shard
    /// (clone-and-swap). Readers mid-query keep the generation they
    /// grabbed; the swap implicitly invalidates that shard's stale cache
    /// entries (generation tags no longer match).
    pub fn upsert(&self, archive: JobArchive) {
        let job_id = archive.meta.job_id.clone();
        let shard = &self.shards[shard_of(&job_id, self.shards.len())];
        let resident = Arc::new(ResidentJob::new(archive));
        // Serialize writers on the shard's state lock so concurrent
        // upserts can't interleave their clone-and-swap.
        let mut state = shard.state.lock().expect("shard state poisoned");
        let current = shard.data.load();
        let mut jobs = current.jobs.clone();
        jobs.insert(job_id.clone(), JobSource::Owned(resident));
        shard.data.store(Arc::new(ShardData {
            generation: current.generation + 1,
            jobs,
        }));
        self.stats.swaps.fetch_add(1, Ordering::Relaxed);
        // The generation tags already make stale entries unservable;
        // drop them eagerly so they don't occupy LRU slots.
        state.results.retain(|k, _| k.job_id != job_id);
        state.resident.remove(&job_id);
    }

    /// Serving counters plus fleet shape, as one coherent copy.
    pub fn snapshot(&self) -> ServeSnapshot {
        let resident_jobs = self
            .shards
            .iter()
            .map(|s| {
                let state = s.state.lock().expect("shard state poisoned");
                let decoded = state.resident.len() as u64;
                let owned = s
                    .data
                    .load()
                    .jobs
                    .values()
                    .filter(|src| matches!(src, JobSource::Owned(_)))
                    .count() as u64;
                decoded + owned
            })
            .sum();
        ServeSnapshot {
            queries: self.stats.queries.load(Ordering::Relaxed),
            batches: self.stats.batches.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.stats.cache_misses.load(Ordering::Relaxed),
            result_evictions: self.stats.result_evictions.load(Ordering::Relaxed),
            admissions: self.stats.admissions.load(Ordering::Relaxed),
            resident_evictions: self.stats.resident_evictions.load(Ordering::Relaxed),
            decode_races: self.stats.decode_races.load(Ordering::Relaxed),
            swaps: self.stats.swaps.load(Ordering::Relaxed),
            jobs: self.len() as u64,
            shards: self.shards.len() as u64,
            resident_jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use crate::engine::QueryEngine;
    use granula_model::{Actor, Mission, OperationTree};

    fn archive(job_id: &str, supersteps: i64) -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        for s in 0..supersteps {
            let ss = t
                .add_child(
                    job,
                    Actor::new("Job", "0"),
                    Mission::new("Superstep", s.to_string()),
                )
                .unwrap();
            for w in 0..2 {
                t.add_child(
                    ss,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            }
        }
        JobArchive::new(
            JobMeta {
                job_id: job_id.into(),
                platform: "Giraph".into(),
                algorithm: "BFS".into(),
                dataset: "d".into(),
                nodes: 2,
                model: "m".into(),
            },
            t,
        )
    }

    fn store_with(jobs: &[(&str, i64)]) -> ArchiveStore {
        let mut store = ArchiveStore::new();
        for (id, n) in jobs {
            store.add(archive(id, *n)).unwrap();
        }
        store
    }

    #[test]
    fn shard_routing_is_deterministic_and_spread() {
        for id in ["a", "b", "job-42", ""] {
            assert_eq!(shard_of(id, 8), shard_of(id, 8));
            assert!(shard_of(id, 8) < 8);
            assert_eq!(shard_of(id, 1), 0);
        }
        // Many ids must not all land on one shard.
        let hits: std::collections::HashSet<usize> =
            (0..64).map(|i| shard_of(&format!("job-{i}"), 8)).collect();
        assert!(hits.len() >= 4, "FNV spreads 64 ids over ≥4 of 8 shards");
    }

    #[test]
    fn sharded_results_match_the_engine_bit_for_bit() {
        let store = store_with(&[("a", 40), ("b", 7), ("c", 100)]);
        let mut engine = QueryEngine::from_store(store.clone());
        let sharded = ShardedEngine::from_store(store, ServeOptions::default());
        for (text, mode) in [
            ("Compute", QueryMode::FindAll),
            ("GiraphJob/Superstep/Compute", QueryMode::Select),
            ("Superstep/Compute@Worker-1", QueryMode::FindAll),
            ("*-1", QueryMode::FindAll),
        ] {
            let q = Query::parse(text).unwrap();
            for job in ["a", "b", "c"] {
                let want = engine.query(job, &q, mode).unwrap();
                let got = sharded.query(job, &q, mode).unwrap().unwrap();
                assert_eq!(got, want, "job {job}, query `{text}`");
            }
        }
        assert!(sharded
            .query("nope", &Query::parse("X").unwrap(), QueryMode::FindAll)
            .unwrap()
            .is_none());
    }

    #[test]
    fn batch_matches_individual_queries() {
        let store = store_with(&[("a", 10), ("b", 10)]);
        let sharded = ShardedEngine::from_store(store, ServeOptions::default());
        let q = Query::parse("Compute").unwrap();
        let batch: Vec<(String, Query, QueryMode)> = ["a", "b", "a", "missing"]
            .iter()
            .map(|j| (j.to_string(), q.clone(), QueryMode::FindAll))
            .collect();
        let got = sharded.query_batch(&batch);
        assert_eq!(got.len(), 4);
        for (i, (job, q, mode)) in batch.iter().enumerate() {
            let single = sharded.query(job, q, *mode).unwrap();
            assert_eq!(*got[i].as_ref().unwrap(), single, "batch member {i}");
        }
        assert!(got[3].as_ref().unwrap().is_none(), "unknown job is None");
    }

    #[test]
    fn upsert_swaps_generation_and_invalidates_results() {
        let store = store_with(&[("a", 3)]);
        let sharded = ShardedEngine::from_store(store, ServeOptions::default());
        let q = Query::parse("Compute").unwrap();
        let before = sharded.query("a", &q, QueryMode::FindAll).unwrap().unwrap();
        assert_eq!(before.len(), 6);
        sharded.upsert(archive("a", 5));
        let after = sharded.query("a", &q, QueryMode::FindAll).unwrap().unwrap();
        assert_eq!(after.len(), 10, "post-swap queries see the new job");
        let snap = sharded.snapshot();
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.cache_hits, 0, "the stale memo must not serve");
    }

    #[test]
    fn repeated_queries_hit_the_per_shard_cache() {
        let store = store_with(&[("a", 4)]);
        let sharded = ShardedEngine::from_store(store, ServeOptions::default());
        let q = Query::parse("Compute").unwrap();
        let x = sharded.query("a", &q, QueryMode::FindAll).unwrap().unwrap();
        let y = sharded.query("a", &q, QueryMode::FindAll).unwrap().unwrap();
        assert!(Arc::ptr_eq(&x, &y), "second answer is the memo");
        let snap = sharded.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    }

    #[test]
    fn fleet_admission_is_lazy_and_bounded() {
        let dir = std::env::temp_dir().join(format!("granula-fleet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ids: Vec<String> = (0..6).map(|i| format!("job-{i}")).collect();
        let mut paths = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let store = store_with(&[(id, 3)]);
            let path = dir.join(format!("f{i}.gar"));
            store.save(&path).unwrap();
            paths.push(path);
        }
        let opts = ServeOptions {
            shards: 1,
            resident_capacity: 2,
            ..ServeOptions::default()
        };
        let sharded = ShardedEngine::open_fleet(&paths, opts).unwrap();
        assert_eq!(sharded.len(), 6);
        assert_eq!(sharded.snapshot().resident_jobs, 0, "all jobs start cold");

        let q = Query::parse("Compute").unwrap();
        for id in &ids {
            assert_eq!(
                sharded
                    .query(id, &q, QueryMode::FindAll)
                    .unwrap()
                    .unwrap()
                    .len(),
                6
            );
        }
        let snap = sharded.snapshot();
        assert_eq!(snap.admissions, 6, "each job decoded once");
        assert_eq!(snap.resident_jobs, 2, "residency bounded by capacity");
        assert_eq!(snap.resident_evictions, 4);
        // Decode counters on the sources agree: nothing decoded twice.
        let decoded: u64 = sharded.sources().iter().map(|s| s.decoded_jobs()).sum();
        assert_eq!(decoded, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_job_across_fleet_files_names_both_paths() {
        let dir = std::env::temp_dir().join(format!("granula-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("one.gar");
        let p2 = dir.join("two.gar");
        store_with(&[("shared", 2), ("only-one", 2)])
            .save(&p1)
            .unwrap();
        store_with(&[("shared", 3)]).save(&p2).unwrap();
        match ShardedEngine::open_fleet(&[&p1, &p2], ServeOptions::default()) {
            Err(ServeError::DuplicateJob {
                job_id,
                first,
                second,
            }) => {
                assert_eq!(job_id, "shared");
                assert_eq!(first, p1);
                assert_eq!(second, p2);
                let msg = ServeError::DuplicateJob {
                    job_id,
                    first,
                    second,
                }
                .to_string();
                assert!(msg.contains("one.gar") && msg.contains("two.gar"));
            }
            other => panic!("expected DuplicateJob, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
