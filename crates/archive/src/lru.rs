//! A bounded least-recently-used map with O(log n) touch and eviction.
//!
//! The PR-5 `QueryCache` evicted by scanning every entry for the minimum
//! use tick — O(capacity) per insert, plus a redundant `contains_key`
//! hash lookup. Tolerable for one global cache of a few hundred entries,
//! but the serving layer keeps one result cache *per shard* and a
//! resident-job cache besides, and inserts on every cache miss; the
//! eviction scan sits directly on the miss path of every shard. This map
//! keeps the same tick-stamping but pairs the entry map with an ordered
//! tick index, so finding the LRU victim is a `BTreeMap::pop_first`
//! instead of a full scan.
//!
//! Invariant: `entries` and `order` describe the same set — every entry
//! holds the tick under which `order` lists its key, and ticks are unique
//! (a single monotone counter stamps every touch).

use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Bounded LRU map. Capacity is clamped to at least 1.
#[derive(Debug)]
pub struct LruMap<K, V> {
    /// Key → (use tick, value).
    entries: HashMap<K, (u64, V)>,
    /// Use tick → key; the first entry is the least recently used.
    order: BTreeMap<u64, K>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// An empty map evicting beyond `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruMap {
            entries: HashMap::new(),
            order: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((t, v)) => {
                let old = std::mem::replace(t, tick);
                let k = self.order.remove(&old).expect("order tracks every entry");
                self.order.insert(tick, k);
                Some(v)
            }
            None => None,
        }
    }

    /// Looks up `key` without disturbing the LRU order.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.entries.get(key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key`, marking it most recently used.
    /// Returns `true` when a *different* entry was evicted to stay within
    /// capacity — replacing an existing key never evicts.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (t, v) = e.get_mut();
                let old = std::mem::replace(t, tick);
                *v = value;
                self.order.remove(&old).expect("order tracks every entry");
                self.order.insert(tick, key);
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((tick, value));
                self.order.insert(tick, key);
                if self.entries.len() > self.capacity {
                    let (_, victim) = self
                        .order
                        .pop_first()
                        .expect("over-capacity map is nonempty");
                    self.entries
                        .remove(&victim)
                        .expect("order tracks every entry");
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let (tick, value) = self.entries.remove(key)?;
        self.order.remove(&tick).expect("order tracks every entry");
        Some(value)
    }

    /// Keeps only the entries for which `keep` returns true; returns how
    /// many were dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let before = self.entries.len();
        let mut dropped_ticks = Vec::new();
        self.entries.retain(|k, (t, v)| {
            let kept = keep(k, v);
            if !kept {
                dropped_ticks.push(*t);
            }
            kept
        });
        for t in dropped_ticks {
            self.order.remove(&t).expect("order tracks every entry");
        }
        before - self.entries.len()
    }

    /// Iterates over `(key, value)` in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, (_, v))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut m = LruMap::new(2);
        assert!(!m.insert("a", 1));
        assert!(!m.insert("b", 2));
        // Touch `a` so `b` is the victim.
        assert_eq!(m.get(&"a"), Some(&1));
        assert!(m.insert("c", 3), "third insert must evict");
        assert_eq!(m.len(), 2);
        assert_eq!(m.peek(&"b"), None);
        assert_eq!(m.peek(&"a"), Some(&1));
        assert_eq!(m.peek(&"c"), Some(&3));
    }

    #[test]
    fn replacing_a_key_never_evicts() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert!(!m.insert("a", 10), "replacement stays within capacity");
        assert_eq!(m.len(), 2);
        assert_eq!(m.peek(&"a"), Some(&10));
        // The replacement also refreshed `a`: `b` is now the victim.
        assert!(m.insert("c", 3));
        assert_eq!(m.peek(&"b"), None);
    }

    #[test]
    fn remove_and_retain_keep_order_consistent() {
        let mut m = LruMap::new(8);
        for i in 0..6 {
            m.insert(i, i * 10);
        }
        assert_eq!(m.remove(&3), Some(30));
        assert_eq!(m.retain(|k, _| k % 2 == 0), 2); // drops 1, 5
        assert_eq!(m.len(), 3);
        // The survivors still evict in LRU order once over capacity.
        let mut small = LruMap::new(3);
        for (k, v) in m.iter() {
            small.insert(*k, *v);
        }
        small.get(&0);
        small.insert(9, 90);
        assert_eq!(small.peek(&0), Some(&0), "recently touched key survives");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut m = LruMap::new(0);
        m.insert("a", 1);
        assert_eq!(m.len(), 1);
        assert!(m.insert("b", 2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.peek(&"b"), Some(&2));
    }

    #[test]
    fn get_miss_does_not_grow_or_reorder() {
        let mut m = LruMap::new(2);
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get(&"zzz"), None);
        assert_eq!(m.len(), 2);
        // `a` is still the LRU victim despite the missed lookup.
        m.insert("c", 3);
        assert_eq!(m.peek(&"a"), None);
    }
}
