//! A collection of archives, for cross-job and cross-platform comparison.
//!
//! Identical domain-level operations "allow us to derive common performance
//! metrics across all platforms, enabling cross-platform performance
//! comparison and benchmarking" (paper §4.1). The store groups archives and
//! produces comparison tables over any mission kind.

use std::fmt;

use serde::{from_field, DeError, Deserialize, Serialize, Value};

use crate::archive::JobArchive;

/// Metadata identifying one archived run inside a history sequence.
///
/// A store written by a benchmark or CI run carries this header so a
/// directory of `.gar` files can be ordered into a time series without
/// relying on filenames or filesystem timestamps. An empty `run_id`
/// marks a store from before the header existed (binary format v1) or
/// one that never claimed a place in a history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMeta {
    /// Stable identifier of the run (e.g. `r4`, a CI build number).
    pub run_id: String,
    /// Wall-clock timestamp of the run, microseconds since the epoch.
    /// Zero when unknown; ordering falls back to `run_id`.
    pub timestamp_us: u64,
    /// Free-form description (branch, commit, machine).
    pub label: String,
}

impl RunMeta {
    /// Creates a fully specified run header.
    pub fn new(run_id: impl Into<String>, timestamp_us: u64, label: impl Into<String>) -> Self {
        RunMeta {
            run_id: run_id.into(),
            timestamp_us,
            label: label.into(),
        }
    }

    /// True when no field was ever set (v1 stores decode to this).
    pub fn is_empty(&self) -> bool {
        self.run_id.is_empty() && self.timestamp_us == 0 && self.label.is_empty()
    }

    /// History ordering: by timestamp, then run id as a tie-break.
    pub fn sort_key(&self) -> (u64, &str) {
        (self.timestamp_us, &self.run_id)
    }
}

/// Error returned by [`ArchiveStore::add`] when the store already holds
/// an archive with the same job id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateJobId(pub String);

impl fmt::Display for DuplicateJobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "archive store already holds job id `{}`", self.0)
    }
}

impl std::error::Error for DuplicateJobId {}

/// One row of a cross-archive comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Job id of the archive the row describes.
    pub job_id: String,
    /// Platform name.
    pub platform: String,
    /// Total job runtime in microseconds.
    pub total_us: u64,
    /// Aggregated duration of the compared mission kind, microseconds.
    pub mission_us: u64,
    /// `mission_us / total_us`.
    pub fraction: f64,
}

/// In-memory collection of performance archives.
#[derive(Debug, Clone, Default)]
pub struct ArchiveStore {
    archives: Vec<JobArchive>,
    /// Run header stamped when the store is one entry of a history.
    run: RunMeta,
}

// Hand-rolled serde impls rather than derives: stores written before the
// run header existed (binary format v1) have no `run` key, and the derive
// would reject them. Serialization keeps `archives` first so v2 payloads
// are a pure field extension of v1.
impl Serialize for ArchiveStore {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("archives".to_string(), self.archives.to_value()),
            ("run".to_string(), self.run.to_value()),
        ])
    }
}

impl Deserialize for ArchiveStore {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::expected("ArchiveStore object"))?;
        let archives = from_field(pairs, "archives")?;
        let run = match v.get("run") {
            Some(rv) => RunMeta::from_value(rv)?,
            // v1 store: no header was ever written.
            None => RunMeta::default(),
        };
        Ok(ArchiveStore { archives, run })
    }
}

impl ArchiveStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The run header, empty unless [`set_run`](Self::set_run) stamped it.
    pub fn run(&self) -> &RunMeta {
        &self.run
    }

    /// Stamps the run header carried by the serialized store.
    pub fn set_run(&mut self, run: RunMeta) {
        self.run = run;
    }

    /// Builder-style [`set_run`](Self::set_run).
    pub fn with_run(mut self, run: RunMeta) -> Self {
        self.run = run;
        self
    }

    /// Adds an archive. Job ids are the store's lookup key
    /// ([`get`](Self::get), [`regression`](Self::regression)), so a
    /// duplicate id is rejected rather than silently shadowed; use
    /// [`upsert`](Self::upsert) to replace an existing archive.
    pub fn add(&mut self, archive: JobArchive) -> Result<(), DuplicateJobId> {
        if self.get(&archive.meta.job_id).is_some() {
            return Err(DuplicateJobId(archive.meta.job_id.clone()));
        }
        self.archives.push(archive);
        Ok(())
    }

    /// Adds an archive, replacing (and returning) any archive already
    /// stored under the same job id.
    pub fn upsert(&mut self, archive: JobArchive) -> Option<JobArchive> {
        match self
            .archives
            .iter_mut()
            .find(|a| a.meta.job_id == archive.meta.job_id)
        {
            Some(slot) => Some(std::mem::replace(slot, archive)),
            None => {
                self.archives.push(archive);
                None
            }
        }
    }

    /// Number of archives held.
    pub fn len(&self) -> usize {
        self.archives.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.archives.is_empty()
    }

    /// Iterates over all archives.
    pub fn iter(&self) -> impl Iterator<Item = &JobArchive> {
        self.archives.iter()
    }

    /// Finds an archive by job id.
    pub fn get(&self, job_id: &str) -> Option<&JobArchive> {
        self.archives.iter().find(|a| a.meta.job_id == job_id)
    }

    /// Archives for one platform.
    pub fn by_platform<'a>(&'a self, platform: &'a str) -> impl Iterator<Item = &'a JobArchive> {
        self.archives
            .iter()
            .filter(move |a| a.meta.platform == platform)
    }

    /// Archives for one `(algorithm, dataset)` workload across platforms.
    pub fn by_workload<'a>(
        &'a self,
        algorithm: &'a str,
        dataset: &'a str,
    ) -> impl Iterator<Item = &'a JobArchive> {
        self.archives
            .iter()
            .filter(move |a| a.meta.algorithm == algorithm && a.meta.dataset == dataset)
    }

    /// Builds a comparison table: for every archive, the total runtime and
    /// the aggregated duration of `mission_kind`. Archives without a total
    /// runtime are skipped.
    pub fn compare(&self, mission_kind: &str) -> Vec<ComparisonRow> {
        self.archives
            .iter()
            .filter_map(|a| {
                let total = a.total_runtime_us()?;
                if total == 0 {
                    return None;
                }
                let mission = a.total_duration_of_us(mission_kind);
                Some(ComparisonRow {
                    job_id: a.meta.job_id.clone(),
                    platform: a.meta.platform.clone(),
                    total_us: total,
                    mission_us: mission,
                    fraction: mission as f64 / total as f64,
                })
            })
            .collect()
    }

    /// Relative change of total runtime between a baseline and a candidate
    /// archive: `(candidate - baseline) / baseline`. Positive values mean the
    /// candidate got slower — the basis of performance-regression testing
    /// (paper §6, future work).
    pub fn regression(&self, baseline_id: &str, candidate_id: &str) -> Option<f64> {
        let base = self.get(baseline_id)?.total_runtime_us()? as f64;
        let cand = self.get(candidate_id)?.total_runtime_us()? as f64;
        if base <= 0.0 {
            return None;
        }
        Some((cand - base) / base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn archive(job_id: &str, platform: &str, total_us: i64, load_us: i64) -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(total_us)))
            .unwrap();
        let l = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        t.set_info(l, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(l, Info::raw(names::END_TIME, InfoValue::Int(load_us)))
            .unwrap();
        JobArchive::new(
            JobMeta {
                job_id: job_id.into(),
                platform: platform.into(),
                algorithm: "BFS".into(),
                dataset: "d".into(),
                nodes: 8,
                model: "m".into(),
            },
            t,
        )
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.add(archive("g0", "Giraph", 80_000_000, 35_000_000))
            .unwrap();
        s.add(archive("p0", "PowerGraph", 400_000_000, 380_000_000))
            .unwrap();
        s
    }

    #[test]
    fn compare_builds_fraction_rows() {
        let rows = store().compare("LoadGraph");
        assert_eq!(rows.len(), 2);
        let g = rows.iter().find(|r| r.platform == "Giraph").unwrap();
        assert!((g.fraction - 0.4375).abs() < 1e-9);
        let p = rows.iter().find(|r| r.platform == "PowerGraph").unwrap();
        assert!((p.fraction - 0.95).abs() < 1e-9);
    }

    #[test]
    fn lookup_by_platform_and_workload() {
        let s = store();
        assert_eq!(s.by_platform("Giraph").count(), 1);
        assert_eq!(s.by_workload("BFS", "d").count(), 2);
        assert_eq!(s.by_workload("PageRank", "d").count(), 0);
    }

    #[test]
    fn duplicate_job_id_is_rejected() {
        let mut s = store();
        assert_eq!(
            s.add(archive("g0", "Giraph", 1, 1)),
            Err(DuplicateJobId("g0".into()))
        );
        assert_eq!(s.len(), 2);
        // The original archive is untouched by the failed add.
        assert_eq!(s.get("g0").unwrap().total_runtime_us(), Some(80_000_000));
    }

    #[test]
    fn upsert_replaces_same_job_id() {
        let mut s = store();
        let replaced = s.upsert(archive("g0", "Giraph", 90_000_000, 35_000_000));
        assert_eq!(replaced.unwrap().total_runtime_us(), Some(80_000_000));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("g0").unwrap().total_runtime_us(), Some(90_000_000));
        // Upserting a fresh id behaves like add.
        assert!(s.upsert(archive("x0", "Giraph", 1, 1)).is_none());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn regression_is_relative_slowdown() {
        let mut s = store();
        s.add(archive("g1", "Giraph", 88_000_000, 35_000_000))
            .unwrap();
        let r = s.regression("g0", "g1").unwrap();
        assert!((r - 0.1).abs() < 1e-9);
        // Speedup is negative.
        assert!(s.regression("g1", "g0").unwrap() < 0.0);
    }

    #[test]
    fn regression_unknown_job_is_none() {
        assert_eq!(store().regression("g0", "nope"), None);
    }

    #[test]
    fn run_header_roundtrips_and_orders() {
        let mut s = store();
        assert!(s.run().is_empty());
        s.set_run(RunMeta::new("r7", 1_700_000_000_000_000, "nightly"));
        let v = s.to_value();
        let back = ArchiveStore::from_value(&v).unwrap();
        assert_eq!(back.run(), s.run());
        assert_eq!(back.len(), s.len());

        let earlier = RunMeta::new("r9", 1_600_000_000_000_000, "x");
        assert!(earlier.sort_key() < s.run().sort_key());
        // Equal timestamps fall back to the run id.
        let tie = RunMeta::new("r8", s.run().timestamp_us, "y");
        assert!(s.run().sort_key() < tie.sort_key());
    }

    #[test]
    fn store_without_run_key_decodes_to_default_header() {
        // A v1 payload: only the `archives` field exists.
        let s = store();
        let Value::Object(pairs) = s.to_value() else {
            panic!("store serializes to an object");
        };
        let v1 = Value::Object(pairs.into_iter().filter(|(k, _)| k == "archives").collect());
        let back = ArchiveStore::from_value(&v1).unwrap();
        assert!(back.run().is_empty());
        assert_eq!(back.len(), 2);
    }
}
