//! Versioned, self-describing **binary** archive format (`.gar`).
//!
//! The JSON envelope of [`crate::format`] is the sharing format; this module
//! is the *serving* format: fig5/fig6-scale stores are archived once and
//! re-queried many times without re-simulation, so loading them must not pay
//! JSON tokenization costs. The encoding goes through the serde shim's
//! self-describing [`Value`] tree, so every type that serializes to JSON
//! serializes to the binary format with identical semantics — and float
//! info values survive bit-for-bit ([`f64::to_bits`] is stored verbatim).
//!
//! ## Layout (format v3)
//!
//! ```text
//! +----------------+---------------------+
//! | magic  b"GRNA" | version  u32 LE (=3)|
//! +----------------+---------------------+
//! | RUN frame      (run header)          |
//! | JOB frame      (one per archive)     |
//! | ...                                  |
//! | TRAILER frame  (per-job offset table)|
//! +--------------------------------------+
//! | footer: trailer offset u64 LE        |
//! |         + CRC32C(offset) u32 LE      |
//! |         + end magic b"GREN"          |
//! +--------------------------------------+
//! ```
//!
//! Every frame is independently checksummed:
//!
//! ```text
//! frame := kind u8 | payload_len u32 LE | payload | crc32c u32 LE
//! ```
//!
//! where the CRC32C ([`crate::crc`]) covers `kind + payload_len + payload`.
//! A bit flip, torn write, or truncation therefore damages *frames*, not
//! the file: the salvage layer ([`crate::salvage`]) recovers every job
//! whose frame still verifies, locating frames either by a sequential
//! walk or through the trailer's offset table (reachable from the fixed
//! footer even when mid-file frames are mangled — and the seed of the
//! future mmap'd zero-copy read path, which needs per-job extents without
//! a full deserialize).
//!
//! Version history: v1 stores carry only the archive list; v2 adds the
//! [`crate::store::RunMeta`] run header (both as one raw tagged value after
//! the 8-byte header, no frames, no checksums); v3 adds the framing above.
//! Readers accept all three — a v1 payload simply decodes with an empty
//! header, and v1/v2 files skip checksum verification (they carry none).
//!
//! Tagged values (all lengths/counts are LEB128 varints):
//!
//! | tag  | variant | body                                        |
//! |------|---------|---------------------------------------------|
//! | 0x00 | Null    | —                                           |
//! | 0x01 | Bool    | 1 byte (0/1)                                |
//! | 0x02 | Int     | zig-zag varint                              |
//! | 0x03 | UInt    | varint                                      |
//! | 0x04 | Float   | 8 bytes, `f64::to_bits` LE                  |
//! | 0x05 | Str     | varint byte length + UTF-8 bytes            |
//! | 0x06 | Array   | varint count + that many values             |
//! | 0x07 | Object  | varint count + that many (Str-body, value)  |
//!
//! The decoder treats every length, count, and tag as **hostile**: counts
//! are capped by the bytes actually remaining (a forged 4 GB header can
//! never drive a 4 GB allocation), nesting depth is capped by
//! [`MAX_VALUE_DEPTH`], and every malformed shape is a structured
//! [`BinError`] — never a panic, hang, or abort.
//!
//! Encoding is a pure function of the value tree (the shim sorts map keys,
//! struct fields encode in declaration order), so equal stores produce
//! byte-identical files — the property the differential test suite pins.

use std::fmt;
use std::fs;
use std::path::Path;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::archive::JobArchive;
use crate::crc::crc32c;
use crate::durable;
use crate::store::{ArchiveStore, RunMeta};

/// File magic: "GRanula Native Archive".
pub const MAGIC: [u8; 4] = *b"GRNA";

/// End-of-file magic closing the footer.
pub const END_MAGIC: [u8; 4] = *b"GREN";

/// Current binary format version (v3: checksummed frames + trailer).
pub const BIN_FORMAT_VERSION: u32 = 3;

/// Maximum nesting depth of a decoded value tree. Archives serialize
/// flat (operations are arrays indexed by id, not recursive structures),
/// so real payloads stay under ~16 levels; the cap only exists to turn a
/// forged `[[[[…` chain into an error instead of a stack overflow.
pub const MAX_VALUE_DEPTH: usize = 64;

const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_ARRAY: u8 = 0x06;
const TAG_OBJECT: u8 = 0x07;

/// Frame kinds of format v3.
pub const FRAME_RUN: u8 = 0x01;
/// One serialized [`JobArchive`].
pub const FRAME_JOB: u8 = 0x02;
/// The per-job offset table closing the frame sequence.
pub const FRAME_TRAILER: u8 = 0x03;

/// Frame header bytes (`kind u8` + `payload_len u32`).
pub const FRAME_HEADER_LEN: usize = 5;
/// Bytes a frame adds around its payload (header + trailing CRC).
pub const FRAME_OVERHEAD: usize = FRAME_HEADER_LEN + 4;
/// Footer bytes (`trailer offset u64` + CRC + end magic).
pub const FOOTER_LEN: usize = 16;
/// File header bytes (magic + version).
pub const HEADER_LEN: usize = 8;

/// Errors raised while encoding/decoding binary archives.
#[derive(Debug)]
pub enum BinError {
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The payload ended before a complete value was read.
    Truncated,
    /// Bytes remain after the payload value (v1/v2) or footer (v3).
    TrailingBytes(usize),
    /// An unknown value tag was encountered.
    BadTag(u8),
    /// A string body was not valid UTF-8.
    BadUtf8,
    /// A value nested deeper than [`MAX_VALUE_DEPTH`].
    TooDeep(usize),
    /// A frame's CRC32C did not match its bytes.
    FrameChecksum {
        /// Byte offset of the frame within the file.
        offset: usize,
    },
    /// A frame header carried an unknown or out-of-order kind byte.
    BadFrameKind {
        /// Byte offset of the frame within the file.
        offset: usize,
        /// The kind byte found.
        kind: u8,
    },
    /// The frame sequence, trailer, or footer is structurally invalid
    /// (mismatched offset table, bad footer, duplicate job id, …).
    Malformed(String),
    /// The decoded value tree did not have the expected shape.
    De(DeError),
    /// Underlying filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic(m) => write!(f, "bad archive magic {m:?} (expected {MAGIC:?})"),
            BinError::UnsupportedVersion(v) => write!(
                f,
                "binary archive version {v} is newer than supported {BIN_FORMAT_VERSION}"
            ),
            BinError::Truncated => write!(f, "binary archive truncated"),
            BinError::TrailingBytes(n) => write!(f, "{n} trailing bytes after archive payload"),
            BinError::BadTag(t) => write!(f, "unknown value tag 0x{t:02x}"),
            BinError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            BinError::TooDeep(d) => {
                write!(f, "value nesting exceeds depth limit {d}")
            }
            BinError::FrameChecksum { offset } => {
                write!(f, "frame at byte {offset} failed its CRC32C check")
            }
            BinError::BadFrameKind { offset, kind } => {
                write!(f, "unexpected frame kind 0x{kind:02x} at byte {offset}")
            }
            BinError::Malformed(what) => write!(f, "malformed archive: {what}"),
            BinError::De(e) => write!(f, "archive shape error: {e}"),
            BinError::Io(e) => write!(f, "archive I/O error: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<DeError> for BinError {
    fn from(e: DeError) -> Self {
        BinError::De(e)
    }
}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

// ------------------------------------------------------------- primitives

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, BinError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(BinError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(BinError::Truncated);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------- values

/// Appends the tagged encoding of a value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*i));
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            put_varint(out, *u);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(pairs) => {
            out.push(TAG_OBJECT);
            put_varint(out, pairs.len() as u64);
            for (k, val) in pairs {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

pub(crate) fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, BinError> {
    // The length prefix is untrusted: validate the slice *before* any
    // allocation, so a forged 4 GB length is a `Truncated` error, not an
    // allocation attempt.
    let len = get_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len).ok_or(BinError::Truncated)?;
    let slice = bytes.get(*pos..end).ok_or(BinError::Truncated)?;
    *pos = end;
    String::from_utf8(slice.to_vec()).map_err(|_| BinError::BadUtf8)
}

/// Decodes one tagged value starting at `pos`, advancing it.
///
/// Hardened against hostile input: element counts are capped by the
/// bytes remaining (each element costs at least one byte, each object
/// pair at least two), and nesting past [`MAX_VALUE_DEPTH`] is a
/// [`BinError::TooDeep`] rather than a stack overflow.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, BinError> {
    decode_value_at(bytes, pos, 0)
}

fn decode_value_at(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, BinError> {
    if depth >= MAX_VALUE_DEPTH {
        return Err(BinError::TooDeep(MAX_VALUE_DEPTH));
    }
    let tag = *bytes.get(*pos).ok_or(BinError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            let b = *bytes.get(*pos).ok_or(BinError::Truncated)?;
            *pos += 1;
            Ok(Value::Bool(b != 0))
        }
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(bytes, pos)?))),
        TAG_UINT => Ok(Value::UInt(get_varint(bytes, pos)?)),
        TAG_FLOAT => {
            let end = pos.checked_add(8).ok_or(BinError::Truncated)?;
            let slice = bytes.get(*pos..end).ok_or(BinError::Truncated)?;
            *pos = end;
            let bits = u64::from_le_bytes(slice.try_into().expect("8-byte slice"));
            Ok(Value::Float(f64::from_bits(bits)))
        }
        TAG_STR => Ok(Value::Str(get_str(bytes, pos)?)),
        TAG_ARRAY => {
            let n = get_varint(bytes, pos)? as usize;
            // Bound preallocation by what the input could possibly hold
            // (every element is at least one tag byte), so a forged
            // count can never drive an unbounded allocation.
            let remaining = bytes.len().saturating_sub(*pos);
            if n > remaining {
                return Err(BinError::Truncated);
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value_at(bytes, pos, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let n = get_varint(bytes, pos)? as usize;
            // Every pair costs at least two bytes (key length + value tag).
            let remaining = bytes.len().saturating_sub(*pos);
            if n > remaining / 2 {
                return Err(BinError::Truncated);
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let key = get_str(bytes, pos)?;
                let val = decode_value_at(bytes, pos, depth + 1)?;
                pairs.push((key, val));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(BinError::BadTag(other)),
    }
}

// ---------------------------------------------------------------- frames

/// Appends one checksummed frame, returning its byte offset in `out`.
fn push_frame(out: &mut Vec<u8>, kind: u8, payload: &[u8]) -> usize {
    let start = out.len();
    assert!(
        payload.len() < u32::MAX as usize,
        "frame payloads are u32-sized"
    );
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32c(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    start
}

/// Reads and CRC-verifies the frame starting at `pos`, advancing it.
/// Returns `(kind, payload, frame_offset)`. Shared with the mmap'd
/// zero-copy reader ([`crate::zerocopy`]), which calls it per extent.
pub(crate) fn read_frame<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
) -> Result<(u8, &'a [u8], usize), BinError> {
    let offset = *pos;
    let header = bytes
        .get(offset..offset + FRAME_HEADER_LEN)
        .ok_or(BinError::Truncated)?;
    let kind = header[0];
    let payload_len = u32::from_le_bytes(header[1..5].try_into().expect("4-byte slice")) as usize;
    let payload_end = offset
        .checked_add(FRAME_HEADER_LEN)
        .and_then(|p| p.checked_add(payload_len))
        .ok_or(BinError::Truncated)?;
    let frame_end = payload_end.checked_add(4).ok_or(BinError::Truncated)?;
    if frame_end > bytes.len() {
        return Err(BinError::Truncated);
    }
    let stored = u32::from_le_bytes(
        bytes[payload_end..frame_end]
            .try_into()
            .expect("4-byte slice"),
    );
    if crc32c(&bytes[offset..payload_end]) != stored {
        return Err(BinError::FrameChecksum { offset });
    }
    *pos = frame_end;
    Ok((kind, &bytes[offset + FRAME_HEADER_LEN..payload_end], offset))
}

/// One row of the trailer's per-job offset table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrailerEntry {
    /// Job id of the archive the frame holds.
    pub job_id: String,
    /// Byte offset of the job's frame within the file.
    pub offset: usize,
    /// Whole frame length in bytes (header + payload + CRC).
    pub len: usize,
}

fn encode_trailer(entries: &[TrailerEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 32 + 4);
    put_varint(&mut out, entries.len() as u64);
    for e in entries {
        put_varint(&mut out, e.job_id.len() as u64);
        out.extend_from_slice(e.job_id.as_bytes());
        put_varint(&mut out, e.offset as u64);
        put_varint(&mut out, e.len as u64);
    }
    out
}

pub(crate) fn decode_trailer(payload: &[u8]) -> Result<Vec<TrailerEntry>, BinError> {
    let mut pos = 0;
    let n = get_varint(payload, &mut pos)? as usize;
    if n > payload.len().saturating_sub(pos) / 3 {
        // Each entry costs at least 3 bytes (empty id + two varints).
        return Err(BinError::Truncated);
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let job_id = get_str(payload, &mut pos)?;
        let offset = get_varint(payload, &mut pos)? as usize;
        let len = get_varint(payload, &mut pos)? as usize;
        entries.push(TrailerEntry {
            job_id,
            offset,
            len,
        });
    }
    if pos != payload.len() {
        return Err(BinError::TrailingBytes(payload.len() - pos));
    }
    Ok(entries)
}

fn push_footer(out: &mut Vec<u8>, trailer_offset: usize) {
    let offset_bytes = (trailer_offset as u64).to_le_bytes();
    out.extend_from_slice(&offset_bytes);
    out.extend_from_slice(&crc32c(&offset_bytes).to_le_bytes());
    out.extend_from_slice(&END_MAGIC);
}

/// Parses the fixed footer at `bytes[pos..pos + FOOTER_LEN]`, returning
/// the trailer offset it points at.
fn read_footer(bytes: &[u8], pos: usize) -> Result<usize, BinError> {
    let footer = bytes
        .get(pos..pos + FOOTER_LEN)
        .ok_or(BinError::Truncated)?;
    if footer[12..16] != END_MAGIC {
        return Err(BinError::Malformed("footer end magic missing".into()));
    }
    let stored = u32::from_le_bytes(footer[8..12].try_into().expect("4-byte slice"));
    if crc32c(&footer[..8]) != stored {
        return Err(BinError::Malformed("footer checksum mismatch".into()));
    }
    Ok(u64::from_le_bytes(footer[..8].try_into().expect("8-byte slice")) as usize)
}

/// Locates the trailer through the footer at the file's end, independent
/// of the frames before it. Used by the salvage path when the sequential
/// walk dies mid-file, and by the future mmap read path to find per-job
/// extents without touching the payloads.
pub(crate) fn trailer_via_footer(bytes: &[u8]) -> Result<(Vec<TrailerEntry>, usize), BinError> {
    let footer_at = bytes
        .len()
        .checked_sub(FOOTER_LEN)
        .ok_or(BinError::Truncated)?;
    let trailer_offset = read_footer(bytes, footer_at)?;
    if trailer_offset < HEADER_LEN || trailer_offset >= footer_at {
        return Err(BinError::Malformed(format!(
            "footer points outside the file (trailer at {trailer_offset})"
        )));
    }
    let mut pos = trailer_offset;
    let (kind, payload, offset) = read_frame(bytes, &mut pos)?;
    if kind != FRAME_TRAILER {
        return Err(BinError::BadFrameKind { offset, kind });
    }
    Ok((decode_trailer(payload)?, trailer_offset))
}

/// Reads the version field of the 8-byte file header.
pub(crate) fn header_version(bytes: &[u8]) -> Result<u32, BinError> {
    let magic: [u8; 4] = bytes
        .get(..4)
        .ok_or(BinError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    if magic != MAGIC {
        return Err(BinError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(
        bytes
            .get(4..8)
            .ok_or(BinError::Truncated)?
            .try_into()
            .expect("4-byte slice"),
    );
    if version == 0 || version > BIN_FORMAT_VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    Ok(version)
}

/// Summary of one frame of a v3 file, as reported by [`frame_table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Frame kind ([`FRAME_RUN`], [`FRAME_JOB`], [`FRAME_TRAILER`]).
    pub kind: u8,
    /// Byte offset of the frame within the file.
    pub offset: usize,
    /// Whole frame length (header + payload + CRC).
    pub len: usize,
    /// Job id, for [`FRAME_JOB`] frames listed in the trailer.
    pub job_id: Option<String>,
}

/// Strictly walks a v3 file and returns its frame layout without
/// decoding any job payload — the cheap structural view the corruption
/// tests and the future mmap path share. Errors on v1/v2 files (they
/// have no frames) and on any integrity violation.
pub fn frame_table(bytes: &[u8]) -> Result<Vec<FrameInfo>, BinError> {
    let version = header_version(bytes)?;
    if version < 3 {
        return Err(BinError::Malformed(format!(
            "format v{version} predates frames"
        )));
    }
    let (entries, _) = trailer_via_footer(bytes)?;
    let by_offset: std::collections::HashMap<usize, &str> = entries
        .iter()
        .map(|e| (e.offset, e.job_id.as_str()))
        .collect();
    let mut frames = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let start = pos;
        let (kind, _, offset) = read_frame(bytes, &mut pos)?;
        frames.push(FrameInfo {
            kind,
            offset,
            len: pos - start,
            job_id: by_offset.get(&offset).map(|s| s.to_string()),
        });
        if kind == FRAME_TRAILER {
            break;
        }
    }
    read_footer(bytes, pos)?;
    Ok(frames)
}

// -------------------------------------------------------------- envelopes

fn encode_payload<T: Serialize>(payload: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * 1024);
    encode_value(&payload.to_value(), &mut out);
    out
}

fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, BinError> {
    let mut pos = 0;
    let value = decode_value(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(BinError::TrailingBytes(payload.len() - pos));
    }
    Ok(T::from_value(&value)?)
}

/// Decodes a v1/v2 file: one raw tagged value after the 8-byte header.
fn legacy_from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, BinError> {
    let mut pos = HEADER_LEN;
    let value = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(BinError::TrailingBytes(bytes.len() - pos));
    }
    Ok(T::from_value(&value)?)
}

/// Serializes a whole store (all archives) to the binary format.
pub fn store_to_bytes(store: &ArchiveStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * 1024);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BIN_FORMAT_VERSION.to_le_bytes());
    push_frame(&mut out, FRAME_RUN, &encode_payload(store.run()));
    let mut entries = Vec::with_capacity(store.len());
    for archive in store.iter() {
        let payload = encode_payload(archive);
        let offset = push_frame(&mut out, FRAME_JOB, &payload);
        entries.push(TrailerEntry {
            job_id: archive.meta.job_id.clone(),
            offset,
            len: payload.len() + FRAME_OVERHEAD,
        });
    }
    let trailer_offset = push_frame(&mut out, FRAME_TRAILER, &encode_trailer(&entries));
    push_footer(&mut out, trailer_offset);
    out
}

/// Reads a store back from [`store_to_bytes`] output (or any earlier
/// format version). Every frame must verify; use
/// [`crate::salvage::salvage_from_bytes`] to recover what it can from a
/// file this function rejects.
pub fn store_from_bytes(bytes: &[u8]) -> Result<ArchiveStore, BinError> {
    let version = header_version(bytes)?;
    if version < 3 {
        return legacy_from_bytes(bytes);
    }

    let mut pos = HEADER_LEN;
    let (kind, payload, offset) = read_frame(bytes, &mut pos)?;
    if kind != FRAME_RUN {
        return Err(BinError::BadFrameKind { offset, kind });
    }
    let run: RunMeta = decode_payload(payload)?;

    let mut store = ArchiveStore::new().with_run(run);
    let mut seen = Vec::new();
    let (trailer, trailer_start) = loop {
        let start = pos;
        let (kind, payload, offset) = read_frame(bytes, &mut pos)?;
        match kind {
            FRAME_JOB => {
                let archive: JobArchive = decode_payload(payload)?;
                seen.push(TrailerEntry {
                    job_id: archive.meta.job_id.clone(),
                    offset,
                    len: pos - start,
                });
                store
                    .add(archive)
                    .map_err(|dup| BinError::Malformed(format!("duplicate job id `{}`", dup.0)))?;
            }
            FRAME_TRAILER => break (decode_trailer(payload)?, start),
            other => {
                return Err(BinError::BadFrameKind {
                    offset,
                    kind: other,
                })
            }
        }
    };
    if trailer != seen {
        return Err(BinError::Malformed(format!(
            "trailer lists {} jobs but the file holds {}",
            trailer.len(),
            seen.len()
        )));
    }
    let trailer_offset = read_footer(bytes, pos)?;
    if trailer_offset != trailer_start {
        return Err(BinError::Malformed(format!(
            "footer points at byte {trailer_offset}, trailer is at {trailer_start}"
        )));
    }
    let after_footer = pos + FOOTER_LEN;
    if after_footer != bytes.len() {
        return Err(BinError::TrailingBytes(bytes.len() - after_footer));
    }
    Ok(store)
}

/// Serializes a single archive to the binary format: one JOB frame plus
/// trailer/footer (no run header — that belongs to stores).
pub fn archive_to_bytes(archive: &JobArchive) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 * 1024);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BIN_FORMAT_VERSION.to_le_bytes());
    let payload = encode_payload(archive);
    let offset = push_frame(&mut out, FRAME_JOB, &payload);
    let entries = [TrailerEntry {
        job_id: archive.meta.job_id.clone(),
        offset,
        len: payload.len() + FRAME_OVERHEAD,
    }];
    let trailer_offset = push_frame(&mut out, FRAME_TRAILER, &encode_trailer(&entries));
    push_footer(&mut out, trailer_offset);
    out
}

/// Reads a single archive back from [`archive_to_bytes`] output (or a
/// v1/v2 single-archive file).
pub fn archive_from_bytes(bytes: &[u8]) -> Result<JobArchive, BinError> {
    let version = header_version(bytes)?;
    if version < 3 {
        return legacy_from_bytes(bytes);
    }
    let mut pos = HEADER_LEN;
    let (kind, payload, offset) = read_frame(bytes, &mut pos)?;
    if kind != FRAME_JOB {
        return Err(BinError::BadFrameKind { offset, kind });
    }
    let archive: JobArchive = decode_payload(payload)?;
    let (kind, trailer_payload, offset) = read_frame(bytes, &mut pos)?;
    if kind != FRAME_TRAILER {
        return Err(BinError::BadFrameKind { offset, kind });
    }
    let trailer = decode_trailer(trailer_payload)?;
    if trailer.len() != 1 || trailer[0].job_id != archive.meta.job_id {
        return Err(BinError::Malformed(
            "trailer does not match the archive".into(),
        ));
    }
    read_footer(bytes, pos)?;
    let after_footer = pos + FOOTER_LEN;
    if after_footer != bytes.len() {
        return Err(BinError::TrailingBytes(bytes.len() - after_footer));
    }
    Ok(archive)
}

impl ArchiveStore {
    /// Persists the store to `path` in the binary format. The write is
    /// atomic and durable ([`crate::durable::write_atomic`]): a crash
    /// mid-save leaves either the previous file or the new one, never a
    /// torn mix.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BinError> {
        let _span = granula_trace::span!("archiving", "store.save");
        durable::write_atomic(path, &store_to_bytes(self))?;
        Ok(())
    }

    /// Loads a store persisted with [`ArchiveStore::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BinError> {
        let _span = granula_trace::span!("archiving", "store.load");
        store_from_bytes(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn sample_store() -> ArchiveStore {
        let mut store = ArchiveStore::new();
        for (job, plat) in [("g0", "Giraph"), ("p0", "PowerGraph")] {
            let mut t = OperationTree::new();
            let root = t
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .unwrap();
            t.set_info(root, Info::raw(names::START_TIME, InfoValue::Int(0)))
                .unwrap();
            t.set_info(root, Info::raw(names::END_TIME, InfoValue::Int(81_900_000)))
                .unwrap();
            let c = t
                .add_child(
                    root,
                    Actor::new("Worker", "1"),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            t.set_info(c, Info::raw("Rate", InfoValue::Float(0.1 + 0.2)))
                .unwrap();
            t.set_info(
                c,
                Info::raw(
                    "Cpu",
                    InfoValue::Series(vec![(0, 1.5), (10, f64::MIN_POSITIVE)]),
                ),
            )
            .unwrap();
            store
                .add(JobArchive::new(
                    JobMeta {
                        job_id: job.into(),
                        platform: plat.into(),
                        algorithm: "BFS".into(),
                        dataset: "dg".into(),
                        nodes: 8,
                        model: "m".into(),
                    },
                    t,
                ))
                .unwrap();
        }
        store
    }

    /// Encodes a store the way a v1/v2 writer did: raw payload value
    /// after the header, no frames, no checksums.
    fn to_bytes_legacy(store: &ArchiveStore, version: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        let payload = match version {
            1 => {
                let Value::Object(pairs) = store.to_value() else {
                    panic!("store serializes to an object");
                };
                Value::Object(pairs.into_iter().filter(|(k, _)| k == "archives").collect())
            }
            _ => store.to_value(),
        };
        encode_value(&payload, &mut bytes);
        bytes
    }

    #[test]
    fn store_roundtrips_exactly() {
        let store = sample_store();
        let bytes = store_to_bytes(&store);
        let back = store_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), store.len());
        for (a, b) in store.iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let store = sample_store();
        let a = store_to_bytes(&store);
        let b = store_to_bytes(&store_from_bytes(&a).unwrap());
        assert_eq!(a, b, "save -> load -> save must be byte-identical");
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ArchiveStore::new().with_run(crate::store::RunMeta::new("r0", 7, "empty"));
        let bytes = store_to_bytes(&store);
        let back = store_from_bytes(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.run(), store.run());
        assert_eq!(bytes, store_to_bytes(&back));
    }

    #[test]
    fn header_is_validated() {
        let store = sample_store();
        let bytes = store_to_bytes(&store);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            store_from_bytes(&bad_magic),
            Err(BinError::BadMagic(_))
        ));

        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            store_from_bytes(&future),
            Err(BinError::UnsupportedVersion(99))
        ));

        // Chopping into the footer: structurally invalid, never a panic.
        let mut torn = bytes.clone();
        torn.truncate(torn.len() - 3);
        assert!(store_from_bytes(&torn).is_err());

        // Chopping mid-frame is a truncation.
        let mut torn = bytes;
        torn.truncate(40);
        assert!(matches!(store_from_bytes(&torn), Err(BinError::Truncated)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = store_to_bytes(&sample_store());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            store_from_bytes(&bytes),
            Err(BinError::TrailingBytes(4))
        ));
    }

    #[test]
    fn frame_corruption_is_a_checksum_error() {
        let store = sample_store();
        let bytes = store_to_bytes(&store);
        // Flip one bit inside the first job frame's payload.
        let frames = frame_table(&bytes).unwrap();
        let job = frames.iter().find(|f| f.kind == FRAME_JOB).unwrap();
        let mut corrupt = bytes.clone();
        corrupt[job.offset + FRAME_HEADER_LEN + 10] ^= 0x04;
        match store_from_bytes(&corrupt) {
            Err(BinError::FrameChecksum { offset }) => assert_eq!(offset, job.offset),
            other => panic!("expected FrameChecksum, got {other:?}"),
        }
    }

    #[test]
    fn frame_table_reports_the_layout() {
        let store = sample_store();
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let kinds: Vec<u8> = frames.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, [FRAME_RUN, FRAME_JOB, FRAME_JOB, FRAME_TRAILER]);
        let ids: Vec<_> = frames.iter().filter_map(|f| f.job_id.as_deref()).collect();
        assert_eq!(ids, ["g0", "p0"]);
        // Frames tile the file exactly: header..frames..footer.
        assert_eq!(frames[0].offset, HEADER_LEN);
        for w in frames.windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
        let last = frames.last().unwrap();
        assert_eq!(last.offset + last.len + FOOTER_LEN, bytes.len());
    }

    #[test]
    fn forged_giant_length_prefixes_fail_without_allocating() {
        // A legacy payload claiming a 4-billion-element array: the
        // decoder must bound `with_capacity` by the bytes remaining and
        // return Truncated instead of attempting the allocation.
        for tag in [TAG_ARRAY, TAG_OBJECT, TAG_STR] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&MAGIC);
            bytes.extend_from_slice(&2u32.to_le_bytes());
            bytes.push(tag);
            put_varint(&mut bytes, 4_000_000_000);
            assert!(
                matches!(store_from_bytes(&bytes), Err(BinError::Truncated)),
                "tag 0x{tag:02x} with forged length must be Truncated"
            );
        }
        // Same forged count inside a v3 frame payload.
        let mut payload = Vec::new();
        payload.push(TAG_ARRAY);
        put_varint(&mut payload, 4_000_000_000);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&BIN_FORMAT_VERSION.to_le_bytes());
        push_frame(&mut bytes, FRAME_RUN, &payload);
        assert!(store_from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_nesting_depth_is_an_error_not_a_stack_overflow() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..10_000 {
            bytes.push(TAG_ARRAY);
            bytes.push(1); // varint count = 1
        }
        bytes.push(TAG_NULL);
        assert!(matches!(
            store_from_bytes(&bytes),
            Err(BinError::TooDeep(MAX_VALUE_DEPTH))
        ));
    }

    #[test]
    fn floats_survive_bit_for_bit() {
        for f in [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e308, f64::NAN] {
            let mut out = Vec::new();
            encode_value(&Value::Float(f), &mut out);
            let mut pos = 0;
            let Value::Float(back) = decode_value(&out, &mut pos).unwrap() else {
                panic!("float expected");
            };
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn varints_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn v1_payload_without_run_header_still_loads() {
        let store = sample_store();
        let bytes = to_bytes_legacy(&store, 1);
        let back = store_from_bytes(&bytes).expect("v1 stores stay loadable");
        assert_eq!(back.len(), store.len());
        assert!(back.run().is_empty());
    }

    #[test]
    fn v2_payload_loads_and_resaves_as_v3() {
        let mut store = sample_store();
        store.set_run(crate::store::RunMeta::new("r2", 42, "legacy"));
        let v2 = to_bytes_legacy(&store, 2);
        let back = store_from_bytes(&v2).expect("v2 stores stay loadable");
        assert_eq!(back.run(), store.run());
        assert_eq!(back.len(), store.len());
        for (a, b) in store.iter().zip(back.iter()) {
            assert_eq!(a, b, "v2 payload loads byte-for-byte identically");
        }
        // Re-saving upgrades to the framed format, deterministically.
        let v3 = store_to_bytes(&back);
        assert_eq!(v3[4..8], BIN_FORMAT_VERSION.to_le_bytes());
        assert_eq!(v3, store_to_bytes(&store_from_bytes(&v3).unwrap()));
    }

    #[test]
    fn run_header_survives_binary_roundtrip() {
        let mut store = sample_store();
        store.set_run(crate::store::RunMeta::new("r3", 42_000_000, "ci"));
        let back = store_from_bytes(&store_to_bytes(&store)).unwrap();
        assert_eq!(back.run(), store.run());
        // Determinism holds with the header present.
        assert_eq!(store_to_bytes(&store), store_to_bytes(&back));
    }

    #[test]
    fn single_archive_roundtrip_and_file_io() {
        let store = sample_store();
        let archive = store.get("g0").unwrap();
        let back = archive_from_bytes(&archive_to_bytes(archive)).unwrap();
        assert_eq!(&back, archive);

        let path = std::env::temp_dir().join(format!("granula-binfmt-{}.gar", std::process::id()));
        store.save(&path).unwrap();
        let loaded = ArchiveStore::load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        let _ = std::fs::remove_file(&path);
    }
}
