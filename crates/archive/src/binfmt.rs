//! Versioned, self-describing **binary** archive format (`.gar`).
//!
//! The JSON envelope of [`crate::format`] is the sharing format; this module
//! is the *serving* format: fig5/fig6-scale stores are archived once and
//! re-queried many times without re-simulation, so loading them must not pay
//! JSON tokenization costs. The encoding goes through the serde shim's
//! self-describing [`Value`] tree, so every type that serializes to JSON
//! serializes to the binary format with identical semantics — and float
//! info values survive bit-for-bit ([`f64::to_bits`] is stored verbatim).
//!
//! ## Layout
//!
//! ```text
//! +--------------------+----------------------+---------------------------+
//! | magic  b"GRNA"     | version  u32 LE (=2) | payload  (tagged value)   |
//! +--------------------+----------------------+---------------------------+
//! ```
//!
//! Version history: v1 stores carry only the archive list; v2 adds the
//! [`crate::store::RunMeta`] run header. Readers accept any version up to
//! the current one — a v1 payload simply decodes with an empty header.
//!
//! The payload is one tagged value; trailing bytes after it are an error.
//! Tagged values (all lengths/counts are LEB128 varints):
//!
//! | tag  | variant | body                                        |
//! |------|---------|---------------------------------------------|
//! | 0x00 | Null    | —                                           |
//! | 0x01 | Bool    | 1 byte (0/1)                                |
//! | 0x02 | Int     | zig-zag varint                              |
//! | 0x03 | UInt    | varint                                      |
//! | 0x04 | Float   | 8 bytes, `f64::to_bits` LE                  |
//! | 0x05 | Str     | varint byte length + UTF-8 bytes            |
//! | 0x06 | Array   | varint count + that many values             |
//! | 0x07 | Object  | varint count + that many (Str-body, value)  |
//!
//! Encoding is a pure function of the value tree (the shim sorts map keys,
//! struct fields encode in declaration order), so equal stores produce
//! byte-identical files — the property the differential test suite pins.

use std::fmt;
use std::fs;
use std::path::Path;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::archive::JobArchive;
use crate::store::ArchiveStore;

/// File magic: "GRanula Native Archive".
pub const MAGIC: [u8; 4] = *b"GRNA";

/// Current binary format version (v2: run-metadata header).
pub const BIN_FORMAT_VERSION: u32 = 2;

const TAG_NULL: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_INT: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_ARRAY: u8 = 0x06;
const TAG_OBJECT: u8 = 0x07;

/// Errors raised while encoding/decoding binary archives.
#[derive(Debug)]
pub enum BinError {
    /// The file does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The payload ended before a complete value was read.
    Truncated,
    /// Bytes remain after the payload value.
    TrailingBytes(usize),
    /// An unknown value tag was encountered.
    BadTag(u8),
    /// A string body was not valid UTF-8.
    BadUtf8,
    /// The decoded value tree did not have the expected shape.
    De(DeError),
    /// Underlying filesystem error.
    Io(std::io::Error),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic(m) => write!(f, "bad archive magic {m:?} (expected {MAGIC:?})"),
            BinError::UnsupportedVersion(v) => write!(
                f,
                "binary archive version {v} is newer than supported {BIN_FORMAT_VERSION}"
            ),
            BinError::Truncated => write!(f, "binary archive truncated"),
            BinError::TrailingBytes(n) => write!(f, "{n} trailing bytes after archive payload"),
            BinError::BadTag(t) => write!(f, "unknown value tag 0x{t:02x}"),
            BinError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            BinError::De(e) => write!(f, "archive shape error: {e}"),
            BinError::Io(e) => write!(f, "archive I/O error: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<DeError> for BinError {
    fn from(e: DeError) -> Self {
        BinError::De(e)
    }
}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

// ------------------------------------------------------------- primitives

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, BinError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos).ok_or(BinError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(BinError::Truncated);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------- values

/// Appends the tagged encoding of a value.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*i));
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            put_varint(out, *u);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(pairs) => {
            out.push(TAG_OBJECT);
            put_varint(out, pairs.len() as u64);
            for (k, val) in pairs {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, BinError> {
    let len = get_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len).ok_or(BinError::Truncated)?;
    let slice = bytes.get(*pos..end).ok_or(BinError::Truncated)?;
    *pos = end;
    String::from_utf8(slice.to_vec()).map_err(|_| BinError::BadUtf8)
}

/// Decodes one tagged value starting at `pos`, advancing it.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, BinError> {
    let tag = *bytes.get(*pos).ok_or(BinError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => {
            let b = *bytes.get(*pos).ok_or(BinError::Truncated)?;
            *pos += 1;
            Ok(Value::Bool(b != 0))
        }
        TAG_INT => Ok(Value::Int(unzigzag(get_varint(bytes, pos)?))),
        TAG_UINT => Ok(Value::UInt(get_varint(bytes, pos)?)),
        TAG_FLOAT => {
            let end = *pos + 8;
            let slice = bytes.get(*pos..end).ok_or(BinError::Truncated)?;
            *pos = end;
            let bits = u64::from_le_bytes(slice.try_into().expect("8-byte slice"));
            Ok(Value::Float(f64::from_bits(bits)))
        }
        TAG_STR => Ok(Value::Str(get_str(bytes, pos)?)),
        TAG_ARRAY => {
            let n = get_varint(bytes, pos)? as usize;
            // Bound preallocation by what the input could possibly hold
            // (every element is at least one tag byte).
            let mut items = Vec::with_capacity(n.min(bytes.len() - *pos));
            for _ in 0..n {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let n = get_varint(bytes, pos)? as usize;
            let mut pairs = Vec::with_capacity(n.min(bytes.len() - *pos));
            for _ in 0..n {
                let key = get_str(bytes, pos)?;
                let val = decode_value(bytes, pos)?;
                pairs.push((key, val));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(BinError::BadTag(other)),
    }
}

// -------------------------------------------------------------- envelopes

/// Encodes any serializable payload under the magic + version header.
fn to_bytes_generic<T: Serialize>(payload: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * 1024);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&BIN_FORMAT_VERSION.to_le_bytes());
    encode_value(&payload.to_value(), &mut out);
    out
}

/// Decodes a header-checked payload.
fn from_bytes_generic<T: Deserialize>(bytes: &[u8]) -> Result<T, BinError> {
    let magic: [u8; 4] = bytes
        .get(..4)
        .ok_or(BinError::Truncated)?
        .try_into()
        .expect("4-byte slice");
    if magic != MAGIC {
        return Err(BinError::BadMagic(magic));
    }
    let version = u32::from_le_bytes(
        bytes
            .get(4..8)
            .ok_or(BinError::Truncated)?
            .try_into()
            .expect("4-byte slice"),
    );
    if version > BIN_FORMAT_VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    let mut pos = 8;
    let value = decode_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(BinError::TrailingBytes(bytes.len() - pos));
    }
    Ok(T::from_value(&value)?)
}

/// Serializes a whole store (all archives) to the binary format.
pub fn store_to_bytes(store: &ArchiveStore) -> Vec<u8> {
    to_bytes_generic(store)
}

/// Reads a store back from [`store_to_bytes`] output.
pub fn store_from_bytes(bytes: &[u8]) -> Result<ArchiveStore, BinError> {
    from_bytes_generic(bytes)
}

/// Serializes a single archive to the binary format.
pub fn archive_to_bytes(archive: &JobArchive) -> Vec<u8> {
    to_bytes_generic(archive)
}

/// Reads a single archive back from [`archive_to_bytes`] output.
pub fn archive_from_bytes(bytes: &[u8]) -> Result<JobArchive, BinError> {
    from_bytes_generic(bytes)
}

impl ArchiveStore {
    /// Persists the store to `path` in the binary format.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BinError> {
        let _span = granula_trace::span!("archiving", "store.save");
        fs::write(path, store_to_bytes(self))?;
        Ok(())
    }

    /// Loads a store persisted with [`ArchiveStore::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BinError> {
        let _span = granula_trace::span!("archiving", "store.load");
        store_from_bytes(&fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn sample_store() -> ArchiveStore {
        let mut store = ArchiveStore::new();
        for (job, plat) in [("g0", "Giraph"), ("p0", "PowerGraph")] {
            let mut t = OperationTree::new();
            let root = t
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .unwrap();
            t.set_info(root, Info::raw(names::START_TIME, InfoValue::Int(0)))
                .unwrap();
            t.set_info(root, Info::raw(names::END_TIME, InfoValue::Int(81_900_000)))
                .unwrap();
            let c = t
                .add_child(
                    root,
                    Actor::new("Worker", "1"),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            t.set_info(c, Info::raw("Rate", InfoValue::Float(0.1 + 0.2)))
                .unwrap();
            t.set_info(
                c,
                Info::raw(
                    "Cpu",
                    InfoValue::Series(vec![(0, 1.5), (10, f64::MIN_POSITIVE)]),
                ),
            )
            .unwrap();
            store
                .add(JobArchive::new(
                    JobMeta {
                        job_id: job.into(),
                        platform: plat.into(),
                        algorithm: "BFS".into(),
                        dataset: "dg".into(),
                        nodes: 8,
                        model: "m".into(),
                    },
                    t,
                ))
                .unwrap();
        }
        store
    }

    #[test]
    fn store_roundtrips_exactly() {
        let store = sample_store();
        let bytes = store_to_bytes(&store);
        let back = store_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), store.len());
        for (a, b) in store.iter().zip(back.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let store = sample_store();
        let a = store_to_bytes(&store);
        let b = store_to_bytes(&store_from_bytes(&a).unwrap());
        assert_eq!(a, b, "save -> load -> save must be byte-identical");
    }

    #[test]
    fn header_is_validated() {
        let store = sample_store();
        let mut bytes = store_to_bytes(&store);

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            store_from_bytes(&bad_magic),
            Err(BinError::BadMagic(_))
        ));

        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            store_from_bytes(&future),
            Err(BinError::UnsupportedVersion(99))
        ));

        bytes.truncate(bytes.len() - 3);
        assert!(matches!(store_from_bytes(&bytes), Err(BinError::Truncated)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = store_to_bytes(&sample_store());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            store_from_bytes(&bytes),
            Err(BinError::TrailingBytes(4))
        ));
    }

    #[test]
    fn floats_survive_bit_for_bit() {
        for f in [0.1 + 0.2, f64::MIN_POSITIVE, -0.0, 1e308, f64::NAN] {
            let mut out = Vec::new();
            encode_value(&Value::Float(f), &mut out);
            let mut pos = 0;
            let Value::Float(back) = decode_value(&out, &mut pos).unwrap() else {
                panic!("float expected");
            };
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn varints_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
        for v in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn v1_payload_without_run_header_still_loads() {
        // Reconstruct what a v1 writer produced: version 1 in the header
        // and no `run` key in the payload object.
        let store = sample_store();
        let Value::Object(pairs) = store.to_value() else {
            panic!("store serializes to an object");
        };
        let v1_payload =
            Value::Object(pairs.into_iter().filter(|(k, _)| k == "archives").collect());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        encode_value(&v1_payload, &mut bytes);

        let back = store_from_bytes(&bytes).expect("v1 stores stay loadable");
        assert_eq!(back.len(), store.len());
        assert!(back.run().is_empty());
    }

    #[test]
    fn run_header_survives_binary_roundtrip() {
        let mut store = sample_store();
        store.set_run(crate::store::RunMeta::new("r3", 42_000_000, "ci"));
        let back = store_from_bytes(&store_to_bytes(&store)).unwrap();
        assert_eq!(back.run(), store.run());
        // Determinism holds with the header present.
        assert_eq!(store_to_bytes(&store), store_to_bytes(&back));
    }

    #[test]
    fn single_archive_roundtrip_and_file_io() {
        let store = sample_store();
        let archive = store.get("g0").unwrap();
        let back = archive_from_bytes(&archive_to_bytes(archive)).unwrap();
        assert_eq!(&back, archive);

        let path = std::env::temp_dir().join(format!("granula-binfmt-{}.gar", std::process::id()));
        store.save(&path).unwrap();
        let loaded = ArchiveStore::load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        let _ = std::fs::remove_file(&path);
    }
}
