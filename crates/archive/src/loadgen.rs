//! Many-client load generator for the archive daemon.
//!
//! `granula-cli loadgen` (and the CI serve smoke step) drives a running
//! [`crate::serve::Server`] with N concurrent TCP clients, each sending
//! pipelined batches of `Q` requests over the job × query cross product,
//! and reports latency percentiles plus throughput as the
//! `BENCH_serve.json` artifact. The generator is a protocol client like
//! any other — it measures the daemon through the same wire the viz UI
//! and analysts will use, not through an in-process shortcut.
//!
//! Latency accounting: each batch write→read round trip is timed and
//! divided evenly over the batch's requests (pipelined requests share
//! the RTT; attributing it wholesale to each member would overcount by
//! the batch factor). Percentiles are exact (full sort), not sketched —
//! request counts here are thousands, not billions.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// What to throw at the daemon.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7071`.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client sends (rounded up to whole batches).
    pub requests_per_client: usize,
    /// Pipelined requests per batch (≥1).
    pub batch: usize,
    /// Job ids to spread requests over.
    pub jobs: Vec<String>,
    /// Query texts (sent in `findall` mode), crossed with `jobs`.
    pub queries: Vec<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7071".into(),
            clients: 8,
            requests_per_client: 500,
            batch: 8,
            jobs: Vec::new(),
            queries: vec![
                "Compute".into(),
                "GiraphJob/Superstep/Compute".into(),
                "*@Worker".into(),
                "Superstep".into(),
            ],
        }
    }
}

/// Latency percentiles in microseconds, per request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyUs {
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Arithmetic mean.
    pub mean: u64,
    /// Slowest request.
    pub max: u64,
}

/// The `BENCH_serve.json` payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Report schema version (bump on shape changes).
    pub schema: u32,
    /// Concurrent clients that ran.
    pub clients: u64,
    /// Pipelined requests per batch.
    pub batch: u64,
    /// Requests sent across all clients.
    pub total_requests: u64,
    /// `OK` responses.
    pub ok: u64,
    /// `NOJOB` responses.
    pub nojob: u64,
    /// `ERR` responses.
    pub errors: u64,
    /// Wall time of the whole run, microseconds.
    pub elapsed_us: u64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Per-request latency distribution.
    pub latency_us: LatencyUs,
}

/// Current [`LoadReport::schema`].
pub const LOAD_REPORT_SCHEMA: u32 = 1;

struct ClientOutcome {
    /// Per-request latencies (batch RTT / batch size), microseconds.
    latencies: Vec<u64>,
    ok: u64,
    nojob: u64,
    errors: u64,
}

/// Reads until `n` newline-terminated lines have arrived; returns them.
fn read_lines(stream: &mut TcpStream, n: usize) -> std::io::Result<Vec<String>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    while buf.iter().filter(|&&b| b == b'\n').count() < n {
        let got = stream.read(&mut chunk)?;
        if got == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed mid-batch",
            ));
        }
        buf.extend_from_slice(&chunk[..got]);
    }
    Ok(buf
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .map(|l| String::from_utf8_lossy(l).into_owned())
        .collect())
}

fn run_client(config: &LoadConfig, client_index: usize) -> std::io::Result<ClientOutcome> {
    let mut stream = TcpStream::connect(&config.addr)?;
    stream.set_nodelay(true)?;
    let batch = config.batch.max(1);
    let batches = config.requests_per_client.div_ceil(batch);
    let mut outcome = ClientOutcome {
        latencies: Vec::with_capacity(batches * batch),
        ok: 0,
        nojob: 0,
        errors: 0,
    };
    // Each client starts at a different point of the job × query cross
    // product so concurrent clients don't serve identical request
    // streams in lockstep.
    let mut cursor = client_index * 7;
    for _ in 0..batches {
        let mut lines = String::new();
        for _ in 0..batch {
            let job = &config.jobs[cursor % config.jobs.len()];
            let query = &config.queries[(cursor / config.jobs.len()) % config.queries.len()];
            lines.push_str(&format!("Q findall {job} {query}\n"));
            cursor += 1;
        }
        let start = Instant::now();
        stream.write_all(lines.as_bytes())?;
        let responses = read_lines(&mut stream, batch)?;
        let rtt_us = start.elapsed().as_micros() as u64;
        let per_request = (rtt_us / batch as u64).max(1);
        for response in responses {
            outcome.latencies.push(per_request);
            if response.starts_with("OK ") {
                outcome.ok += 1;
            } else if response.starts_with("NOJOB ") {
                outcome.nojob += 1;
            } else {
                outcome.errors += 1;
            }
        }
    }
    Ok(outcome)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the configured load against a live daemon and aggregates the
/// report. Requires at least one job id in `config.jobs`.
pub fn run_load(config: &LoadConfig) -> std::io::Result<LoadReport> {
    if config.jobs.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "load config needs at least one job id",
        ));
    }
    let started = Instant::now();
    let outcomes: Vec<std::io::Result<ClientOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|i| scope.spawn(move || run_client(config, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed_us = started.elapsed().as_micros() as u64;

    let mut latencies = Vec::new();
    let (mut ok, mut nojob, mut errors) = (0u64, 0u64, 0u64);
    for outcome in outcomes {
        let outcome = outcome?;
        latencies.extend(outcome.latencies);
        ok += outcome.ok;
        nojob += outcome.nojob;
        errors += outcome.errors;
    }
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let mean = latencies
        .iter()
        .sum::<u64>()
        .checked_div(total)
        .unwrap_or(0);
    Ok(LoadReport {
        schema: LOAD_REPORT_SCHEMA,
        clients: config.clients.max(1) as u64,
        batch: config.batch.max(1) as u64,
        total_requests: total,
        ok,
        nojob,
        errors,
        elapsed_us,
        throughput_rps: if elapsed_us == 0 {
            0.0
        } else {
            total as f64 / (elapsed_us as f64 / 1_000_000.0)
        },
        latency_us: LatencyUs {
            p50: percentile(&latencies, 0.50),
            p90: percentile(&latencies, 0.90),
            p99: percentile(&latencies, 0.99),
            mean,
            max: latencies.last().copied().unwrap_or(0),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.90), 90);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[42], 0.99), 42);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn report_serializes_with_required_fields() {
        let report = LoadReport {
            schema: LOAD_REPORT_SCHEMA,
            total_requests: 10,
            throughput_rps: 123.4,
            latency_us: LatencyUs {
                p50: 5,
                p99: 9,
                ..LatencyUs::default()
            },
            ..LoadReport::default()
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        for field in ["\"schema\"", "\"p50\"", "\"p99\"", "\"throughput_rps\""] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
