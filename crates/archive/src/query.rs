//! Path queries over archived operation trees.
//!
//! Analysts "query the contents systematically" (paper §3.3). The query
//! language is a small path grammar over the operation hierarchy:
//!
//! ```text
//! query    := segment ("/" segment)* window?
//! segment  := mission ("@" actor)?
//! mission  := kind ("-" id)?            kind/id may be "*"
//! actor    := kind ("-" id)?            kind/id may be "*"
//! window   := "[" start? ".." end? "]"  microsecond timestamps
//! ```
//!
//! A `kind-id` pattern splits on the *first* dash: the kind never
//! contains `-`, while the id may (`Worker-node-302` is kind `Worker`,
//! id `node-302`). A dangling dash (`Compute-`) or leading dash
//! (`-302`) is rejected with [`QueryError::BadSegment`] — such patterns
//! could never match. Parsed queries re-serialize losslessly through
//! [`Display`](fmt::Display): `Query::parse(&q.to_string()) == Ok(q)`.
//!
//! Examples:
//!
//! * `GiraphJob/ProcessGraph/Superstep-4` — superstep 4 of the job;
//! * `*/ProcessGraph/Superstep/Compute@Worker-*` — every worker-level
//!   Compute under any superstep;
//! * `Compute[1000000..2000000]` — Compute operations *starting* within
//!   the half-open window `[1 s, 2 s)`; either bound may be omitted
//!   (`[..5000]`, `[5000..]`);
//! * a single segment such as `LoadGraph` can also be searched anywhere in
//!   the tree via [`Query::find_all`].
//!
//! Results are returned in ascending operation-id order (the tree's
//! insertion order), which makes query output canonical: the indexed
//! engine in [`crate::engine`] and the scans here agree byte-for-byte.

use std::fmt;

use serde::{Deserialize, Serialize};

use granula_model::{OpId, Operation, OperationTree};

/// Errors raised while parsing a query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query string was empty.
    Empty,
    /// A segment was malformed (e.g. empty mission, dangling `@`).
    BadSegment(String),
    /// A time window was malformed (e.g. `[x..]`, unbalanced brackets).
    BadWindow(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "empty query"),
            QueryError::BadSegment(s) => write!(f, "malformed query segment `{s}`"),
            QueryError::BadWindow(s) => write!(f, "malformed time window in `{s}`"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A `kind(-id)?` pattern where both parts may be wildcards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindPattern {
    /// Kind to match; `None` means any.
    pub kind: Option<String>,
    /// Instance id to match; `None` means any.
    pub id: Option<String>,
}

impl KindPattern {
    fn parse(s: &str) -> Result<Self, QueryError> {
        // Split on the *first* dash: kinds never contain `-`, but ids may
        // (fault archives name workers `Worker-node-302`). An empty kind
        // (leading dash or empty segment) or empty id (dangling dash)
        // could never match anything, so both are parse errors.
        let (kind, id) = match s.split_once('-') {
            Some((k, i)) => (k, Some(i)),
            None => (s, None),
        };
        if kind.is_empty() || id.is_some_and(str::is_empty) {
            return Err(QueryError::BadSegment(s.to_string()));
        }
        let norm = |p: &str| if p == "*" { None } else { Some(p.to_string()) };
        Ok(KindPattern {
            kind: norm(kind),
            id: id.and_then(norm),
        })
    }

    fn matches(&self, kind: &str, id: &str) -> bool {
        self.kind.as_deref().is_none_or(|k| k == kind) && self.id.as_deref().is_none_or(|i| i == id)
    }

    /// `true` when both kind and id are wildcards.
    pub fn is_any(&self) -> bool {
        self.kind.is_none() && self.id.is_none()
    }
}

/// One path segment: a mission pattern plus an optional actor pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Pattern over the mission.
    pub mission: KindPattern,
    /// Pattern over the actor (`kind: None, id: None` = any actor).
    pub actor: KindPattern,
}

impl Segment {
    /// Parses a single segment.
    pub fn parse(s: &str) -> Result<Self, QueryError> {
        let (mission_s, actor_s) = match s.split_once('@') {
            Some((m, a)) => (m, Some(a)),
            None => (s, None),
        };
        let mission = KindPattern::parse(mission_s)?;
        let actor = match actor_s {
            Some(a) => KindPattern::parse(a)?,
            None => KindPattern {
                kind: None,
                id: None,
            },
        };
        Ok(Segment { mission, actor })
    }

    /// Does this segment match the operation?
    pub fn matches(&self, op: &Operation) -> bool {
        self.mission.matches(&op.mission.kind, &op.mission.id)
            && self.actor.matches(&op.actor.kind, &op.actor.id)
    }
}

/// A half-open `[start, end)` filter over operation *start* times, in
/// microseconds since job epoch. `None` bounds are open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Inclusive lower bound on the start time.
    pub start_us: Option<u64>,
    /// Exclusive upper bound on the start time.
    pub end_us: Option<u64>,
}

impl TimeWindow {
    /// Does an operation starting at `start` (if known) fall in the window?
    /// Operations without a recorded start time never match a window.
    pub fn contains(&self, start: Option<u64>) -> bool {
        let Some(s) = start else { return false };
        self.start_us.is_none_or(|lo| s >= lo) && self.end_us.is_none_or(|hi| s < hi)
    }

    fn parse(s: &str) -> Result<Self, QueryError> {
        let Some((lo, hi)) = s.split_once("..") else {
            return Err(QueryError::BadWindow(s.to_string()));
        };
        let bound = |b: &str| -> Result<Option<u64>, QueryError> {
            if b.is_empty() {
                return Ok(None);
            }
            b.parse::<u64>()
                .map(Some)
                .map_err(|_| QueryError::BadWindow(s.to_string()))
        };
        Ok(TimeWindow {
            start_us: bound(lo)?,
            end_us: bound(hi)?,
        })
    }
}

/// A parsed path query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Segments from root to target.
    pub segments: Vec<Segment>,
    /// Optional filter on the start time of matched operations.
    pub window: Option<TimeWindow>,
}

impl Query {
    /// Parses a `/`-separated query string with an optional trailing
    /// `[start..end]` time window.
    pub fn parse(s: &str) -> Result<Self, QueryError> {
        if s.trim().is_empty() {
            return Err(QueryError::Empty);
        }
        let (path, window) = match (s.ends_with(']'), s.find('[')) {
            (true, Some(open)) => (
                &s[..open],
                Some(TimeWindow::parse(&s[open + 1..s.len() - 1])?),
            ),
            (false, None) => (s, None),
            // A `[` without closing `]` (or vice versa) is malformed.
            _ => return Err(QueryError::BadWindow(s.to_string())),
        };
        if path.trim().is_empty() {
            return Err(QueryError::Empty);
        }
        let segments = path
            .split('/')
            .map(Segment::parse)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Query { segments, window })
    }

    /// Window acceptance for one operation (`true` when the query has no
    /// window).
    pub fn window_accepts(&self, op: &Operation) -> bool {
        self.window.is_none_or(|w| w.contains(op.start_us()))
    }

    /// Evaluates the query as an *absolute path* from the root: the first
    /// segment must match the root, each following segment matches children
    /// of the previous matches. Results are in ascending operation-id order.
    pub fn select(&self, tree: &OperationTree) -> Vec<OpId> {
        let _span = granula_trace::span!("archiving", "query.select {self}");
        let Some(root) = tree.root() else {
            return vec![];
        };
        let mut frontier: Vec<OpId> = if self.segments[0].matches(tree.op(root)) {
            vec![root]
        } else {
            vec![]
        };
        for seg in &self.segments[1..] {
            let mut next = Vec::new();
            for &id in &frontier {
                for &c in &tree.op(id).children {
                    if seg.matches(tree.op(c)) {
                        next.push(c);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        frontier.retain(|&id| self.window_accepts(tree.op(id)));
        // Canonical order: operation ids, not frontier-expansion order.
        frontier.sort_unstable();
        frontier
    }

    /// Evaluates the *last* segment anywhere in the tree (descendant search);
    /// preceding segments, if any, must match the chain of ancestors
    /// immediately above the hit. Results are in ascending operation-id
    /// order (insertion order).
    pub fn find_all(&self, tree: &OperationTree) -> Vec<OpId> {
        let _span = granula_trace::span!("archiving", "query.find_all {self}");
        let last = self.segments.last().expect("parse guarantees >= 1 segment");
        let mut out = Vec::new();
        'op: for op in tree.iter() {
            if !last.matches(op) || !self.window_accepts(op) {
                continue;
            }
            // Walk ancestors to match the remaining segments right-to-left.
            let mut cur = op.parent;
            for seg in self.segments[..self.segments.len() - 1].iter().rev() {
                match cur {
                    Some(pid) if seg.matches(tree.op(pid)) => cur = tree.op(pid).parent,
                    _ => continue 'op,
                }
            }
            out.push(op.id);
        }
        out
    }

    /// Collects the values of info `name` on all operations selected by
    /// [`Query::select`].
    pub fn select_info_f64(&self, tree: &OperationTree, name: &str) -> Vec<f64> {
        self.select(tree)
            .into_iter()
            .filter_map(|id| tree.op(id).info_f64(name))
            .collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            let m = &seg.mission;
            write!(f, "{}", m.kind.as_deref().unwrap_or("*"))?;
            if let Some(id) = &m.id {
                write!(f, "-{id}")?;
            }
            if !seg.actor.is_any() {
                write!(f, "@{}", seg.actor.kind.as_deref().unwrap_or("*"))?;
                if let Some(id) = &seg.actor.id {
                    write!(f, "-{id}")?;
                }
            }
        }
        if let Some(w) = &self.window {
            write!(f, "[")?;
            if let Some(lo) = w.start_us {
                write!(f, "{lo}")?;
            }
            write!(f, "..")?;
            if let Some(hi) = w.end_us {
                write!(f, "{hi}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{Actor, Info, InfoValue, Mission};

    /// Job -> ProcessGraph -> Superstep-{0,1} -> Compute@Worker-{0,1}
    fn tree() -> OperationTree {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        let pg = t
            .add_child(
                job,
                Actor::new("Job", "0"),
                Mission::new("ProcessGraph", "0"),
            )
            .unwrap();
        for s in 0..2 {
            let ss = t
                .add_child(
                    pg,
                    Actor::new("Job", "0"),
                    Mission::new("Superstep", s.to_string()),
                )
                .unwrap();
            for w in 0..2 {
                let c = t
                    .add_child(
                        ss,
                        Actor::new("Worker", w.to_string()),
                        Mission::new("Compute", "0"),
                    )
                    .unwrap();
                t.set_info(c, Info::raw("Work", InfoValue::Int((s * 10 + w) as i64)))
                    .unwrap();
            }
        }
        t
    }

    #[test]
    fn absolute_path_selects_single_op() {
        let t = tree();
        let q = Query::parse("GiraphJob/ProcessGraph/Superstep-1").unwrap();
        let hits = q.select(&t);
        assert_eq!(hits.len(), 1);
        assert_eq!(t.op(hits[0]).mission.id, "1");
    }

    #[test]
    fn wildcards_fan_out() {
        let t = tree();
        let q = Query::parse("*/ProcessGraph/Superstep/Compute@Worker-*").unwrap();
        assert_eq!(q.select(&t).len(), 4);
        let q1 = Query::parse("*/ProcessGraph/Superstep/Compute@Worker-1").unwrap();
        assert_eq!(q1.select(&t).len(), 2);
    }

    #[test]
    fn find_all_matches_anywhere() {
        let t = tree();
        let q = Query::parse("Compute").unwrap();
        assert_eq!(q.find_all(&t).len(), 4);
        // With an ancestor constraint.
        let q2 = Query::parse("Superstep-0/Compute").unwrap();
        assert_eq!(q2.find_all(&t).len(), 2);
    }

    #[test]
    fn select_info_values() {
        let t = tree();
        let q = Query::parse("*/ProcessGraph/Superstep-1/Compute").unwrap();
        let mut vals = q.select_info_f64(&t, "Work");
        vals.sort_by(f64::total_cmp);
        assert_eq!(vals, vec![10.0, 11.0]);
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Query::parse(""), Err(QueryError::Empty));
        assert!(Query::parse("A/@Worker").is_err());
        assert!(Query::parse("A//B").is_err());
    }

    #[test]
    fn dashed_ids_split_on_first_dash() {
        let q = Query::parse("Worker-node-302").unwrap();
        assert_eq!(q.segments.len(), 1);
        assert_eq!(q.segments[0].mission.kind.as_deref(), Some("Worker"));
        assert_eq!(q.segments[0].mission.id.as_deref(), Some("node-302"));
        let q = Query::parse("Compute@Worker-node-302").unwrap();
        assert_eq!(q.segments[0].actor.kind.as_deref(), Some("Worker"));
        assert_eq!(q.segments[0].actor.id.as_deref(), Some("node-302"));
    }

    #[test]
    fn dangling_or_leading_dash_is_rejected() {
        for s in ["Compute-", "-302", "A/Compute-", "A@Worker-", "A@-1", "-"] {
            assert!(
                matches!(Query::parse(s), Err(QueryError::BadSegment(_))),
                "expected BadSegment for {s:?}"
            );
        }
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "GiraphJob/ProcessGraph/Superstep-4",
            "*/Compute@Worker-1",
            "LoadGraph@*-3",
            "Worker-node-302",
            "*/Compute@Worker-node-302",
            "Compute[100..200]",
            "*/Compute@Worker-1[..5000]",
            "LoadGraph[99..]",
            "LoadGraph[..]",
        ] {
            let q = Query::parse(s).unwrap();
            assert_eq!(Query::parse(&q.to_string()).unwrap(), q, "roundtrip of {s}");
        }
    }

    #[test]
    fn window_filters_by_start_time() {
        // Compute starts are 0 for all four children in `tree()`; give the
        // supersteps distinct start times instead.
        let mut t = tree();
        let ss: Vec<_> = t.by_mission_kind("Superstep").map(|o| o.id).collect();
        for (i, id) in ss.iter().enumerate() {
            t.set_info(
                *id,
                Info::raw(
                    granula_model::names::START_TIME,
                    InfoValue::Int(1_000 * (i as i64 + 1)),
                ),
            )
            .unwrap();
        }
        let all = Query::parse("Superstep").unwrap().find_all(&t);
        assert_eq!(all.len(), 2);
        let first = Query::parse("Superstep[1000..2000]").unwrap().find_all(&t);
        assert_eq!(first, vec![ss[0]]);
        // End bound is exclusive, start inclusive.
        let none = Query::parse("Superstep[..1000]").unwrap().find_all(&t);
        assert!(none.is_empty());
        let both = Query::parse("Superstep[1000..]").unwrap().find_all(&t);
        assert_eq!(both.len(), 2);
        // select applies the same filter.
        let sel = Query::parse("GiraphJob/ProcessGraph/Superstep[2000..]")
            .unwrap()
            .select(&t);
        assert_eq!(sel, vec![ss[1]]);
        // Ops without a start time never match a window.
        let computes = Query::parse("Compute[0..]").unwrap().find_all(&t);
        assert!(computes.is_empty());
    }

    #[test]
    fn malformed_windows_rejected() {
        for s in [
            "A[1..2",
            "A]1..2]",
            "A[x..]",
            "A[1.5..2]",
            "A[12]",
            "[1..2]",
        ] {
            assert!(
                matches!(
                    Query::parse(s),
                    Err(QueryError::BadWindow(_) | QueryError::Empty)
                ),
                "expected window error for {s:?}, got {:?}",
                Query::parse(s)
            );
        }
    }

    #[test]
    fn no_match_returns_empty() {
        let t = tree();
        let q = Query::parse("GiraphJob/LoadGraph").unwrap();
        assert!(q.select(&t).is_empty());
    }

    #[test]
    fn root_mismatch_returns_empty() {
        let t = tree();
        let q = Query::parse("PowerGraphJob/ProcessGraph").unwrap();
        assert!(q.select(&t).is_empty());
    }
}
