//! # granula-archive
//!
//! The Granula **performance archive** (paper §3.3, P3).
//!
//! After experiments, the info of each job is collected, filtered, and stored
//! in a performance archive with a standardized format. The archive
//! encapsulates the performance results of one job — its full operation tree
//! with raw and derived infos — and lets users *query* the contents
//! systematically (path expressions over the operation hierarchy), *share*
//! results (a versioned JSON envelope), and *compare* jobs across platforms
//! and configurations (the [`store::ArchiveStore`], keyed by unique job
//! id — duplicate ids are rejected by [`ArchiveStore::add`] or replaced
//! by [`ArchiveStore::upsert`]).
//!
//! Query patterns split `kind-id` on the *first* dash, so ids may contain
//! dashes (`Compute@Worker-node-302` matches the actor id `node-302`);
//! dangling or leading dashes are [`QueryError::BadSegment`] errors. A
//! trailing `[start..end]` window restricts matches to operations starting
//! inside the half-open microsecond range. See [`query`] for the full
//! grammar.
//!
//! Beyond the per-query scans, the crate provides a *serving layer*:
//!
//! * [`binfmt`] — a versioned, self-describing binary format with
//!   per-frame CRC32C checksums and a per-job offset trailer
//!   ([`ArchiveStore::save`]/[`ArchiveStore::load`]) so archives are
//!   simulated once and re-queried forever;
//! * [`durable`] — atomic, fsync'd file replacement backing every save,
//!   so a crash mid-write never leaves a torn archive;
//! * [`salvage`] — best-effort recovery ([`ArchiveStore::salvage`])
//!   that pulls every checksum-intact job out of a damaged file;
//! * [`mutate`] — seedable fault injection (truncation, bit flips, torn
//!   tails) powering the corruption test harness and `archive fuzz`;
//! * [`index::TreeIndex`] — kind→ops, actor→ops, and start-time interval
//!   indexes with a query planner;
//! * [`engine::QueryEngine`] — the indexed store with a bounded LRU
//!   result cache, invalidated on `add`/`upsert`.
//!
//! ```
//! use granula_archive::{JobArchive, JobMeta, Query};
//! use granula_model::{Actor, Mission, OperationTree};
//!
//! let mut tree = OperationTree::new();
//! let job = tree.add_root(Actor::new("Job", "0"), Mission::new("Job", "0")).unwrap();
//! tree.add_child(job, Actor::new("Worker", "1"), Mission::new("Compute", "4")).unwrap();
//! let archive = JobArchive::new(JobMeta::default(), tree);
//!
//! let q = Query::parse("Job/Compute-4@Worker-1").unwrap();
//! assert_eq!(q.select(&archive.tree).len(), 1);
//! ```

pub mod archive;
pub mod binfmt;
pub mod crc;
pub mod durable;
pub mod engine;
pub mod format;
pub mod index;
pub mod loadgen;
pub mod lru;
pub mod mmapio;
pub mod mutate;
pub mod query;
pub mod salvage;
pub mod serve;
pub mod shard;
pub mod store;
pub mod swap;
pub mod zerocopy;

pub use archive::{JobArchive, JobMeta};
pub use binfmt::{
    archive_from_bytes, archive_to_bytes, frame_table, store_from_bytes, store_to_bytes, BinError,
    FrameInfo, TrailerEntry, BIN_FORMAT_VERSION, FRAME_JOB, FRAME_RUN, FRAME_TRAILER, MAGIC,
    MAX_VALUE_DEPTH,
};
pub use crc::crc32c;
pub use durable::write_atomic;
pub use engine::{EngineStats, QueryEngine, QueryMode, DEFAULT_CACHE_CAPACITY};
pub use format::{from_json, to_json, to_json_pretty, FormatError, FORMAT_VERSION};
pub use index::{QueryPlan, TreeIndex, SCAN_FALLBACK_FACTOR, SCAN_THRESHOLD};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use lru::LruMap;
pub use mmapio::Mapped;
pub use mutate::{flip_bit, torn_tail, truncate_at, Mutation, Mutator};
pub use query::{KindPattern, Query, QueryError, Segment, TimeWindow};
pub use salvage::{salvage_from_bytes, LostFrame, SalvageReport};
pub use serve::{format_ids, Server};
pub use shard::{
    shard_of, ServeError, ServeOptions, ServeSnapshot, ShardedEngine, DEFAULT_RESIDENT_CAPACITY,
    DEFAULT_SHARDS,
};
pub use store::{ArchiveStore, ComparisonRow, DuplicateJobId, RunMeta};
pub use swap::{ArcCell, CachedArc};
pub use zerocopy::MappedStore;
