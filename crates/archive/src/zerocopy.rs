//! Zero-copy `.gar` reader: trailer-driven per-job extents over mmap.
//!
//! [`crate::binfmt::store_from_bytes`] walks every frame and decodes
//! every job payload into an [`crate::store::ArchiveStore`] — correct
//! for analysis sessions, but the wrong cost model for serving: a cold
//! 100k-op archive should answer its *first* query by decoding only the
//! one job the query names. The format-v3 footer/trailer (PR 8) already
//! records every job frame's byte extent precisely so that readers can
//! find a job without walking frames; this module closes the loop.
//!
//! [`MappedStore::open`] maps the file ([`crate::mmapio::Mapped`]) and
//! reads exactly three things eagerly: the 8-byte header, the RUN frame
//! (run metadata is tiny and every query needs the job roster anyway),
//! and the trailer (reached through the fixed footer, never through the
//! job frames). Job payloads stay as untouched byte ranges of the
//! mapping until a query lands on them.
//!
//! Integrity is not weakened, only deferred: each job frame's CRC32C is
//! verified on **first touch** — the first time a query needs that job's
//! bytes — and the verification is remembered, so steady-state serving
//! pays the checksum once per job, not once per query. A job whose frame
//! fails its CRC stays permanently unreadable through this store
//! (salvage is the repair path), while every other job keeps serving.
//!
//! The store counts how many jobs it has decoded and verified
//! ([`MappedStore::decoded_jobs`], [`MappedStore::verified_jobs`]); the
//! cold-archive test pins the zero-copy claim to those counters.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use serde::Deserialize;

use crate::archive::JobArchive;
use crate::binfmt::{
    self, BinError, TrailerEntry, FRAME_HEADER_LEN, FRAME_JOB, FRAME_OVERHEAD, FRAME_RUN,
    HEADER_LEN,
};
use crate::crc::crc32c;
use crate::mmapio::Mapped;
use crate::store::RunMeta;

/// A `.gar` file mapped read-only, decoding job payloads on demand.
#[derive(Debug)]
pub struct MappedStore {
    map: Mapped,
    path: PathBuf,
    run: RunMeta,
    /// Trailer rows, in file order.
    jobs: Vec<TrailerEntry>,
    /// Job id → index into `jobs`.
    by_id: HashMap<String, usize>,
    /// Set once job `i`'s frame CRC has verified — later touches skip it.
    verified: Vec<OnceLock<()>>,
    decoded_jobs: AtomicU64,
    verified_jobs: AtomicU64,
}

impl MappedStore {
    /// Maps `path` and reads only header + RUN frame + trailer.
    ///
    /// Accepts both store files ([`crate::binfmt::store_to_bytes`]) and
    /// single-archive files ([`crate::binfmt::archive_to_bytes`], which
    /// carry no RUN frame — the run header comes back empty). Rejects
    /// v1/v2 files: they have no trailer, so they cannot be served
    /// without the full deserialize this reader exists to avoid.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedStore, BinError> {
        let path = path.as_ref().to_path_buf();
        let map = Mapped::open(&path)?;
        let version = binfmt::header_version(&map)?;
        if version < 3 {
            return Err(BinError::Malformed(format!(
                "format v{version} has no offset trailer; re-save as v3 to serve zero-copy"
            )));
        }
        let (jobs, trailer_offset) = binfmt::trailer_via_footer(&map)?;

        // The RUN frame, when present, is the first frame in the file.
        // Single-archive files start directly with a JOB frame instead.
        let mut run = RunMeta::default();
        if trailer_offset > HEADER_LEN {
            let mut pos = HEADER_LEN;
            let (kind, payload, _) = binfmt::read_frame(&map, &mut pos)?;
            if kind == FRAME_RUN {
                let mut vpos = 0;
                let value = binfmt::decode_value(payload, &mut vpos)?;
                if vpos != payload.len() {
                    return Err(BinError::TrailingBytes(payload.len() - vpos));
                }
                run = RunMeta::from_value(&value)?;
            }
        }

        let mut by_id = HashMap::with_capacity(jobs.len());
        for (i, entry) in jobs.iter().enumerate() {
            // Validate the extent against the file's actual bounds now,
            // so `job_payload` works from trusted geometry.
            let end = entry
                .offset
                .checked_add(entry.len)
                .ok_or(BinError::Truncated)?;
            if entry.offset < HEADER_LEN || end > trailer_offset || entry.len < FRAME_OVERHEAD {
                return Err(BinError::Malformed(format!(
                    "trailer extent for job `{}` ({}..{end}) falls outside the frame region",
                    entry.job_id, entry.offset
                )));
            }
            if by_id.insert(entry.job_id.clone(), i).is_some() {
                return Err(BinError::Malformed(format!(
                    "duplicate job id `{}` in trailer",
                    entry.job_id
                )));
            }
        }
        let verified = (0..jobs.len()).map(|_| OnceLock::new()).collect();
        Ok(MappedStore {
            map,
            path,
            run,
            jobs,
            by_id,
            verified,
            decoded_jobs: AtomicU64::new(0),
            verified_jobs: AtomicU64::new(0),
        })
    }

    /// The file this store maps.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run header (empty for single-archive files).
    pub fn run(&self) -> &RunMeta {
        &self.run
    }

    /// Number of jobs listed in the trailer.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trailer lists no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Job ids in file order.
    pub fn job_ids(&self) -> impl Iterator<Item = &str> {
        self.jobs.iter().map(|e| e.job_id.as_str())
    }

    /// True when the trailer lists `job_id`.
    pub fn contains(&self, job_id: &str) -> bool {
        self.by_id.contains_key(job_id)
    }

    /// Jobs decoded into [`JobArchive`]s so far — the counter the
    /// cold-archive zero-copy test pins.
    pub fn decoded_jobs(&self) -> u64 {
        self.decoded_jobs.load(Ordering::Relaxed)
    }

    /// Job frames CRC-verified so far (each job counts once).
    pub fn verified_jobs(&self) -> u64 {
        self.verified_jobs.load(Ordering::Relaxed)
    }

    /// True when the bytes come from a live mmap rather than the heap
    /// fallback.
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// The raw payload bytes of `job_id`'s frame — a slice of the
    /// mapping, no copy. The frame's CRC32C is verified the first time
    /// the job is touched; later calls return the slice directly.
    pub fn job_payload(&self, job_id: &str) -> Result<&[u8], BinError> {
        let &i = self
            .by_id
            .get(job_id)
            .ok_or_else(|| BinError::Malformed(format!("job `{job_id}` is not in the trailer")))?;
        let entry = &self.jobs[i];
        let frame = &self.map[entry.offset..entry.offset + entry.len];
        let kind = frame[0];
        if kind != FRAME_JOB {
            return Err(BinError::BadFrameKind {
                offset: entry.offset,
                kind,
            });
        }
        let payload_len =
            u32::from_le_bytes(frame[1..5].try_into().expect("4-byte slice")) as usize;
        if payload_len + FRAME_OVERHEAD != entry.len {
            return Err(BinError::Malformed(format!(
                "frame for job `{job_id}` declares {payload_len} payload bytes but the trailer \
                 reserves {}",
                entry.len
            )));
        }
        if self.verified[i].get().is_none() {
            let body_end = FRAME_HEADER_LEN + payload_len;
            let stored = u32::from_le_bytes(frame[body_end..].try_into().expect("4-byte slice"));
            if crc32c(&frame[..body_end]) != stored {
                return Err(BinError::FrameChecksum {
                    offset: entry.offset,
                });
            }
            // Two threads racing on the first touch both verify; only
            // one set "wins", and the counter counts each job once.
            if self.verified[i].set(()).is_ok() {
                self.verified_jobs.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(&frame[FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len])
    }

    /// Decodes `job_id`'s payload into a [`JobArchive`] (CRC-verifying
    /// on first touch). This is the expensive step the serving layer
    /// defers until a query actually lands on the job.
    pub fn decode_job(&self, job_id: &str) -> Result<JobArchive, BinError> {
        let payload = self.job_payload(job_id)?;
        let mut pos = 0;
        let value = binfmt::decode_value(payload, &mut pos)?;
        if pos != payload.len() {
            return Err(BinError::TrailingBytes(payload.len() - pos));
        }
        let archive = JobArchive::from_value(&value)?;
        if archive.meta.job_id != job_id {
            return Err(BinError::Malformed(format!(
                "trailer names job `{job_id}` but the frame holds `{}`",
                archive.meta.job_id
            )));
        }
        self.decoded_jobs.fetch_add(1, Ordering::Relaxed);
        Ok(archive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use crate::store::ArchiveStore;
    use granula_model::{Actor, Mission, OperationTree};

    fn store_with(ids: &[&str]) -> ArchiveStore {
        let mut store = ArchiveStore::new().with_run(RunMeta::new("r0", 5, "zc"));
        for id in ids {
            let mut t = OperationTree::new();
            let root = t
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .unwrap();
            t.add_child(
                root,
                Actor::new("Worker", "1"),
                Mission::new("Compute", "0"),
            )
            .unwrap();
            store
                .add(JobArchive::new(
                    JobMeta {
                        job_id: (*id).into(),
                        platform: "Giraph".into(),
                        algorithm: "BFS".into(),
                        dataset: "dg".into(),
                        nodes: 4,
                        model: "m".into(),
                    },
                    t,
                ))
                .unwrap();
        }
        store
    }

    fn save_tmp(name: &str, bytes: &[u8]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("granula-zc-{name}-{}.gar", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn open_decodes_nothing_and_queries_decode_one_job() {
        let store = store_with(&["a", "b", "c"]);
        let path = save_tmp("lazy", &crate::binfmt::store_to_bytes(&store));
        let mapped = MappedStore::open(&path).unwrap();
        assert_eq!(mapped.decoded_jobs(), 0, "open must not decode any job");
        assert_eq!(mapped.verified_jobs(), 0, "open must not touch job frames");
        assert_eq!(mapped.len(), 3);
        assert_eq!(mapped.run().run_id, "r0");

        let job = mapped.decode_job("b").unwrap();
        assert_eq!(job.meta.job_id, "b");
        assert_eq!(mapped.decoded_jobs(), 1, "one query decodes one job");
        assert_eq!(mapped.verified_jobs(), 1);
        // Second decode verifies nothing new.
        mapped.decode_job("b").unwrap();
        assert_eq!(mapped.verified_jobs(), 1, "CRC is paid once per job");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn decoded_job_matches_the_eager_loader() {
        let store = store_with(&["a", "b"]);
        let bytes = crate::binfmt::store_to_bytes(&store);
        let path = save_tmp("match", &bytes);
        let mapped = MappedStore::open(&path).unwrap();
        let eager = crate::binfmt::store_from_bytes(&bytes).unwrap();
        for id in ["a", "b"] {
            assert_eq!(&mapped.decode_job(id).unwrap(), eager.get(id).unwrap());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_job_fails_crc_but_others_keep_serving() {
        let store = store_with(&["a", "b"]);
        let bytes = crate::binfmt::store_to_bytes(&store);
        let frames = crate::binfmt::frame_table(&bytes).unwrap();
        let victim = frames
            .iter()
            .find(|f| f.job_id.as_deref() == Some("a"))
            .unwrap();
        let mut corrupt = bytes.clone();
        corrupt[victim.offset + FRAME_HEADER_LEN + 7] ^= 0x10;
        let path = save_tmp("crc", &corrupt);
        let mapped = MappedStore::open(&path).unwrap();
        assert!(matches!(
            mapped.decode_job("a"),
            Err(BinError::FrameChecksum { .. })
        ));
        // The failure is re-reported on every touch, never cached as ok.
        assert!(mapped.decode_job("a").is_err());
        assert_eq!(mapped.verified_jobs(), 0);
        // The undamaged job still serves.
        assert_eq!(mapped.decode_job("b").unwrap().meta.job_id, "b");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_archive_files_serve_with_empty_run() {
        let store = store_with(&["solo"]);
        let bytes = crate::binfmt::archive_to_bytes(store.get("solo").unwrap());
        let path = save_tmp("solo", &bytes);
        let mapped = MappedStore::open(&path).unwrap();
        assert!(mapped.run().is_empty());
        assert_eq!(mapped.decode_job("solo").unwrap().meta.job_id, "solo");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_versions_are_rejected() {
        let store = store_with(&["a"]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&crate::binfmt::MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        use serde::Serialize;
        crate::binfmt::encode_value(&store.to_value(), &mut bytes);
        let path = save_tmp("v2", &bytes);
        match MappedStore::open(&path) {
            Err(BinError::Malformed(msg)) => {
                assert!(msg.contains("v2"), "error names the version: {msg}")
            }
            other => panic!("v2 must be rejected, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_job_is_a_structured_error() {
        let store = store_with(&["a"]);
        let path = save_tmp("unknown", &crate::binfmt::store_to_bytes(&store));
        let mapped = MappedStore::open(&path).unwrap();
        assert!(mapped.decode_job("nope").is_err());
        assert!(!mapped.contains("nope"));
        let _ = std::fs::remove_file(&path);
    }
}
