//! The serving layer: an [`ArchiveStore`] wrapped with per-archive
//! secondary indexes, a query planner, and a bounded LRU result cache.
//!
//! The paper's archive is the artifact analysts interrogate *repeatedly*
//! (§3.3); GiViP serves many interactive queries over one collected
//! profile the same way. This engine makes the repeated-query path cheap:
//!
//! 1. indexes are built once, at [`add`](QueryEngine::add) /
//!    [`upsert`](QueryEngine::upsert) / [`load`](QueryEngine::load) time;
//! 2. each query is routed by the [`TreeIndex::plan`] planner to the
//!    smallest candidate list (mission-kind, actor-kind, or interval
//!    index) and falls back to the linear scans of [`crate::query`] when
//!    nothing applies;
//! 3. results are memoized in an LRU cache keyed by
//!    `(job, mode, canonical query text)` and invalidated per job on
//!    `add`/`upsert`.
//!
//! Indexed evaluation is observationally identical to the scans — same
//! ids, same (ascending) order — which the differential proptest suite
//! (`crates/archive/tests/differential.rs`) locks in.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use granula_model::{OpId, OperationTree};

use crate::archive::JobArchive;
use crate::binfmt::BinError;
use crate::index::{QueryPlan, TreeIndex};
use crate::lru::LruMap;
use crate::query::Query;
use crate::store::{ArchiveStore, DuplicateJobId};

/// How a query's path segments anchor to the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMode {
    /// Absolute path from the root ([`Query::select`] semantics).
    Select,
    /// Last segment anywhere, ancestors above it ([`Query::find_all`]).
    FindAll,
}

/// Cache/plan counters, reported by `granula-cli archive stat`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that had to be evaluated.
    pub cache_misses: u64,
    /// Cached results evicted by the LRU bound.
    pub evictions: u64,
    /// Cached results dropped by `add`/`upsert` invalidation.
    pub invalidations: u64,
    /// Evaluations routed through an index.
    pub indexed_queries: u64,
    /// Evaluations that fell back to the linear scan.
    pub scan_queries: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    job_id: String,
    mode: QueryMode,
    /// Canonical (lossless [`std::fmt::Display`]) query text.
    query: String,
}

/// Bounded LRU memo of query results, backed by the ordered
/// [`LruMap`]: victim selection is O(log capacity) instead of the
/// per-insert full scan (and double hash lookup) the first version paid.
/// The serving layer keeps one of these per shard, which puts `put` on
/// the miss path of every shard — see `crates/archive/src/lru.rs`.
#[derive(Debug)]
struct QueryCache {
    entries: LruMap<CacheKey, Arc<Vec<OpId>>>,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        QueryCache {
            entries: LruMap::new(capacity),
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<OpId>>> {
        self.entries.get(key).map(Arc::clone)
    }

    /// Inserts, returning `true` when an entry was evicted to make room.
    fn put(&mut self, key: CacheKey, result: Arc<Vec<OpId>>) -> bool {
        self.entries.insert(key, result)
    }

    /// Drops every cached result for one job; returns how many.
    fn invalidate_job(&mut self, job_id: &str) -> u64 {
        self.entries.retain(|k, _| k.job_id != job_id) as u64
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Default result-cache capacity (entries, not bytes: archive query
/// results are id lists, small relative to the archives themselves).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// An indexed, cached, persistable archive query engine.
#[derive(Debug)]
pub struct QueryEngine {
    store: ArchiveStore,
    indexes: HashMap<String, TreeIndex>,
    cache: QueryCache,
    stats: EngineStats,
}

impl Default for QueryEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryEngine {
    /// An empty engine with the default cache capacity.
    pub fn new() -> Self {
        Self::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An empty engine with an explicit cache bound.
    pub fn with_cache_capacity(capacity: usize) -> Self {
        QueryEngine {
            store: ArchiveStore::new(),
            indexes: HashMap::new(),
            cache: QueryCache::new(capacity),
            stats: EngineStats::default(),
        }
    }

    /// Wraps an existing store, indexing every archive.
    pub fn from_store(store: ArchiveStore) -> Self {
        let mut engine = Self::new();
        for archive in store.iter() {
            engine
                .indexes
                .insert(archive.meta.job_id.clone(), TreeIndex::build(&archive.tree));
        }
        engine.store = store;
        engine
    }

    /// Loads a persisted store ([`ArchiveStore::save`]) and indexes it.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BinError> {
        Ok(Self::from_store(ArchiveStore::load(path)?))
    }

    /// Persists the underlying store in the binary format. Indexes and
    /// cache are *not* serialized — they are derived state, rebuilt on
    /// [`load`](Self::load).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BinError> {
        self.store.save(path)
    }

    /// The wrapped store (read-only; mutations must go through the engine
    /// so indexes and cache stay consistent).
    pub fn store(&self) -> &ArchiveStore {
        &self.store
    }

    /// Adds an archive, building its index and invalidating any cached
    /// results under the same job id (a failed add changes nothing).
    pub fn add(&mut self, archive: JobArchive) -> Result<(), DuplicateJobId> {
        let job_id = archive.meta.job_id.clone();
        let index = TreeIndex::build(&archive.tree);
        self.store.add(archive)?;
        self.indexes.insert(job_id.clone(), index);
        self.stats.invalidations += self.cache.invalidate_job(&job_id);
        Ok(())
    }

    /// Adds or replaces an archive; cached results for the job id are
    /// invalidated and its index rebuilt.
    pub fn upsert(&mut self, archive: JobArchive) -> Option<JobArchive> {
        let job_id = archive.meta.job_id.clone();
        let index = TreeIndex::build(&archive.tree);
        let replaced = self.store.upsert(archive);
        self.indexes.insert(job_id.clone(), index);
        self.stats.invalidations += self.cache.invalidate_job(&job_id);
        replaced
    }

    /// The index of one archive, if the job id is known.
    pub fn index(&self, job_id: &str) -> Option<&TreeIndex> {
        self.indexes.get(job_id)
    }

    /// The plan the engine would use for `query` on `job_id` in `mode`.
    pub fn explain(&self, job_id: &str, query: &Query, mode: QueryMode) -> Option<QueryPlan> {
        self.indexes
            .get(job_id)
            .map(|idx| idx.plan_for(query, mode))
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of memoized results currently held.
    pub fn cached_results(&self) -> usize {
        self.cache.len()
    }

    /// Evaluates `query` through the planner without consulting or
    /// filling the result cache — the raw indexed path. Benchmarks use
    /// this to time plan + candidate evaluation in isolation;
    /// [`query`](Self::query) is the serving entry point.
    pub fn evaluate(&self, job_id: &str, query: &Query, mode: QueryMode) -> Option<Vec<OpId>> {
        let archive = self.store.get(job_id)?;
        Some(match self.indexes.get(job_id) {
            Some(idx) => match idx.candidates(&idx.plan_for(query, mode)) {
                Some(candidates) => evaluate_candidates(&archive.tree, query, mode, &candidates),
                None => scan(&archive.tree, query, mode),
            },
            None => scan(&archive.tree, query, mode),
        })
    }

    /// Evaluates `query` against the archive `job_id`, serving repeated
    /// queries from the cache. Returns `None` for an unknown job id.
    ///
    /// Results are identical — ids and order — to running the
    /// [`Query::select`]/[`Query::find_all`] scans directly.
    pub fn query(
        &mut self,
        job_id: &str,
        query: &Query,
        mode: QueryMode,
    ) -> Option<Arc<Vec<OpId>>> {
        let archive = self.store.get(job_id)?;
        let key = CacheKey {
            job_id: job_id.to_string(),
            mode,
            query: query.to_string(),
        };
        if let Some(hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return Some(hit);
        }
        self.stats.cache_misses += 1;
        let index = self.indexes.get(job_id);
        let result = Arc::new(match index {
            Some(idx) => {
                let plan = idx.plan_for(query, mode);
                match idx.candidates(&plan) {
                    Some(candidates) => {
                        self.stats.indexed_queries += 1;
                        evaluate_candidates(&archive.tree, query, mode, &candidates)
                    }
                    None => {
                        self.stats.scan_queries += 1;
                        scan(&archive.tree, query, mode)
                    }
                }
            }
            // An engine is never missing an index for a held archive, but
            // degrade to the scan rather than panic if it ever is.
            None => {
                self.stats.scan_queries += 1;
                scan(&archive.tree, query, mode)
            }
        });
        if self.cache.put(key, Arc::clone(&result)) {
            self.stats.evictions += 1;
        }
        Some(result)
    }
}

/// Evaluates `query` by the linear-scan oracle — shared with the sharded
/// serving layer ([`crate::shard`]), which must stay observationally
/// identical to this engine.
pub(crate) fn scan(tree: &OperationTree, query: &Query, mode: QueryMode) -> Vec<OpId> {
    match mode {
        QueryMode::Select => query.select(tree),
        QueryMode::FindAll => query.find_all(tree),
    }
}

/// Evaluates a query over an index-provided candidate list (ascending
/// ids). Each candidate is checked against the last segment and window,
/// then its ancestor chain against the leading segments — exactly the
/// semantics of the linear scans, restricted to the candidates.
pub(crate) fn evaluate_candidates(
    tree: &OperationTree,
    query: &Query,
    mode: QueryMode,
    candidates: &[OpId],
) -> Vec<OpId> {
    let _span = granula_trace::span!("archiving", "engine.indexed_eval");
    let last = query.segments.last().expect("parsed query has segments");
    let leading = &query.segments[..query.segments.len() - 1];
    let mut out = Vec::new();
    'op: for &id in candidates {
        let op = tree.op(id);
        if !last.matches(op) || !query.window_accepts(op) {
            continue;
        }
        let mut cur = op.parent;
        for seg in leading.iter().rev() {
            match cur {
                Some(pid) if seg.matches(tree.op(pid)) => cur = tree.op(pid).parent,
                _ => continue 'op,
            }
        }
        // `find_all` accepts any anchor; `select` additionally requires
        // the chain to consume the whole path ending at the root — i.e.
        // the op sits at depth `segments.len() - 1` on a fully-matching
        // root path.
        if mode == QueryMode::Select && cur.is_some() {
            continue;
        }
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission};

    fn archive(job_id: &str, supersteps: i64) -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        for s in 0..supersteps {
            let ss = t
                .add_child(
                    job,
                    Actor::new("Job", "0"),
                    Mission::new("Superstep", s.to_string()),
                )
                .unwrap();
            t.set_info(ss, Info::raw(names::START_TIME, InfoValue::Int(s * 100)))
                .unwrap();
            for w in 0..2 {
                t.add_child(
                    ss,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            }
        }
        JobArchive::new(
            JobMeta {
                job_id: job_id.into(),
                platform: "Giraph".into(),
                algorithm: "BFS".into(),
                dataset: "d".into(),
                nodes: 2,
                model: "m".into(),
            },
            t,
        )
    }

    fn queries() -> Vec<(Query, QueryMode)> {
        [
            ("Compute", QueryMode::FindAll),
            ("Superstep/Compute@Worker-1", QueryMode::FindAll),
            ("GiraphJob/Superstep/Compute", QueryMode::Select),
            ("GiraphJob/Superstep-2", QueryMode::Select),
            ("Superstep[100..300]", QueryMode::FindAll),
            ("*@Worker", QueryMode::FindAll),
            ("*-1", QueryMode::FindAll),
            ("Compute/Nope", QueryMode::FindAll),
        ]
        .into_iter()
        .map(|(s, m)| (Query::parse(s).unwrap(), m))
        .collect()
    }

    #[test]
    fn indexed_results_equal_scans() {
        // Big enough to clear the planner's SCAN_THRESHOLD so both access
        // paths are exercised; small trees legitimately always scan.
        let mut engine = QueryEngine::new();
        engine.add(archive("j", 100)).unwrap();
        let tree = engine.store().get("j").unwrap().tree.clone();
        for (q, mode) in queries() {
            let expected = scan(&tree, &q, mode);
            let got = engine.query("j", &q, mode).unwrap();
            assert_eq!(*got, expected, "query `{q}` ({mode:?})");
            // The cache-bypassing path agrees and leaves the stats alone.
            let stats = engine.stats();
            assert_eq!(engine.evaluate("j", &q, mode).unwrap(), expected);
            assert_eq!(engine.stats(), stats);
        }
        assert!(engine.stats().indexed_queries >= 2);
        assert!(engine.stats().scan_queries >= 5);
    }

    #[test]
    fn tiny_archives_always_take_the_scan_path() {
        let mut engine = QueryEngine::new();
        engine.add(archive("j", 5)).unwrap(); // 16 ops <= SCAN_THRESHOLD
        let tree = engine.store().get("j").unwrap().tree.clone();
        for (q, mode) in queries() {
            assert_eq!(*engine.query("j", &q, mode).unwrap(), scan(&tree, &q, mode));
        }
        assert_eq!(engine.stats().indexed_queries, 0);
        assert_eq!(engine.stats().scan_queries, queries().len() as u64);
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let mut engine = QueryEngine::new();
        engine.add(archive("j", 4)).unwrap();
        let q = Query::parse("Compute").unwrap();
        let a = engine.query("j", &q, QueryMode::FindAll).unwrap();
        let b = engine.query("j", &q, QueryMode::FindAll).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second evaluation must be the memo");
        let s = engine.stats();
        assert_eq!((s.cache_hits, s.cache_misses), (1, 1));
        // Same text, different mode: a distinct entry.
        engine.query("j", &q, QueryMode::Select).unwrap();
        assert_eq!(engine.stats().cache_misses, 2);
    }

    #[test]
    fn add_and_upsert_invalidate_only_that_job() {
        let mut engine = QueryEngine::new();
        engine.add(archive("a", 3)).unwrap();
        engine.add(archive("b", 3)).unwrap();
        let q = Query::parse("Compute").unwrap();
        engine.query("a", &q, QueryMode::FindAll).unwrap();
        engine.query("b", &q, QueryMode::FindAll).unwrap();
        assert_eq!(engine.cached_results(), 2);

        // Upserting `a` with a bigger tree must drop a's memo and serve
        // the fresh result.
        engine.upsert(archive("a", 6));
        assert_eq!(engine.cached_results(), 1);
        assert_eq!(engine.stats().invalidations, 1);
        let fresh = engine.query("a", &q, QueryMode::FindAll).unwrap();
        assert_eq!(fresh.len(), 12);
        // `b` is still cached.
        engine.query("b", &q, QueryMode::FindAll).unwrap();
        assert_eq!(engine.stats().cache_hits, 1);

        // A failed duplicate add leaves everything intact.
        assert!(engine.add(archive("b", 1)).is_err());
        assert_eq!(engine.query("b", &q, QueryMode::FindAll).unwrap().len(), 6);
    }

    #[test]
    fn lru_bound_evicts_least_recently_used() {
        let mut engine = QueryEngine::with_cache_capacity(2);
        engine.add(archive("j", 3)).unwrap();
        let q1 = Query::parse("Compute").unwrap();
        let q2 = Query::parse("Superstep").unwrap();
        let q3 = Query::parse("GiraphJob").unwrap();
        engine.query("j", &q1, QueryMode::FindAll).unwrap();
        engine.query("j", &q2, QueryMode::FindAll).unwrap();
        // Touch q1 so q2 is the LRU, then overflow.
        engine.query("j", &q1, QueryMode::FindAll).unwrap();
        engine.query("j", &q3, QueryMode::FindAll).unwrap();
        assert_eq!(engine.stats().evictions, 1);
        assert_eq!(engine.cached_results(), 2);
        // q1 survived; q2 was evicted.
        engine.query("j", &q1, QueryMode::FindAll).unwrap();
        assert_eq!(engine.stats().cache_hits, 2);
        engine.query("j", &q2, QueryMode::FindAll).unwrap();
        assert_eq!(engine.stats().cache_misses, 4);
    }

    #[test]
    fn unknown_job_is_none() {
        let mut engine = QueryEngine::new();
        let q = Query::parse("X").unwrap();
        assert!(engine.query("nope", &q, QueryMode::FindAll).is_none());
    }

    #[test]
    fn save_load_roundtrip_preserves_results() {
        let mut engine = QueryEngine::new();
        engine.add(archive("a", 4)).unwrap();
        engine.add(archive("b", 2)).unwrap();
        let path = std::env::temp_dir().join(format!("granula-engine-{}.gar", std::process::id()));
        engine.save(&path).unwrap();
        let mut loaded = QueryEngine::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(loaded.store().len(), 2);
        for (q, mode) in queries() {
            for job in ["a", "b"] {
                let x = engine.query(job, &q, mode).unwrap();
                let y = loaded.query(job, &q, mode).unwrap();
                assert_eq!(x, y, "job {job}, query `{q}`");
            }
        }
    }
}
