//! Best-effort recovery of corrupted `.gar` files.
//!
//! The strict reader ([`crate::binfmt::store_from_bytes`]) rejects a file
//! on the first integrity violation — the right behavior for CI and the
//! query path, where silently serving damaged data would be worse than
//! failing. But a crashed experiment run leaves real evidence behind:
//! every job whose frame still checksums is perfectly usable. This module
//! extracts it.
//!
//! Recovery uses two independent passes over a v3 file:
//!
//! 1. **Sequential walk** — frames are read in order from the header; a
//!    frame that fails its CRC is skipped by its declared length, and a
//!    frame whose declared length runs past the end of the file ends the
//!    walk (a torn tail). This recovers everything in front of the damage.
//! 2. **Trailer rescue** — the footer at the fixed end-of-file position
//!    points at the trailer's per-job offset table. When footer and
//!    trailer both verify, every job frame is re-checked *at its recorded
//!    offset*, which recovers intact frames *behind* a corrupt-length
//!    frame that desynced the walk.
//!
//! Together: a job is recovered **iff** its frame bytes verify — exactly
//! the guarantee the corruption proptests pin. Legacy v1/v2 files carry
//! no checksums, so they are either fully loadable (strict load succeeds)
//! or unrecoverable; the report says which.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::archive::JobArchive;
use crate::binfmt::{
    self, header_version, store_from_bytes, trailer_via_footer, BinError, FRAME_HEADER_LEN,
    FRAME_JOB, FRAME_RUN, FRAME_TRAILER, HEADER_LEN,
};
use crate::crc::crc32c;
use crate::store::{ArchiveStore, RunMeta};

/// One frame (or region) that could not be recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostFrame {
    /// Byte offset where the damage was detected.
    pub offset: usize,
    /// Job id, when the trailer identifies which job the frame held.
    pub job_id: Option<String>,
    /// Human-readable reason the frame was not recovered.
    pub reason: String,
}

/// What [`salvage_from_bytes`] managed to pull out of a `.gar` file.
#[derive(Debug)]
pub struct SalvageReport {
    /// Format version from the header (0 when the header itself is gone).
    pub version: u32,
    /// Everything that verified: run header (when recovered) + intact jobs.
    pub store: ArchiveStore,
    /// Job ids recovered, in frame order.
    pub recovered: Vec<String>,
    /// Frames or regions that did not survive.
    pub lost: Vec<LostFrame>,
    /// Whether the run-header frame verified.
    pub run_recovered: bool,
    /// Whether the trailer (and the footer pointing at it) verified.
    pub trailer_intact: bool,
    /// Number of jobs the trailer says the file held, when known.
    pub expected_jobs: Option<usize>,
    /// True when the strict reader accepted the file unchanged.
    pub clean: bool,
}

impl SalvageReport {
    /// True when nothing at all was pulled out of the file.
    pub fn is_total_loss(&self) -> bool {
        !self.clean && self.recovered.is_empty() && !self.run_recovered
    }

    /// Renders the fsck-style text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.clean {
            let _ = writeln!(
                out,
                "clean: format v{}, {} job(s), {}",
                self.version,
                self.store.len(),
                if self.version >= 3 {
                    "all checksums verified"
                } else {
                    "loads OK (legacy format, no checksums)"
                }
            );
            return out;
        }
        let _ = writeln!(
            out,
            "corrupt: format v{}, recovered {} job(s){}{}",
            self.version,
            self.recovered.len(),
            match self.expected_jobs {
                Some(n) => format!(" of {n}"),
                None => String::new(),
            },
            if self.run_recovered {
                ", run header intact"
            } else {
                ", run header lost"
            },
        );
        let _ = writeln!(
            out,
            "trailer: {}",
            if self.trailer_intact {
                "intact"
            } else {
                "unusable"
            }
        );
        for id in &self.recovered {
            let _ = writeln!(out, "  recovered job `{id}`");
        }
        for l in &self.lost {
            match &l.job_id {
                Some(id) => {
                    let _ = writeln!(out, "  LOST job `{id}` at byte {}: {}", l.offset, l.reason);
                }
                None => {
                    let _ = writeln!(out, "  LOST at byte {}: {}", l.offset, l.reason);
                }
            }
        }
        out
    }
}

/// Recovers everything recoverable from possibly-corrupt archive bytes.
/// Never panics and never errors: the worst input produces an empty
/// store and a report explaining why.
pub fn salvage_from_bytes(bytes: &[u8]) -> SalvageReport {
    // Fast path: an intact file needs no salvage.
    if let Ok(store) = store_from_bytes(bytes) {
        let version = header_version(bytes).unwrap_or(binfmt::BIN_FORMAT_VERSION);
        return SalvageReport {
            version,
            recovered: store.iter().map(|a| a.meta.job_id.clone()).collect(),
            run_recovered: !store.run().is_empty(),
            trailer_intact: version >= 3,
            expected_jobs: Some(store.len()),
            clean: true,
            lost: Vec::new(),
            store,
        };
    }

    let mut report = SalvageReport {
        version: 0,
        store: ArchiveStore::new(),
        recovered: Vec::new(),
        lost: Vec::new(),
        run_recovered: false,
        trailer_intact: false,
        expected_jobs: None,
        clean: false,
    };

    let version = match header_version(bytes) {
        Ok(v) => v,
        Err(e) => {
            report.lost.push(LostFrame {
                offset: 0,
                job_id: None,
                reason: format!("file header unusable: {e}"),
            });
            return report;
        }
    };
    report.version = version;

    if version < 3 {
        // Legacy formats have no checksums or frames: the strict load is
        // the only load, and it just failed.
        let err = store_from_bytes(bytes).expect_err("strict load failed above");
        report.lost.push(LostFrame {
            offset: HEADER_LEN,
            job_id: None,
            reason: format!("legacy v{version} payload has no checksums to salvage by: {err}"),
        });
        return report;
    }

    // Pass 1: sequential frame walk.
    let mut pos = HEADER_LEN;
    let mut trailer: Option<Vec<binfmt::TrailerEntry>> = None;
    while pos < bytes.len() {
        match try_frame(bytes, pos) {
            FrameCheck::Ok {
                kind,
                payload_start,
                payload_len,
                next,
            } => {
                let payload = &bytes[payload_start..payload_start + payload_len];
                match kind {
                    FRAME_RUN => match decode_frame_payload::<RunMeta>(payload) {
                        Ok(run) => {
                            report.store.set_run(run);
                            report.run_recovered = true;
                        }
                        Err(e) => report.lost.push(LostFrame {
                            offset: pos,
                            job_id: None,
                            reason: format!("run header frame undecodable: {e}"),
                        }),
                    },
                    FRAME_JOB => {
                        recover_job(payload, pos, &mut report);
                    }
                    FRAME_TRAILER => {
                        if let Ok(entries) = binfmt::decode_trailer(payload) {
                            trailer = Some(entries);
                        }
                        // Anything after the trailer is the footer; the
                        // walk is done either way.
                        break;
                    }
                    other => report.lost.push(LostFrame {
                        offset: pos,
                        job_id: None,
                        reason: format!("unknown frame kind 0x{other:02x}"),
                    }),
                }
                pos = next;
            }
            FrameCheck::BadChecksum { next } => {
                report.lost.push(LostFrame {
                    offset: pos,
                    job_id: None,
                    reason: "frame failed its CRC32C check".into(),
                });
                // The declared length may itself be the corrupted bytes;
                // if so this advance desyncs the walk and the trailer
                // rescue below takes over.
                pos = next;
            }
            FrameCheck::PastEnd => {
                report.lost.push(LostFrame {
                    offset: pos,
                    job_id: None,
                    reason: format!(
                        "torn tail: frame runs past end of file ({} byte(s) remain)",
                        bytes.len() - pos
                    ),
                });
                break;
            }
        }
    }

    // Pass 2: trailer rescue. Prefer the walk's trailer; fall back to the
    // footer, which survives mid-file damage.
    if trailer.is_none() {
        if let Ok((entries, _)) = trailer_via_footer(bytes) {
            trailer = Some(entries);
        }
    }
    if let Some(entries) = trailer {
        report.trailer_intact = true;
        report.expected_jobs = Some(entries.len());
        for e in &entries {
            if report.recovered.iter().any(|id| id == &e.job_id) {
                continue;
            }
            if let Some((FRAME_JOB, payload)) = try_frame_at(bytes, e.offset, e.len) {
                let before = report.recovered.len();
                recover_job(payload, e.offset, &mut report);
                if report.recovered.len() > before {
                    continue;
                }
            }
            annotate_loss(&mut report.lost, e.offset, &e.job_id);
        }
    }

    report
}

/// Decodes and adds one job frame payload; on failure records the loss.
fn recover_job(payload: &[u8], offset: usize, report: &mut SalvageReport) {
    match decode_frame_payload::<JobArchive>(payload) {
        Ok(archive) => {
            let id = archive.meta.job_id.clone();
            if report.store.add(archive).is_ok() {
                report.recovered.push(id);
            } else {
                report.lost.push(LostFrame {
                    offset,
                    job_id: Some(id),
                    reason: "duplicate job id".into(),
                });
            }
        }
        Err(e) => report.lost.push(LostFrame {
            offset,
            job_id: None,
            reason: format!("job frame undecodable: {e}"),
        }),
    }
}

fn decode_frame_payload<T: serde::Deserialize>(payload: &[u8]) -> Result<T, BinError> {
    let mut pos = 0;
    let value = binfmt::decode_value(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(BinError::TrailingBytes(payload.len() - pos));
    }
    Ok(T::from_value(&value)?)
}

enum FrameCheck {
    Ok {
        kind: u8,
        payload_start: usize,
        payload_len: usize,
        next: usize,
    },
    BadChecksum {
        next: usize,
    },
    PastEnd,
}

/// Checks the frame claimed at `pos` without trusting any of its bytes.
fn try_frame(bytes: &[u8], pos: usize) -> FrameCheck {
    let Some(header) = bytes.get(pos..pos + FRAME_HEADER_LEN) else {
        return FrameCheck::PastEnd;
    };
    let kind = header[0];
    let payload_len = u32::from_le_bytes(header[1..5].try_into().expect("4-byte slice")) as usize;
    let Some(payload_end) = pos
        .checked_add(FRAME_HEADER_LEN)
        .and_then(|p| p.checked_add(payload_len))
    else {
        return FrameCheck::PastEnd;
    };
    let Some(frame_end) = payload_end.checked_add(4) else {
        return FrameCheck::PastEnd;
    };
    if frame_end > bytes.len() {
        return FrameCheck::PastEnd;
    }
    let stored = u32::from_le_bytes(bytes[payload_end..frame_end].try_into().expect("4 bytes"));
    if crc32c(&bytes[pos..payload_end]) != stored {
        return FrameCheck::BadChecksum { next: frame_end };
    }
    FrameCheck::Ok {
        kind,
        payload_start: pos + FRAME_HEADER_LEN,
        payload_len,
        next: frame_end,
    }
}

/// CRC-verifies a frame at a trailer-recorded `(offset, len)` extent and
/// returns its kind and payload when intact.
fn try_frame_at(bytes: &[u8], offset: usize, len: usize) -> Option<(u8, &[u8])> {
    match try_frame(bytes, offset) {
        FrameCheck::Ok {
            kind,
            payload_start,
            payload_len,
            next,
        } if next - offset == len => {
            Some((kind, &bytes[payload_start..payload_start + payload_len]))
        }
        _ => None,
    }
}

/// Ensures a lost entry at `offset` names its job; adds one if the walk
/// never saw the region (desynced past it).
fn annotate_loss(lost: &mut Vec<LostFrame>, offset: usize, job_id: &str) {
    for l in lost.iter_mut() {
        if l.offset == offset && l.job_id.is_none() {
            l.job_id = Some(job_id.to_string());
            return;
        }
    }
    if !lost
        .iter()
        .any(|l| l.offset == offset && l.job_id.as_deref() == Some(job_id))
    {
        lost.push(LostFrame {
            offset,
            job_id: Some(job_id.to_string()),
            reason: "frame did not verify".into(),
        });
    }
}

impl ArchiveStore {
    /// Loads whatever can be recovered from `path`, however damaged.
    /// Only I/O failures (file missing, unreadable) are errors.
    pub fn salvage(path: impl AsRef<Path>) -> Result<SalvageReport, BinError> {
        Ok(salvage_from_bytes(&fs::read(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use crate::binfmt::{frame_table, store_to_bytes, FRAME_JOB};
    use crate::mutate;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn store_with_jobs(ids: &[&str]) -> ArchiveStore {
        let mut store = ArchiveStore::new().with_run(RunMeta::new("run-1", 1_000, "salvage-test"));
        for id in ids {
            let mut t = OperationTree::new();
            let root = t
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .unwrap();
            t.set_info(root, Info::raw(names::START_TIME, InfoValue::Int(0)))
                .unwrap();
            t.set_info(root, Info::raw(names::END_TIME, InfoValue::Int(1_000_000)))
                .unwrap();
            store
                .add(JobArchive::new(
                    JobMeta {
                        job_id: (*id).into(),
                        platform: "Giraph".into(),
                        algorithm: "BFS".into(),
                        dataset: "dg".into(),
                        nodes: 4,
                        model: "m".into(),
                    },
                    t,
                ))
                .unwrap();
        }
        store
    }

    #[test]
    fn pristine_file_is_clean() {
        let bytes = store_to_bytes(&store_with_jobs(&["a", "b", "c"]));
        let r = salvage_from_bytes(&bytes);
        assert!(r.clean);
        assert_eq!(r.recovered, ["a", "b", "c"]);
        assert!(r.lost.is_empty());
        assert!(r.run_recovered && r.trailer_intact);
        assert_eq!(r.expected_jobs, Some(3));
        assert!(r.render_text().starts_with("clean:"));
    }

    #[test]
    fn truncation_recovers_the_prefix_jobs() {
        let store = store_with_jobs(&["a", "b", "c"]);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        // Cut mid-way through the LAST job frame: jobs a and b survive.
        let last_job = frames.iter().rev().find(|f| f.kind == FRAME_JOB).unwrap();
        let mut cut = bytes.clone();
        mutate::truncate_at(&mut cut, last_job.offset + last_job.len / 2);
        let r = salvage_from_bytes(&cut);
        assert!(!r.clean);
        assert_eq!(r.recovered, ["a", "b"]);
        assert!(r.run_recovered);
        assert!(!r.trailer_intact, "trailer was cut off");
        assert!(r.lost.iter().any(|l| l.reason.contains("torn tail")));
    }

    #[test]
    fn bit_flip_in_one_job_loses_exactly_that_job() {
        let store = store_with_jobs(&["a", "b", "c"]);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let b_frame = frames
            .iter()
            .find(|f| f.job_id.as_deref() == Some("b"))
            .unwrap();
        let mut corrupt = bytes.clone();
        // Flip a payload bit (past the header+len bytes) so the declared
        // length stays sane and the walk stays in sync.
        mutate::flip_bit(
            &mut corrupt,
            ((b_frame.offset + FRAME_HEADER_LEN + 3) * 8) as u64,
        );
        let r = salvage_from_bytes(&corrupt);
        assert!(!r.clean);
        assert_eq!(r.recovered, ["a", "c"]);
        assert!(r.run_recovered && r.trailer_intact);
        assert_eq!(r.expected_jobs, Some(3));
        let lost_b = r
            .lost
            .iter()
            .find(|l| l.job_id.as_deref() == Some("b"))
            .expect("loss of `b` is reported by name");
        assert_eq!(lost_b.offset, b_frame.offset);
        assert!(r.render_text().contains("LOST job `b`"));
    }

    #[test]
    fn corrupted_frame_length_is_rescued_via_the_trailer() {
        let store = store_with_jobs(&["a", "b", "c"]);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let a_frame = frames
            .iter()
            .find(|f| f.job_id.as_deref() == Some("a"))
            .unwrap();
        let mut corrupt = bytes.clone();
        // Smash job a's length field: the sequential walk desyncs right
        // there, so jobs b and c are only reachable through the trailer.
        corrupt[a_frame.offset + 1] ^= 0xFF;
        corrupt[a_frame.offset + 2] ^= 0xFF;
        let r = salvage_from_bytes(&corrupt);
        assert!(!r.clean);
        assert!(r.trailer_intact, "footer-located trailer must survive");
        let mut rec = r.recovered.clone();
        rec.sort();
        assert_eq!(rec, ["b", "c"]);
        assert!(r.lost.iter().any(|l| l.job_id.as_deref() == Some("a")));
    }

    #[test]
    fn garbage_and_legacy_inputs_never_panic() {
        // Pure garbage.
        let r = salvage_from_bytes(&[0x13, 0x37, 0xFE, 0xFF]);
        assert!(r.is_total_loss());
        assert_eq!(r.version, 0);
        // Empty file.
        assert!(salvage_from_bytes(&[]).is_total_loss());
        // Legacy header with a torn payload: unrecoverable, reported as such.
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&crate::binfmt::MAGIC);
        legacy.extend_from_slice(&2u32.to_le_bytes());
        legacy.extend_from_slice(&[0x07, 0x05]); // object of 5 pairs, then EOF
        let r = salvage_from_bytes(&legacy);
        assert!(r.is_total_loss());
        assert_eq!(r.version, 2);
        assert!(r.lost[0].reason.contains("legacy v2"));
    }

    #[test]
    fn salvaged_store_resaves_cleanly() {
        let store = store_with_jobs(&["a", "b"]);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let a_frame = frames
            .iter()
            .find(|f| f.job_id.as_deref() == Some("a"))
            .unwrap();
        let mut corrupt = bytes.clone();
        corrupt[a_frame.offset + FRAME_HEADER_LEN + 2] ^= 0x01;
        let r = salvage_from_bytes(&corrupt);
        assert_eq!(r.recovered, ["b"]);
        // The repaired store is a valid, clean v3 file.
        let repaired = store_to_bytes(&r.store);
        let back = salvage_from_bytes(&repaired);
        assert!(back.clean);
        assert_eq!(back.recovered, ["b"]);
    }
}
