//! Versioned JSON envelope for sharing archives (requirement R2).
//!
//! Archives are the unit of sharing between analysts: the format carries a
//! version so future Granula releases can evolve the schema while still
//! reading old archives.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::archive::JobArchive;

/// Current archive format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors raised while encoding/decoding archive envelopes.
#[derive(Debug)]
pub enum FormatError {
    /// The envelope's version is newer than this library understands.
    UnsupportedVersion(u32),
    /// Underlying JSON error.
    Json(serde_json::Error),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "archive format version {v} is newer than supported {FORMAT_VERSION}"
                )
            }
            FormatError::Json(e) => write!(f, "archive JSON error: {e}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<serde_json::Error> for FormatError {
    fn from(e: serde_json::Error) -> Self {
        FormatError::Json(e)
    }
}

#[derive(Serialize, Deserialize)]
struct Envelope {
    format_version: u32,
    generator: String,
    archive: JobArchive,
}

/// Serializes an archive into the standardized JSON envelope.
pub fn to_json(archive: &JobArchive) -> Result<String, FormatError> {
    let env = Envelope {
        format_version: FORMAT_VERSION,
        generator: format!("granula-rs {}", env!("CARGO_PKG_VERSION")),
        archive: archive.clone(),
    };
    Ok(serde_json::to_string(&env)?)
}

/// Pretty-printed variant of [`to_json`] for human inspection.
pub fn to_json_pretty(archive: &JobArchive) -> Result<String, FormatError> {
    let env = Envelope {
        format_version: FORMAT_VERSION,
        generator: format!("granula-rs {}", env!("CARGO_PKG_VERSION")),
        archive: archive.clone(),
    };
    Ok(serde_json::to_string_pretty(&env)?)
}

/// Reads an archive from its JSON envelope, rejecting unknown versions.
pub fn from_json(json: &str) -> Result<JobArchive, FormatError> {
    let env: Envelope = serde_json::from_str(json)?;
    if env.format_version > FORMAT_VERSION {
        return Err(FormatError::UnsupportedVersion(env.format_version));
    }
    Ok(env.archive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn archive() -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(42)))
            .unwrap();
        t.set_info(
            job,
            Info::raw("Cpu", InfoValue::Series(vec![(0, 1.5), (10, 2.5)])),
        )
        .unwrap();
        JobArchive::new(
            JobMeta {
                job_id: "j".into(),
                ..Default::default()
            },
            t,
        )
    }

    #[test]
    fn json_roundtrip_preserves_archive() {
        let a = archive();
        let json = to_json(&a).unwrap();
        let b = from_json(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pretty_json_also_roundtrips() {
        let a = archive();
        let json = to_json_pretty(&a).unwrap();
        assert_eq!(from_json(&json).unwrap(), a);
    }

    #[test]
    fn future_version_rejected() {
        let a = archive();
        let json = to_json(&a)
            .unwrap()
            .replace("\"format_version\":1", "\"format_version\":99");
        match from_json(&json) {
            Err(FormatError::UnsupportedVersion(99)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_a_json_error() {
        assert!(matches!(from_json("not json"), Err(FormatError::Json(_))));
    }
}
