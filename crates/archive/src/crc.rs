//! CRC32C (Castagnoli) — the checksum guarding every frame of the
//! binary archive format ([`crate::binfmt`], format v3).
//!
//! Self-contained software implementation (the container has no registry
//! access, and the polynomial is short enough that a slice-by-one table
//! is plenty for archive-sized inputs): reflected polynomial
//! `0x82F63B78`, init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF` — the same
//! parameterization as `crc32c(3)`, iSCSI, and ext4, so archives can be
//! verified by standard external tooling.

/// The reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32C of `bytes` in one shot.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

/// Incremental CRC32C state, for checksumming a frame as it streams.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A fresh hasher (initial state `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The final checksum (applies the output XOR).
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from RFC 3720 (iSCSI) appendix B.4 and the
    /// canonical "123456789" check value.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 7, 500, 999, 1000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32c(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let data = b"granula archive frame payload";
        let base = crc32c(data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.to_vec();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), base, "flip {byte}:{bit} undetected");
            }
        }
    }
}
