//! Deterministic I/O fault injection for archive bytes.
//!
//! The salvage layer ([`crate::salvage`]) claims that *any* prefix,
//! bit-flip, or torn-write corruption of a `.gar` file is either loaded,
//! partially recovered, or rejected with a structured error — never a
//! panic, hang, or unbounded allocation. This module is the mutator that
//! proves it: seedable, reproducible corruptions over real archive bytes,
//! used by the corruption proptests, the `granula-cli archive fuzz` CI
//! smoke, and (being a plain `pub` module rather than test-only code)
//! reusable by the future serve daemon against mmap'd shards.

/// Truncates `bytes` to its first `at` bytes (a partial write that never
/// got past offset `at`). `at` past the end is a no-op.
pub fn truncate_at(bytes: &mut Vec<u8>, at: usize) {
    if at < bytes.len() {
        bytes.truncate(at);
    }
}

/// Flips one bit. `bit` indexes the whole buffer (`byte * 8 + bit_in_byte`)
/// and wraps modulo the buffer length, so any `u64` is a valid pick.
/// Empty buffers are left alone.
pub fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let bit = bit % (bytes.len() as u64 * 8);
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// A torn write: the prefix up to `at` is the new data, the tail is
/// whatever the disk held before — modeled as seeded garbage of the
/// original length. This is the classic crash-mid-overwrite shape that
/// non-atomic in-place writes produce.
pub fn torn_tail(bytes: &mut [u8], at: usize, garbage_seed: u64) {
    let mut rng = SplitMix64::new(garbage_seed);
    for b in bytes.iter_mut().skip(at) {
        *b = rng.next_u64() as u8;
    }
}

/// What [`Mutator::mutate`] did to the bytes, for failure reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// [`truncate_at`] at the given offset.
    Truncate(usize),
    /// [`flip_bit`] at the given buffer-wide bit indexes.
    FlipBits(Vec<u64>),
    /// [`torn_tail`] from the given offset with the given garbage seed.
    TornTail(usize, u64),
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mutation::Truncate(at) => write!(f, "truncate@{at}"),
            Mutation::FlipBits(bits) => write!(f, "flip{bits:?}"),
            Mutation::TornTail(at, seed) => write!(f, "torn@{at}(seed {seed:#x})"),
        }
    }
}

/// Seedable corruption generator: each call to [`mutate`](Self::mutate)
/// produces one corrupted copy of the base bytes and a description of
/// what was done. The sequence is a pure function of the seed.
#[derive(Debug)]
pub struct Mutator {
    rng: SplitMix64,
}

impl Mutator {
    /// A mutator with a deterministic corruption sequence per `seed`.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: SplitMix64::new(seed),
        }
    }

    /// One corrupted copy of `base`: a truncation, 1–8 bit flips, or a
    /// torn tail, weighted evenly.
    pub fn mutate(&mut self, base: &[u8]) -> (Vec<u8>, Mutation) {
        let mut bytes = base.to_vec();
        let len = base.len().max(1) as u64;
        let mutation = match self.rng.next_u64() % 3 {
            0 => {
                let at = (self.rng.next_u64() % len) as usize;
                truncate_at(&mut bytes, at);
                Mutation::Truncate(at)
            }
            1 => {
                let flips = 1 + (self.rng.next_u64() % 8) as usize;
                let bits: Vec<u64> = (0..flips).map(|_| self.rng.next_u64()).collect();
                for &bit in &bits {
                    flip_bit(&mut bytes, bit);
                }
                Mutation::FlipBits(bits)
            }
            _ => {
                let at = (self.rng.next_u64() % len) as usize;
                let seed = self.rng.next_u64();
                torn_tail(&mut bytes, at, seed);
                Mutation::TornTail(at, seed)
            }
        };
        (bytes, mutation)
    }
}

/// SplitMix64 — tiny, seedable, and good enough for corruption patterns.
/// Self-contained so the mutator stays dependency-free.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_clamps() {
        let mut b = vec![1, 2, 3, 4];
        truncate_at(&mut b, 10);
        assert_eq!(b, [1, 2, 3, 4]);
        truncate_at(&mut b, 2);
        assert_eq!(b, [1, 2]);
        truncate_at(&mut b, 0);
        assert!(b.is_empty());
        truncate_at(&mut b, 1); // empty stays empty
        assert!(b.is_empty());
    }

    #[test]
    fn flip_bit_is_an_involution_and_wraps() {
        let base = vec![0xAAu8; 16];
        let mut b = base.clone();
        flip_bit(&mut b, 7);
        assert_ne!(b, base);
        flip_bit(&mut b, 7);
        assert_eq!(b, base);
        // Index wraps modulo the bit length.
        flip_bit(&mut b, 16 * 8 + 3);
        assert_eq!(b[0], 0xAA ^ 0b1000);
        let mut empty: Vec<u8> = vec![];
        flip_bit(&mut empty, 42); // must not panic
    }

    #[test]
    fn torn_tail_keeps_the_prefix_and_is_deterministic() {
        let base: Vec<u8> = (0..64).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        torn_tail(&mut a, 20, 7);
        torn_tail(&mut b, 20, 7);
        assert_eq!(a, b, "same seed, same garbage");
        assert_eq!(a[..20], base[..20], "prefix intact");
        assert_eq!(a.len(), base.len(), "torn writes keep the file length");
        assert_ne!(a[20..], base[20..], "tail replaced");
        let mut c = base.clone();
        torn_tail(&mut c, 20, 8);
        assert_ne!(a, c, "different seed, different garbage");
    }

    #[test]
    fn mutator_sequences_are_reproducible() {
        let base: Vec<u8> = (0..=255).collect();
        let run = |seed| {
            let mut m = Mutator::new(seed);
            (0..32).map(|_| m.mutate(&base)).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        // All three mutation kinds appear in a short run.
        let kinds: std::collections::BTreeSet<u8> = run(42)
            .iter()
            .map(|(_, m)| match m {
                Mutation::Truncate(_) => 0,
                Mutation::FlipBits(_) => 1,
                Mutation::TornTail(..) => 2,
            })
            .collect();
        assert_eq!(kinds.len(), 3, "mutator mixes all corruption kinds");
    }
}
