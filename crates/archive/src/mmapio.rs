//! Read-only memory mapping of archive files.
//!
//! The zero-copy read path ([`crate::zerocopy::MappedStore`]) wants the
//! whole `.gar` file addressable as one `&[u8]` without reading it into
//! the heap: the format-v3 trailer records per-job byte extents, so a
//! cold archive can serve its first query by touching only the footer,
//! the trailer, and the one job frame the query needs. The kernel pages
//! the rest in lazily — or never.
//!
//! The workspace builds offline with no external crates, so the mapping
//! goes straight to the C library `mmap(2)`/`munmap(2)` symbols that the
//! standard library already links on Unix. On non-Unix targets (or when
//! the map syscall fails — e.g. an empty file, or a filesystem that
//! refuses mappings) the type degrades to an ordinary heap read with the
//! same API; callers only lose the laziness, never correctness.
//!
//! ## Safety
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the memory is never
//! written through, and file writes by *other* processes are not
//! expected — served archives are immutable artifacts (every writer in
//! this workspace goes through [`crate::durable::write_atomic`], which
//! replaces the file by rename rather than writing in place, so an
//! existing mapping keeps seeing the old, complete bytes). Truncating a
//! mapped file out from under the process would raise `SIGBUS` on
//! access, as with any mmap consumer; the serve daemon documents that
//! archives must not be truncated in place while served.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        // `mmap(2)` / `munmap(2)` as exposed by the C library the Rust
        // standard library links. On 64-bit Unix `off_t` is `i64` and
        // `size_t` is `usize`, so these signatures match both glibc and
        // musl; the module is compiled only for 64-bit Unix targets.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// `MAP_FAILED` is `(void*)-1`.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

#[derive(Debug)]
enum Backing {
    /// A live `mmap` region, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Map {
        ptr: std::ptr::NonNull<u8>,
        len: usize,
    },
    /// Heap fallback: the file was read eagerly.
    Heap(Vec<u8>),
}

/// A file's bytes, memory-mapped when the platform allows it.
#[derive(Debug)]
pub struct Mapped {
    backing: Backing,
}

// SAFETY: the mapped region is read-only for the whole lifetime of the
// value (PROT_READ, never remapped), so shared references to its bytes
// are safe to send and share across threads; the heap variant is a Vec.
unsafe impl Send for Mapped {}
unsafe impl Sync for Mapped {}

impl Mapped {
    /// Maps `path` read-only, falling back to a heap read when mapping
    /// is unavailable (non-Unix target, empty file, or syscall failure).
    pub fn open(path: impl AsRef<Path>) -> io::Result<Mapped> {
        let path = path.as_ref();
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 && len <= usize::MAX as u64 {
                let len = len as usize;
                // SAFETY: fd is a freshly opened, owned file; length is
                // its current size; PROT_READ/MAP_PRIVATE never allows a
                // write through this mapping. The fd may be closed after
                // mmap returns — the mapping keeps the file referenced.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != sys::map_failed() {
                    if let Some(ptr) = std::ptr::NonNull::new(ptr.cast::<u8>()) {
                        return Ok(Mapped {
                            backing: Backing::Map { ptr, len },
                        });
                    }
                }
            }
            drop(file);
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            // Keep the signature identical across platforms.
            let _ = File::open(path)?;
        }
        Ok(Mapped {
            backing: Backing::Heap(std::fs::read(path)?),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: ptr/len came from a successful PROT_READ mmap that
            // lives exactly as long as `self` (unmapped only in Drop).
            Backing::Map { ptr, len } => unsafe { std::slice::from_raw_parts(ptr.as_ptr(), *len) },
            Backing::Heap(v) => v,
        }
    }

    /// Byte length of the file.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the bytes come from a live memory mapping rather than
    /// the heap fallback — i.e. reads are demand-paged, not pre-read.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map { .. } => true,
            Backing::Heap(_) => false,
        }
    }
}

impl Drop for Mapped {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Map { ptr, len } => {
                // SAFETY: exactly the region returned by mmap in `open`,
                // unmapped once; no slice into it can outlive `self`.
                unsafe {
                    sys::munmap(ptr.as_ptr().cast(), *len);
                }
            }
            Backing::Heap(_) => {}
        }
    }
}

impl Deref for Mapped {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("granula-mmap-{name}-{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = tmp("exact");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let m = Mapped::open(&path).unwrap();
        assert_eq!(m.bytes(), payload.as_slice());
        assert_eq!(m.len(), payload.len());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(m.is_mapped(), "64-bit unix must take the mmap path");
        drop(m);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_degrades_to_heap() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let m = Mapped::open(&path).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped(), "zero-length mappings are invalid");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mapped::open(tmp("missing-never-created")).is_err());
    }

    #[test]
    fn mapping_survives_concurrent_readers() {
        let path = tmp("threads");
        let payload = vec![0xA5u8; 1 << 16];
        std::fs::write(&path, &payload).unwrap();
        let m = std::sync::Arc::new(Mapped::open(&path).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || m.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0xA5u64 * (1 << 16));
        }
        let _ = std::fs::remove_file(&path);
    }
}
