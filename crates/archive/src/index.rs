//! Secondary indexes over one archived operation tree, plus the query
//! planner that routes a parsed [`Query`] to the cheapest access path.
//!
//! Granula archives are interrogated repeatedly (paper §3.3: analysts
//! "query the contents systematically"), so every `KindPattern` query
//! answered by a full linear scan is wasted work after the first one. A
//! [`TreeIndex`] is built once per archive — at `add`/`upsert`/`load`
//! time in the [`crate::engine::QueryEngine`] — and holds three access
//! paths:
//!
//! * **mission-kind index** — mission kind → operation ids;
//! * **actor-kind index** — actor kind → operation ids;
//! * **interval index** — all timestamped operations sorted by start
//!   time, for `[start..end]` window queries.
//!
//! All candidate lists store ids in ascending order, so an index-driven
//! evaluation emits results in exactly the order the linear scans in
//! [`crate::query`] produce — the differential test suite pins this.

use std::collections::HashMap;
use std::fmt;

use granula_model::{OpId, OperationTree};

use crate::engine::QueryMode;
use crate::query::{Query, Segment, TimeWindow};

/// Trees at or below this operation count always plan to the linear
/// scan: on tiny archives, choosing a plan and materializing a candidate
/// list costs more than walking the whole tree (measured in
/// `BENCH_archive.json`, `tiny` group — the PR-5 small-query regression).
pub const SCAN_THRESHOLD: usize = 128;

/// An index path must shrink the work by at least this factor to beat
/// the scan: each candidate pays an ancestor-chain walk, so a candidate
/// list covering most of the tree is slower than visiting every
/// operation once.
pub const SCAN_FALLBACK_FACTOR: usize = 2;

/// Secondary indexes for one operation tree.
#[derive(Debug, Clone, Default)]
pub struct TreeIndex {
    /// Mission kind → operation ids, ascending.
    by_mission_kind: HashMap<String, Vec<OpId>>,
    /// Actor kind → operation ids, ascending.
    by_actor_kind: HashMap<String, Vec<OpId>>,
    /// `(start_us, id)` of every operation with a start time, sorted.
    by_start: Vec<(u64, OpId)>,
    /// Number of operations in the indexed tree.
    ops: usize,
}

impl TreeIndex {
    /// Builds all indexes in one pass over the tree.
    pub fn build(tree: &OperationTree) -> Self {
        let _span = granula_trace::span!("archiving", "index.build");
        let mut idx = TreeIndex {
            ops: tree.len(),
            ..TreeIndex::default()
        };
        for op in tree.iter() {
            idx.by_mission_kind
                .entry(op.mission.kind.clone())
                .or_default()
                .push(op.id);
            idx.by_actor_kind
                .entry(op.actor.kind.clone())
                .or_default()
                .push(op.id);
            if let Some(s) = op.start_us() {
                idx.by_start.push((s, op.id));
            }
        }
        // `tree.iter()` is ascending-id, so the kind lists are already
        // sorted; the interval index orders by start time.
        idx.by_start.sort_unstable();
        idx
    }

    /// Candidate ids for a mission kind (ascending), if indexed.
    pub fn mission_kind(&self, kind: &str) -> Option<&[OpId]> {
        self.by_mission_kind.get(kind).map(Vec::as_slice)
    }

    /// Candidate ids for an actor kind (ascending), if indexed.
    pub fn actor_kind(&self, kind: &str) -> Option<&[OpId]> {
        self.by_actor_kind.get(kind).map(Vec::as_slice)
    }

    /// Ids of operations whose start time falls in `window`, ascending by
    /// id.
    pub fn started_in(&self, window: TimeWindow) -> Vec<OpId> {
        let lo = window.start_us.unwrap_or(0);
        let from = self.by_start.partition_point(|&(s, _)| s < lo);
        let to = match window.end_us {
            Some(hi) => self.by_start.partition_point(|&(s, _)| s < hi),
            None => self.by_start.len(),
        };
        // A reversed window (`hi <= lo`) selects nothing, like the oracle.
        let mut ids: Vec<OpId> = self.by_start[from..to.max(from)]
            .iter()
            .map(|&(_, id)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// How many operations a window selects (without materializing them).
    fn window_cardinality(&self, window: TimeWindow) -> usize {
        let lo = window.start_us.unwrap_or(0);
        let from = self.by_start.partition_point(|&(s, _)| s < lo);
        let to = match window.end_us {
            Some(hi) => self.by_start.partition_point(|&(s, _)| s < hi),
            None => self.by_start.len(),
        };
        to.saturating_sub(from)
    }

    /// Number of operations in the indexed tree.
    pub fn num_ops(&self) -> usize {
        self.ops
    }

    /// Number of distinct mission kinds.
    pub fn num_mission_kinds(&self) -> usize {
        self.by_mission_kind.len()
    }

    /// Number of distinct actor kinds.
    pub fn num_actor_kinds(&self) -> usize {
        self.by_actor_kind.len()
    }

    /// Number of timestamped operations in the interval index.
    pub fn num_timestamped(&self) -> usize {
        self.by_start.len()
    }

    /// Picks the cheapest access path for a query. The deciding segment is
    /// the *last* one (both `select` and `find_all` constrain ancestors
    /// from the last segment upward), so its patterns select the candidate
    /// list; the smallest available list wins.
    pub fn plan(&self, query: &Query) -> QueryPlan {
        let last: &Segment = query.segments.last().expect("parsed query has segments");
        let mut best = QueryPlan::FullScan { ops: self.ops };
        let mut best_card = self.ops;
        if let Some(kind) = last.mission.kind.as_deref() {
            let card = self.mission_kind(kind).map_or(0, <[OpId]>::len);
            if card <= best_card {
                best = QueryPlan::MissionKindIndex {
                    kind: kind.to_string(),
                    candidates: card,
                };
                best_card = card;
            }
        }
        if let Some(kind) = last.actor.kind.as_deref() {
            let card = self.actor_kind(kind).map_or(0, <[OpId]>::len);
            if card < best_card {
                best = QueryPlan::ActorKindIndex {
                    kind: kind.to_string(),
                    candidates: card,
                };
                best_card = card;
            }
        }
        if let Some(window) = query.window {
            let card = self.window_cardinality(window);
            if card < best_card {
                best = QueryPlan::IntervalIndex {
                    window,
                    candidates: card,
                };
            }
        }
        best
    }

    /// Cost-aware planning: [`plan`](Self::plan) plus the scan-fallback
    /// rules that fix the tiny-query regression measured in PR 5.
    ///
    /// * Trees of at most [`SCAN_THRESHOLD`] operations plan to the
    ///   scan — the fixed planning/materialization overhead dominates.
    /// * [`QueryMode::Select`] queries without a time window plan to the
    ///   scan: an anchored path walk only descends children matching the
    ///   leading segments, which is never more work than filtering a
    ///   kind candidate list through per-candidate ancestor walks.
    /// * A candidate list must be at least [`SCAN_FALLBACK_FACTOR`]×
    ///   smaller than the tree, otherwise the scan wins.
    ///
    /// Results are identical either way — only the access path changes.
    pub fn plan_for(&self, query: &Query, mode: QueryMode) -> QueryPlan {
        let scan = QueryPlan::FullScan { ops: self.ops };
        if self.ops <= SCAN_THRESHOLD {
            return scan;
        }
        if mode == QueryMode::Select && query.window.is_none() {
            return scan;
        }
        let plan = self.plan(query);
        if !matches!(plan, QueryPlan::FullScan { .. })
            && plan.cardinality().saturating_mul(SCAN_FALLBACK_FACTOR) >= self.ops
        {
            return scan;
        }
        plan
    }

    /// Materializes the candidate list of a plan, ascending by id.
    pub fn candidates(&self, plan: &QueryPlan) -> Option<Vec<OpId>> {
        match plan {
            QueryPlan::MissionKindIndex { kind, .. } => {
                Some(self.mission_kind(kind).unwrap_or(&[]).to_vec())
            }
            QueryPlan::ActorKindIndex { kind, .. } => {
                Some(self.actor_kind(kind).unwrap_or(&[]).to_vec())
            }
            QueryPlan::IntervalIndex { window, .. } => Some(self.started_in(*window)),
            QueryPlan::FullScan { .. } => None,
        }
    }
}

/// The access path chosen for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPlan {
    /// Walk the mission-kind candidate list.
    MissionKindIndex {
        /// The indexed mission kind.
        kind: String,
        /// Candidate-list length.
        candidates: usize,
    },
    /// Walk the actor-kind candidate list.
    ActorKindIndex {
        /// The indexed actor kind.
        kind: String,
        /// Candidate-list length.
        candidates: usize,
    },
    /// Binary-search the interval index.
    IntervalIndex {
        /// The window driving the range scan.
        window: TimeWindow,
        /// Candidate count inside the window.
        candidates: usize,
    },
    /// No index applies; fall back to the linear scan.
    FullScan {
        /// Operations the scan will visit.
        ops: usize,
    },
}

impl QueryPlan {
    /// How many operations the plan will examine.
    pub fn cardinality(&self) -> usize {
        match self {
            QueryPlan::MissionKindIndex { candidates, .. }
            | QueryPlan::ActorKindIndex { candidates, .. }
            | QueryPlan::IntervalIndex { candidates, .. } => *candidates,
            QueryPlan::FullScan { ops } => *ops,
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryPlan::MissionKindIndex { kind, candidates } => {
                write!(f, "mission-kind index `{kind}` ({candidates} candidates)")
            }
            QueryPlan::ActorKindIndex { kind, candidates } => {
                write!(f, "actor-kind index `{kind}` ({candidates} candidates)")
            }
            QueryPlan::IntervalIndex { candidates, .. } => {
                write!(f, "interval index ({candidates} candidates)")
            }
            QueryPlan::FullScan { ops } => write!(f, "full scan ({ops} operations)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{names, Actor, Info, InfoValue, Mission};

    fn tree() -> OperationTree {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        for s in 0..3 {
            let ss = t
                .add_child(
                    job,
                    Actor::new("Job", "0"),
                    Mission::new("Superstep", s.to_string()),
                )
                .unwrap();
            t.set_info(
                ss,
                Info::raw(names::START_TIME, InfoValue::Int(1_000 * s as i64)),
            )
            .unwrap();
            for w in 0..2 {
                t.add_child(
                    ss,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            }
        }
        t
    }

    #[test]
    fn kind_lists_are_ascending_and_complete() {
        let t = tree();
        let idx = TreeIndex::build(&t);
        let computes = idx.mission_kind("Compute").unwrap();
        assert_eq!(computes.len(), 6);
        assert!(computes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(idx.actor_kind("Worker").unwrap().len(), 6);
        assert_eq!(idx.mission_kind("Nope"), None);
        assert_eq!(idx.num_ops(), t.len());
        assert_eq!(idx.num_timestamped(), 3);
    }

    #[test]
    fn interval_index_respects_half_open_bounds() {
        let idx = TreeIndex::build(&tree());
        let w = |a: Option<u64>, b: Option<u64>| TimeWindow {
            start_us: a,
            end_us: b,
        };
        assert_eq!(idx.started_in(w(None, None)).len(), 3);
        assert_eq!(idx.started_in(w(Some(0), Some(1_000))).len(), 1);
        assert_eq!(idx.started_in(w(Some(1_000), None)).len(), 2);
        assert_eq!(idx.started_in(w(Some(2_001), None)).len(), 0);
        assert_eq!(idx.window_cardinality(w(Some(0), Some(2_001))), 3);
    }

    #[test]
    fn reversed_window_selects_nothing() {
        let idx = TreeIndex::build(&tree());
        // `[hi..lo]` with hi > lo: the scan oracle matches nothing, so the
        // index must agree instead of underflowing `to - from`.
        let w = TimeWindow {
            start_us: Some(2_000),
            end_us: Some(500),
        };
        assert_eq!(idx.started_in(w).len(), 0);
        assert_eq!(idx.window_cardinality(w), 0);
    }

    #[test]
    fn planner_picks_smallest_candidate_list() {
        let idx = TreeIndex::build(&tree());

        // Mission kind beats full scan.
        let q = Query::parse("Superstep").unwrap();
        assert_eq!(
            idx.plan(&q),
            QueryPlan::MissionKindIndex {
                kind: "Superstep".into(),
                candidates: 3
            }
        );

        // A narrow window beats a wide kind list.
        let q = Query::parse("Superstep[0..500]").unwrap();
        assert!(matches!(
            idx.plan(&q),
            QueryPlan::IntervalIndex { candidates: 1, .. }
        ));

        // Wildcard mission falls back to the actor index.
        let q = Query::parse("*@Job").unwrap();
        assert!(matches!(
            idx.plan(&q),
            QueryPlan::ActorKindIndex { candidates: 4, .. }
        ));

        // Nothing indexable: full scan.
        let q = Query::parse("*-1").unwrap();
        assert_eq!(idx.plan(&q), QueryPlan::FullScan { ops: 10 });

        // Unknown kind plans to an empty candidate list, not a scan.
        let q = Query::parse("Nope").unwrap();
        assert_eq!(idx.plan(&q).cardinality(), 0);
    }

    #[test]
    fn cost_threshold_plans_tiny_trees_to_scan() {
        let idx = TreeIndex::build(&tree()); // 10 ops, under SCAN_THRESHOLD
        for (text, mode) in [
            ("Superstep", QueryMode::FindAll),
            ("Superstep[0..500]", QueryMode::FindAll),
            ("GiraphJob/Superstep", QueryMode::Select),
        ] {
            let q = Query::parse(text).unwrap();
            assert_eq!(
                idx.plan_for(&q, mode),
                QueryPlan::FullScan { ops: 10 },
                "tiny tree, query `{text}`"
            );
        }
        // The raw planner stays cost-blind; the threshold lives in plan_for.
        assert!(matches!(
            idx.plan(&Query::parse("Superstep").unwrap()),
            QueryPlan::MissionKindIndex { .. }
        ));
    }

    #[test]
    fn cost_aware_planner_keeps_only_selective_paths_on_large_trees() {
        // 1 root + 200 supersteps + 400 computes = 601 ops.
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        for s in 0..200 {
            let ss = t
                .add_child(
                    job,
                    Actor::new("Job", "0"),
                    Mission::new("Superstep", s.to_string()),
                )
                .unwrap();
            t.set_info(
                ss,
                Info::raw(names::START_TIME, InfoValue::Int(100 * s as i64)),
            )
            .unwrap();
            for w in 0..2 {
                t.add_child(
                    ss,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", "0"),
                )
                .unwrap();
            }
        }
        let idx = TreeIndex::build(&t);

        // Selective kind list: indexed.
        let q = Query::parse("Superstep").unwrap();
        assert!(matches!(
            idx.plan_for(&q, QueryMode::FindAll),
            QueryPlan::MissionKindIndex {
                candidates: 200,
                ..
            }
        ));

        // Unselective kind list (400 of 601 ops): the scan wins.
        let q = Query::parse("Compute").unwrap();
        assert_eq!(
            idx.plan_for(&q, QueryMode::FindAll),
            QueryPlan::FullScan { ops: 601 }
        );

        // Anchored select without a window: the path walk wins.
        let q = Query::parse("GiraphJob/Superstep").unwrap();
        assert_eq!(
            idx.plan_for(&q, QueryMode::Select),
            QueryPlan::FullScan { ops: 601 }
        );

        // A narrow window stays indexed even for selects.
        let q = Query::parse("GiraphJob/Superstep[0..500]").unwrap();
        assert!(matches!(
            idx.plan_for(&q, QueryMode::Select),
            QueryPlan::IntervalIndex { candidates: 5, .. }
        ));
    }

    #[test]
    fn candidates_match_plan() {
        let idx = TreeIndex::build(&tree());
        let q = Query::parse("Compute@Worker").unwrap();
        let plan = idx.plan(&q);
        let c = idx.candidates(&plan).unwrap();
        assert_eq!(c.len(), plan.cardinality());
        let scan_plan = QueryPlan::FullScan { ops: 10 };
        assert!(idx.candidates(&scan_plan).is_none());
    }
}
