//! One job's performance archive: metadata plus the operation tree.

use serde::{Deserialize, Serialize};

use granula_model::{names, OpId, Operation, OperationTree};

/// Descriptive metadata of the archived job.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobMeta {
    /// Unique id of the job run, e.g. `"giraph-bfs-dg1000-r0"`.
    pub job_id: String,
    /// Platform under test, e.g. `"Giraph"`.
    pub platform: String,
    /// Algorithm executed, e.g. `"BFS"`.
    pub algorithm: String,
    /// Dataset identifier, e.g. `"dg1000"`.
    pub dataset: String,
    /// Number of compute nodes used.
    pub nodes: u32,
    /// Name of the performance model the archive was assembled under.
    pub model: String,
}

/// The performance archive of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobArchive {
    /// Job metadata.
    pub meta: JobMeta,
    /// The assembled operation hierarchy with all infos.
    pub tree: OperationTree,
}

impl JobArchive {
    /// Wraps an operation tree with metadata.
    pub fn new(meta: JobMeta, tree: OperationTree) -> Self {
        JobArchive { meta, tree }
    }

    /// The root (job) operation.
    pub fn job(&self) -> Option<&Operation> {
        self.tree.root().map(|r| self.tree.op(r))
    }

    /// Total job runtime in microseconds: the root's duration, falling back
    /// to the span of all timestamped operations.
    pub fn total_runtime_us(&self) -> Option<u64> {
        if let Some(d) = self.job().and_then(|j| j.duration_us()) {
            return Some(d);
        }
        self.tree.span_us().map(|(s, e)| e - s)
    }

    /// Sums `Duration` over all operations with the given mission kind.
    /// For iterative operations (e.g. supersteps) this is the aggregated
    /// runtime the paper uses for `ProcessGraph`.
    pub fn total_duration_of_us(&self, mission_kind: &str) -> u64 {
        self.tree
            .by_mission_kind(mission_kind)
            .filter_map(|o| o.duration_us())
            .sum()
    }

    /// All `(operation, value)` pairs carrying an info with the given name.
    pub fn infos_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a Operation, &'a granula_model::InfoValue)> {
        self.tree
            .iter()
            .filter_map(move |o| o.info_value(name).map(|v| (o, v)))
    }

    /// Fraction of the job runtime spent in `mission_kind` (summed over all
    /// instances); `None` when the job has no runtime.
    pub fn runtime_fraction(&self, mission_kind: &str) -> Option<f64> {
        let total = self.total_runtime_us()? as f64;
        if total <= 0.0 {
            return None;
        }
        Some(self.total_duration_of_us(mission_kind) as f64 / total)
    }

    /// Number of operations in the archive.
    pub fn num_operations(&self) -> usize {
        self.tree.len()
    }

    /// Number of info records across all operations.
    pub fn num_infos(&self) -> usize {
        self.tree.iter().map(|o| o.infos.len()).sum()
    }

    /// Ids of operations missing an `EndTime` — evidence of lost log events
    /// or a crashed operation; useful for failure diagnosis.
    pub fn unclosed_operations(&self) -> Vec<OpId> {
        self.tree
            .iter()
            .filter(|o| o.info(names::START_TIME).is_some() && o.info(names::END_TIME).is_none())
            .map(|o| o.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{Actor, Info, InfoValue, Mission};

    fn archive() -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(1_000_000)))
            .unwrap();
        for (i, (s, e)) in [(0i64, 300_000i64), (300_000, 400_000)].iter().enumerate() {
            let ss = t
                .add_child(
                    job,
                    Actor::new("Job", "0"),
                    Mission::new("Superstep", i.to_string()),
                )
                .unwrap();
            t.set_info(ss, Info::raw(names::START_TIME, InfoValue::Int(*s)))
                .unwrap();
            t.set_info(ss, Info::raw(names::END_TIME, InfoValue::Int(*e)))
                .unwrap();
        }
        JobArchive::new(
            JobMeta {
                job_id: "j0".into(),
                platform: "Giraph".into(),
                algorithm: "BFS".into(),
                dataset: "dgX".into(),
                nodes: 8,
                model: "giraph-v1".into(),
            },
            t,
        )
    }

    #[test]
    fn total_runtime_is_root_duration() {
        assert_eq!(archive().total_runtime_us(), Some(1_000_000));
    }

    #[test]
    fn mission_kind_durations_aggregate_iterations() {
        let a = archive();
        assert_eq!(a.total_duration_of_us("Superstep"), 400_000);
        assert_eq!(a.runtime_fraction("Superstep"), Some(0.4));
    }

    #[test]
    fn unclosed_operations_detected() {
        let mut a = archive();
        let root = a.tree.root().unwrap();
        let dangling = a
            .tree
            .add_child(
                root,
                Actor::new("Worker", "9"),
                Mission::new("Compute", "0"),
            )
            .unwrap();
        a.tree
            .set_info(dangling, Info::raw(names::START_TIME, InfoValue::Int(5)))
            .unwrap();
        assert_eq!(a.unclosed_operations(), vec![dangling]);
    }

    #[test]
    fn counts() {
        let a = archive();
        assert_eq!(a.num_operations(), 3);
        assert_eq!(a.num_infos(), 6);
    }

    #[test]
    fn runtime_fraction_none_for_empty_tree() {
        let a = JobArchive::new(JobMeta::default(), OperationTree::new());
        assert_eq!(a.runtime_fraction("X"), None);
    }
}
