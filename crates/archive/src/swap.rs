//! Epoch-stamped `Arc` swapping for lock-free steady-state reads.
//!
//! The serving layer ([`crate::shard`]) publishes each shard as an
//! immutable snapshot behind an `Arc`; writers replace the whole `Arc`
//! rather than mutating in place, so readers never see a half-updated
//! shard. The question is how readers *get* the current `Arc` cheaply.
//! A bare `RwLock<Arc<T>>` makes every read take the lock — exactly the
//! contention point a many-client server must avoid.
//!
//! [`ArcCell`] pairs the slot with a monotonically increasing **epoch**
//! bumped on every swap. A reader holds a [`CachedArc`]: its own clone
//! of the `Arc` plus the epoch it was cloned at. On each access it does
//! one atomic load of the epoch; only when the epoch moved does it take
//! the read lock to refresh its clone. Swaps are rare (archive upserts),
//! reads are constant — so the steady-state read path is a single
//! `Acquire` load and no lock, while a swap is immediately visible to
//! every reader's next access.
//!
//! The stress test for the serving layer
//! (`crates/archive/tests/swap_stress.rs`) drives readers through this
//! cell while a writer swaps mid-stream and asserts every observed
//! snapshot is exactly one of the published generations — never torn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A swappable `Arc<T>` slot with an epoch counter.
#[derive(Debug)]
pub struct ArcCell<T> {
    epoch: AtomicU64,
    slot: RwLock<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// A cell initially holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        ArcCell {
            epoch: AtomicU64::new(0),
            slot: RwLock::new(value),
        }
    }

    /// The current epoch; bumped by every [`store`](Self::store).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current `Arc` (takes the read lock — use a
    /// [`CachedArc`] on hot read paths).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.slot.read().expect("ArcCell lock poisoned"))
    }

    /// Publishes `value`, bumping the epoch. Returns the new epoch.
    ///
    /// The bump happens while the write lock is held, so a reader that
    /// observes the new epoch and then takes the read lock is guaranteed
    /// to see the new value (the lock orders the two).
    pub fn store(&self, value: Arc<T>) -> u64 {
        let mut guard = self.slot.write().expect("ArcCell lock poisoned");
        *guard = value;
        self.epoch.fetch_add(1, Ordering::Release) + 1
    }
}

/// A reader-local clone of an [`ArcCell`]'s contents, refreshed only
/// when the cell's epoch moves. One atomic load per access in steady
/// state.
#[derive(Debug)]
pub struct CachedArc<T> {
    cached: Arc<T>,
    epoch: u64,
}

impl<T> CachedArc<T> {
    /// Snapshots `cell`'s current contents.
    pub fn new(cell: &ArcCell<T>) -> Self {
        // Order matters: read the epoch *before* the value, so a swap
        // racing this constructor leaves us with a stale epoch + fresh
        // value (refreshes harmlessly on next access), never the
        // reverse (fresh epoch + stale value would pin the stale Arc).
        let epoch = cell.epoch();
        let cached = cell.load();
        CachedArc { cached, epoch }
    }

    /// The current snapshot, refreshing from `cell` if it was swapped.
    pub fn get(&mut self, cell: &ArcCell<T>) -> &Arc<T> {
        let now = cell.epoch();
        if now != self.epoch {
            let guard = cell.slot.read().expect("ArcCell lock poisoned");
            self.cached = Arc::clone(&guard);
            // Re-read under the lock: the epoch cannot advance while we
            // hold it, so this pairs exactly with the value we cloned.
            self.epoch = cell.epoch();
        }
        &self.cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_bumps_epoch_and_swaps_value() {
        let cell = ArcCell::new(Arc::new(1));
        assert_eq!(cell.epoch(), 0);
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.store(Arc::new(2)), 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn cached_arc_refreshes_only_on_epoch_change() {
        let cell = ArcCell::new(Arc::new("gen0"));
        let mut reader = CachedArc::new(&cell);
        let first = Arc::clone(reader.get(&cell));
        // No swap: the same Arc comes back.
        assert!(Arc::ptr_eq(&first, reader.get(&cell)));
        cell.store(Arc::new("gen1"));
        assert_eq!(**reader.get(&cell), "gen1");
    }

    #[test]
    fn swap_is_visible_across_threads() {
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for gen in 1..=100u64 {
                    cell.store(Arc::new(gen));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut reader = CachedArc::new(&cell);
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let seen = **reader.get(&cell);
                        assert!(seen <= 100, "only published generations are visible");
                        assert!(seen >= last, "generations never go backwards");
                        last = seen;
                    }
                    last
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        let mut reader = CachedArc::new(&cell);
        assert_eq!(**reader.get(&cell), 100, "final generation wins");
    }
}
