//! Property-based tests of the archive: serialization fidelity and query
//! semantics.

use proptest::prelude::*;

use granula_archive::{from_json, to_json, JobArchive, JobMeta, Query};
use granula_model::{Actor, Info, InfoValue, Mission, OperationTree};

fn arb_value() -> impl Strategy<Value = InfoValue> {
    prop_oneof![
        any::<i64>().prop_map(InfoValue::Int),
        (-1.0e15f64..1.0e15).prop_map(InfoValue::Float),
        "[ -~]{0,32}".prop_map(InfoValue::Text),
        prop::collection::vec((any::<u32>().prop_map(u64::from), -1.0e9f64..1.0e9), 0..8)
            .prop_map(InfoValue::Series),
    ]
}

fn arb_archive() -> impl Strategy<Value = JobArchive> {
    (
        prop::collection::vec((0usize..100, "[A-Za-z]{1,8}", "[0-9]{1,2}"), 0..40),
        prop::collection::vec(("[A-Za-z]{1,10}", arb_value()), 0..60),
    )
        .prop_map(|(nodes, infos)| {
            let mut tree = OperationTree::new();
            let root = tree
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .expect("fresh tree");
            let mut ids = vec![root];
            for (pick, kind, mid) in nodes {
                let parent = ids[pick % ids.len()];
                let id = tree
                    .add_child(
                        parent,
                        Actor::new("W", mid.clone()),
                        Mission::new(kind, mid),
                    )
                    .expect("parent exists");
                ids.push(id);
            }
            for (i, (name, value)) in infos.into_iter().enumerate() {
                let target = ids[i % ids.len()];
                tree.set_info(target, Info::raw(name, value))
                    .expect("target exists");
            }
            JobArchive::new(
                JobMeta {
                    job_id: "prop".into(),
                    platform: "P".into(),
                    algorithm: "A".into(),
                    dataset: "D".into(),
                    nodes: 8,
                    model: "m".into(),
                },
                tree,
            )
        })
}

proptest! {
    /// The JSON envelope preserves archives bit-for-bit, including floats
    /// and time series.
    #[test]
    fn json_roundtrip(archive in arb_archive()) {
        let json = to_json(&archive).expect("serializable");
        let back = from_json(&json).expect("deserializable");
        prop_assert_eq!(back, archive);
    }

    /// `select` results always satisfy the query's last segment, and
    /// `find_all` is a superset of `select` for the same query.
    #[test]
    fn select_subset_of_find_all(archive in arb_archive(), kind in "[A-Za-z]{1,8}") {
        let query = Query::parse(&format!("Job/{kind}")).expect("valid");
        let selected = query.select(&archive.tree);
        let found = query.find_all(&archive.tree);
        for id in &selected {
            prop_assert!(found.contains(id), "select must be a subset of find_all");
            prop_assert_eq!(&archive.tree.op(*id).mission.kind, &kind);
        }
    }

    /// Query display/parse roundtrip for structured queries.
    #[test]
    fn query_display_roundtrip(
        kinds in prop::collection::vec(("[A-Za-z]{1,8}", prop::option::of("[0-9]{1,2}")), 1..5)
    ) {
        let text = kinds
            .iter()
            .map(|(k, id)| match id {
                Some(id) => format!("{k}-{id}"),
                None => k.clone(),
            })
            .collect::<Vec<_>>()
            .join("/");
        let q = Query::parse(&text).expect("constructed to be valid");
        let q2 = Query::parse(&q.to_string()).expect("display output re-parses");
        prop_assert_eq!(q, q2);
    }

    /// Mission-kind durations never exceed the sum of all durations.
    #[test]
    fn duration_aggregation_bounded(archive in arb_archive(), kind in "[A-Za-z]{1,8}") {
        let total: u64 = archive
            .tree
            .iter()
            .filter_map(|o| o.duration_us())
            .sum();
        prop_assert!(archive.total_duration_of_us(&kind) <= total);
    }
}
