//! Property-based tests of the archive: serialization fidelity and query
//! semantics.

use proptest::prelude::*;

use granula_archive::{from_json, to_json, ArchiveStore, JobArchive, JobMeta, Query};
use granula_model::{Actor, Info, InfoValue, Mission, OperationTree};

fn arb_value() -> impl Strategy<Value = InfoValue> {
    prop_oneof![
        any::<i64>().prop_map(InfoValue::Int),
        (-1.0e15f64..1.0e15).prop_map(InfoValue::Float),
        "[ -~]{0,32}".prop_map(InfoValue::Text),
        prop::collection::vec((any::<u32>().prop_map(u64::from), -1.0e9f64..1.0e9), 0..8)
            .prop_map(InfoValue::Series),
    ]
}

fn arb_archive() -> impl Strategy<Value = JobArchive> {
    (
        prop::collection::vec((0usize..100, "[A-Za-z]{1,8}", "[0-9]{1,2}"), 0..40),
        prop::collection::vec(("[A-Za-z]{1,10}", arb_value()), 0..60),
    )
        .prop_map(|(nodes, infos)| {
            let mut tree = OperationTree::new();
            let root = tree
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .expect("fresh tree");
            let mut ids = vec![root];
            for (pick, kind, mid) in nodes {
                let parent = ids[pick % ids.len()];
                let id = tree
                    .add_child(
                        parent,
                        Actor::new("W", mid.clone()),
                        Mission::new(kind, mid),
                    )
                    .expect("parent exists");
                ids.push(id);
            }
            for (i, (name, value)) in infos.into_iter().enumerate() {
                let target = ids[i % ids.len()];
                tree.set_info(target, Info::raw(name, value))
                    .expect("target exists");
            }
            JobArchive::new(
                JobMeta {
                    job_id: "prop".into(),
                    platform: "P".into(),
                    algorithm: "A".into(),
                    dataset: "D".into(),
                    nodes: 8,
                    model: "m".into(),
                },
                tree,
            )
        })
}

/// A `kind(-id)?` pattern per the query grammar: kind is `*` or dashless;
/// the optional id is `*`, dashless, or dash-joined (ids may contain `-`).
fn arb_kind_pattern() -> impl Strategy<Value = String> {
    let kind = prop_oneof![Just(String::from("*")), "[A-Za-z]{1,6}".boxed()];
    let id = prop_oneof![
        Just(String::from("*")),
        "[A-Za-z0-9]{1,4}".boxed(),
        ("[A-Za-z0-9]{1,4}", "[A-Za-z0-9]{1,4}")
            .prop_map(|(a, b)| format!("{a}-{b}"))
            .boxed(),
    ];
    (kind, prop::option::of(id)).prop_map(|(kind, id)| match id {
        Some(id) => format!("{kind}-{id}"),
        None => kind,
    })
}

/// One segment: a mission pattern with an optional `@actor` pattern.
fn arb_segment() -> impl Strategy<Value = String> {
    (arb_kind_pattern(), prop::option::of(arb_kind_pattern())).prop_map(|(m, a)| match a {
        Some(a) => format!("{m}@{a}"),
        None => m,
    })
}

proptest! {
    /// The JSON envelope preserves archives bit-for-bit, including floats
    /// and time series.
    #[test]
    fn json_roundtrip(archive in arb_archive()) {
        let json = to_json(&archive).expect("serializable");
        let back = from_json(&json).expect("deserializable");
        prop_assert_eq!(back, archive);
    }

    /// `select` results always satisfy the query's last segment, and
    /// `find_all` is a superset of `select` for the same query.
    #[test]
    fn select_subset_of_find_all(archive in arb_archive(), kind in "[A-Za-z]{1,8}") {
        let query = Query::parse(&format!("Job/{kind}")).expect("valid");
        let selected = query.select(&archive.tree);
        let found = query.find_all(&archive.tree);
        for id in &selected {
            prop_assert!(found.contains(id), "select must be a subset of find_all");
            prop_assert_eq!(&archive.tree.op(*id).mission.kind, &kind);
        }
    }

    /// Query display/parse roundtrip for structured queries.
    #[test]
    fn query_display_roundtrip(
        kinds in prop::collection::vec(("[A-Za-z]{1,8}", prop::option::of("[0-9]{1,2}")), 1..5)
    ) {
        let text = kinds
            .iter()
            .map(|(k, id)| match id {
                Some(id) => format!("{k}-{id}"),
                None => k.clone(),
            })
            .collect::<Vec<_>>()
            .join("/");
        let q = Query::parse(&text).expect("constructed to be valid");
        let q2 = Query::parse(&q.to_string()).expect("display output re-parses");
        prop_assert_eq!(q, q2);
    }

    /// Full-grammar display/parse roundtrip: wildcard kinds and ids,
    /// dashed ids, and `@actor` patterns all re-serialize losslessly.
    #[test]
    fn query_display_roundtrip_full_grammar(
        segments in prop::collection::vec(arb_segment(), 1..5)
    ) {
        let text = segments.join("/");
        let q = Query::parse(&text).expect("grammar-valid by construction");
        let printed = q.to_string();
        let q2 = Query::parse(&printed).expect("display output re-parses");
        prop_assert_eq!(&q, &q2, "roundtrip of {} via {}", text, printed);
        // Display is a fixed point: printing the reparsed query is
        // identical to the first printing.
        prop_assert_eq!(printed, q2.to_string());
    }

    /// Dangling-dash patterns are rejected wherever they appear.
    #[test]
    fn dangling_dash_rejected_everywhere(kind in "[A-Za-z]{1,6}", actor in "[A-Za-z]{1,6}") {
        let dangling_mission = Query::parse(&format!("{kind}-")).is_err();
        let dangling_actor = Query::parse(&format!("{kind}@{actor}-")).is_err();
        let leading_dash = Query::parse(&format!("-{kind}")).is_err();
        prop_assert!(dangling_mission, "dangling mission dash accepted");
        prop_assert!(dangling_actor, "dangling actor dash accepted");
        prop_assert!(leading_dash, "leading dash accepted");
    }

    /// The store keys archives by job id: re-adding an id fails and leaves
    /// the store unchanged, while upsert replaces exactly that entry.
    #[test]
    fn store_add_rejects_duplicates_upsert_replaces(
        ids in prop::collection::vec("[a-z]{1,6}", 1..8),
        pick in 0usize..8,
    ) {
        let mut store = ArchiveStore::new();
        let mut unique = Vec::new();
        for id in &ids {
            let meta = JobMeta {
                job_id: id.clone(),
                ..Default::default()
            };
            let archive = JobArchive::new(meta, OperationTree::new());
            if unique.contains(id) {
                prop_assert!(store.add(archive).is_err(), "duplicate {} accepted", id);
            } else {
                prop_assert!(store.add(archive).is_ok());
                unique.push(id.clone());
            }
        }
        prop_assert_eq!(store.len(), unique.len());
        // Upserting an existing id replaces in place; a fresh id appends.
        let target = &unique[pick % unique.len()];
        let meta = JobMeta {
            job_id: target.clone(),
            platform: "Replacement".into(),
            ..Default::default()
        };
        let replaced = store.upsert(JobArchive::new(meta, OperationTree::new()));
        prop_assert!(replaced.is_some());
        prop_assert_eq!(store.len(), unique.len());
        prop_assert_eq!(store.get(target).expect("still present").meta.platform.as_str(), "Replacement");
    }

    /// Mission-kind durations never exceed the sum of all durations.
    #[test]
    fn duration_aggregation_bounded(archive in arb_archive(), kind in "[A-Za-z]{1,8}") {
        let total: u64 = archive
            .tree
            .iter()
            .filter_map(|o| o.duration_us())
            .sum();
        prop_assert!(archive.total_duration_of_us(&kind) <= total);
    }
}
