//! Differential tests of the serving layer: the binary format and the
//! indexed [`QueryEngine`] are checked against the simpler references
//! they must be observationally identical to —
//!
//! * `save → load → save` produces **byte-identical** files, and a loaded
//!   store answers every query exactly like the in-memory original;
//! * the index-routed engine produces exactly the ids, in exactly the
//!   order, of the linear-scan oracle ([`Query::select`]/
//!   [`Query::find_all`]), for arbitrary trees and arbitrary grammar-valid
//!   queries, with and without time windows;
//! * caching and invalidation never change what a query returns, only how
//!   fast it returns.

use proptest::prelude::*;

use granula_archive::{
    store_from_bytes, store_to_bytes, ArchiveStore, JobArchive, JobMeta, Query, QueryEngine,
    QueryMode, SCAN_THRESHOLD,
};
use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

/// An archive whose tree mixes a handful of kinds (so kind indexes have
/// real candidate lists) and stamps start times on a subset of operations
/// (so interval queries select non-trivially). Trees this size sit under
/// the planner's `SCAN_THRESHOLD`, so these archives exercise the
/// cost-based scan fallback; see [`arb_big_archive`] for the indexed
/// paths.
fn arb_archive(job_id: &'static str) -> impl Strategy<Value = JobArchive> {
    arb_archive_sized(job_id, 0..40)
}

/// An archive big enough (> [`SCAN_THRESHOLD`] operations) that the
/// planner actually routes selective queries through the indexes.
fn arb_big_archive(job_id: &'static str) -> impl Strategy<Value = JobArchive> {
    arb_archive_sized(job_id, 160..320)
}

fn arb_archive_sized(
    job_id: &'static str,
    nodes: std::ops::Range<usize>,
) -> impl Strategy<Value = JobArchive> {
    (
        prop::collection::vec(
            (
                0usize..100,
                "[A-D]",
                "[0-9]{1,2}",
                prop::option::of(0u64..5_000),
            ),
            nodes,
        ),
        prop::collection::vec(
            ("[A-Za-z]{1,8}", any::<i64>().prop_map(InfoValue::Int)),
            0..20,
        ),
    )
        .prop_map(move |(nodes, infos)| {
            let mut tree = OperationTree::new();
            let root = tree
                .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
                .expect("fresh tree");
            let mut ids = vec![root];
            for (pick, kind, mid, start) in nodes {
                let parent = ids[pick % ids.len()];
                let id = tree
                    .add_child(
                        parent,
                        Actor::new(kind.clone(), mid.clone()),
                        Mission::new(kind, mid),
                    )
                    .expect("parent exists");
                if let Some(s) = start {
                    tree.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(s as i64)))
                        .expect("id exists");
                }
                ids.push(id);
            }
            for (i, (name, value)) in infos.into_iter().enumerate() {
                let target = ids[i % ids.len()];
                tree.set_info(target, Info::raw(name, value))
                    .expect("target exists");
            }
            JobArchive::new(
                JobMeta {
                    job_id: job_id.into(),
                    platform: "P".into(),
                    algorithm: "A".into(),
                    dataset: "D".into(),
                    nodes: 8,
                    model: "m".into(),
                },
                tree,
            )
        })
}

/// A grammar-valid query string: 1–4 segments over the same small kind
/// alphabet the trees use (so queries actually hit), with optional actor
/// patterns and an optional trailing `[lo..hi]` window.
fn arb_pattern() -> impl Strategy<Value = String> {
    let kind = prop_oneof![
        Just(String::from("*")),
        Just(String::from("Job")),
        "[A-D]".boxed(),
        "[A-Za-z]{1,6}".boxed(),
    ];
    let id = prop::option::of(prop_oneof![Just(String::from("*")), "[0-9]{1,2}".boxed()]);
    (kind, id).prop_map(|(k, id)| match id {
        Some(id) => format!("{k}-{id}"),
        None => k,
    })
}

fn arb_query_text() -> impl Strategy<Value = String> {
    let segment = (arb_pattern(), prop::option::of(arb_pattern())).prop_map(|(m, a)| match a {
        Some(a) => format!("{m}@{a}"),
        None => m,
    });
    let window = prop::option::of((prop::option::of(0u64..6_000), prop::option::of(0u64..6_000)));
    (prop::collection::vec(segment, 1..4), window).prop_map(|(segments, window)| {
        let mut text = segments.join("/");
        if let Some((lo, hi)) = window {
            let lo = lo.map(|v| v.to_string()).unwrap_or_default();
            let hi = hi.map(|v| v.to_string()).unwrap_or_default();
            text.push_str(&format!("[{lo}..{hi}]"));
        }
        text
    })
}

proptest! {
    /// The binary envelope is deterministic and lossless: encoding is a
    /// fixed point under decode→re-encode, and every archive survives the
    /// roundtrip bit-for-bit.
    #[test]
    fn save_load_save_is_byte_identical(
        a in arb_archive("job-a"),
        b in arb_archive("job-b"),
    ) {
        let mut store = ArchiveStore::new();
        store.add(a).expect("fresh id");
        store.add(b).expect("distinct id");
        let bytes = store_to_bytes(&store);
        let loaded = store_from_bytes(&bytes).expect("decodable");
        let bytes2 = store_to_bytes(&loaded);
        prop_assert_eq!(&bytes, &bytes2, "decode->re-encode must be a fixed point");
        prop_assert_eq!(loaded.len(), store.len());
        for (x, y) in store.iter().zip(loaded.iter()) {
            prop_assert_eq!(x, y, "archive changed across the binary roundtrip");
        }
    }

    /// A store that went through the binary format answers every query
    /// exactly like the in-memory original.
    #[test]
    fn loaded_store_queries_equal_in_memory(
        a in arb_archive("job-a"),
        queries in prop::collection::vec(arb_query_text(), 1..6),
    ) {
        let mut store = ArchiveStore::new();
        store.add(a).expect("fresh id");
        let loaded =
            store_from_bytes(&store_to_bytes(&store)).expect("decodable");
        let (orig, back) = (
            &store.get("job-a").expect("held").tree,
            &loaded.get("job-a").expect("held").tree,
        );
        for text in queries {
            let q = Query::parse(&text).expect("grammar-valid by construction");
            prop_assert_eq!(q.select(orig), q.select(back), "select over `{}`", &text);
            prop_assert_eq!(q.find_all(orig), q.find_all(back), "find_all over `{}`", &text);
        }
    }

    /// The indexed engine is observationally identical to the linear-scan
    /// oracle: same ids, same order, both anchor modes, window or not.
    #[test]
    fn indexed_results_equal_scan_oracle(
        a in arb_archive("job-a"),
        queries in prop::collection::vec(arb_query_text(), 1..8),
    ) {
        let tree = a.tree.clone();
        let mut engine = QueryEngine::new();
        engine.add(a).expect("fresh id");
        for text in queries {
            let q = Query::parse(&text).expect("grammar-valid by construction");
            let selected = engine.query("job-a", &q, QueryMode::Select).expect("job held");
            prop_assert_eq!(&*selected, &q.select(&tree), "select over `{}`", &text);
            let found = engine.query("job-a", &q, QueryMode::FindAll).expect("job held");
            prop_assert_eq!(&*found, &q.find_all(&tree), "find_all over `{}`", &text);
        }
    }

    /// Above the cost threshold the planner genuinely engages the
    /// indexes — and its per-query choice (index route, low-selectivity
    /// fallback, or Select-without-window fallback) must never change
    /// what a query returns.
    #[test]
    fn cost_aware_planner_equals_scan_above_threshold(
        a in arb_big_archive("job-a"),
        queries in prop::collection::vec(arb_query_text(), 1..8),
    ) {
        let tree = a.tree.clone();
        prop_assert!(tree.len() > SCAN_THRESHOLD, "archive must clear the threshold");
        let mut engine = QueryEngine::new();
        engine.add(a).expect("fresh id");
        for text in queries {
            let q = Query::parse(&text).expect("grammar-valid by construction");
            for mode in [QueryMode::Select, QueryMode::FindAll] {
                let oracle = match mode {
                    QueryMode::Select => q.select(&tree),
                    QueryMode::FindAll => q.find_all(&tree),
                };
                let got = engine.evaluate("job-a", &q, mode).expect("job held");
                prop_assert_eq!(
                    got,
                    oracle,
                    "planner route diverged for `{}` ({:?}, plan {:?})",
                    &text,
                    mode,
                    engine.explain("job-a", &q, mode)
                );
            }
        }
    }

    /// Caching and invalidation are invisible: asking the same queries
    /// again — before and after an upsert that swaps the tree — always
    /// matches a fresh scan of the store's current contents.
    #[test]
    fn cache_is_transparent_across_upserts(
        first in arb_archive("job-a"),
        second in arb_archive("job-a"),
        queries in prop::collection::vec(arb_query_text(), 1..5),
    ) {
        let queries: Vec<Query> = queries
            .iter()
            .map(|t| Query::parse(t).expect("grammar-valid"))
            .collect();
        let mut engine = QueryEngine::new();
        engine.add(first).expect("fresh id");
        for q in &queries {
            // Twice: the second answer is served from the cache.
            let x = engine.query("job-a", q, QueryMode::FindAll).expect("held");
            let y = engine.query("job-a", q, QueryMode::FindAll).expect("held");
            prop_assert_eq!(&x, &y, "cached answer diverged for `{}`", q);
        }
        prop_assert!(engine.stats().cache_hits >= queries.len() as u64);
        engine.upsert(second);
        let tree = engine.store().get("job-a").expect("held").tree.clone();
        for q in &queries {
            let fresh = engine.query("job-a", q, QueryMode::FindAll).expect("held");
            prop_assert_eq!(
                &*fresh,
                &q.find_all(&tree),
                "stale cache served after upsert for `{}`",
                q
            );
        }
    }
}
