//! Satellite 4: concurrent readers vs a writer Arc-swapping a shard
//! mid-stream. Readers must never observe a torn result — every response
//! is bit-identical to the expected answer of *some* published
//! generation, and jobs in other shards are unaffected throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use granula_archive::{
    ArchiveStore, JobArchive, JobMeta, Query, QueryEngine, QueryMode, ServeOptions, ShardedEngine,
};
use granula_model::{Actor, Mission, OperationTree};

fn job(job_id: &str, supersteps: i64, workers: i64) -> JobArchive {
    let mut t = OperationTree::new();
    let root = t
        .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
        .unwrap();
    for s in 0..supersteps {
        let ss = t
            .add_child(
                root,
                Actor::new("Job", "0"),
                Mission::new("Superstep", s.to_string()),
            )
            .unwrap();
        for w in 0..workers {
            t.add_child(
                ss,
                Actor::new("Worker", w.to_string()),
                Mission::new("Compute", "0"),
            )
            .unwrap();
        }
    }
    JobArchive::new(
        JobMeta {
            job_id: job_id.into(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: "d".into(),
            nodes: workers as u32,
            model: "m".into(),
        },
        t,
    )
}

/// The reference answer for `query` over exactly one archive.
fn expected(archive: &JobArchive, query: &Query, mode: QueryMode) -> Vec<granula_model::OpId> {
    let mut engine = QueryEngine::new();
    engine.add(archive.clone()).unwrap();
    engine
        .query(&archive.meta.job_id, query, mode)
        .expect("job exists")
        .as_ref()
        .clone()
}

#[test]
fn readers_never_see_torn_results_across_swaps() {
    const READERS: usize = 4;
    const SWAPS: usize = 40;

    let gen_a = job("hot", 30, 3);
    let gen_b = job("hot", 55, 2); // different shape, different result set
    let bystander = job("steady", 10, 2);

    let mut store = ArchiveStore::new();
    store.add(gen_a.clone()).unwrap();
    store.add(bystander.clone()).unwrap();
    let engine = ShardedEngine::from_store(store, ServeOptions::default());

    let query = Query::parse("GiraphJob/Superstep/Compute").unwrap();
    let mode = QueryMode::Select;
    let want_a = expected(&gen_a, &query, mode);
    let want_b = expected(&gen_b, &query, mode);
    let want_steady = expected(&bystander, &query, mode);
    assert_ne!(want_a, want_b, "generations must be distinguishable");

    let done = AtomicBool::new(false);
    thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..READERS {
            let (engine, done) = (&engine, &done);
            let (query, want_a, want_b, want_steady) = (&query, &want_a, &want_b, &want_steady);
            readers.push(scope.spawn(move || {
                let mut seen = [0u64, 0]; // responses matching gen A / gen B
                let mut i = 0u64;
                while !done.load(Ordering::Acquire) || i == 0 {
                    i += 1;
                    let got = engine
                        .query("hot", query, mode)
                        .expect("no integrity errors on owned jobs")
                        .expect("hot never disappears");
                    if *got == *want_a {
                        seen[0] += 1;
                    } else if *got == *want_b {
                        seen[1] += 1;
                    } else {
                        panic!(
                            "reader {r} iteration {i}: torn result ({} ids matches neither \
                             generation {} nor {})",
                            got.len(),
                            want_a.len(),
                            want_b.len()
                        );
                    }
                    // The bystander lives in another shard-state and must
                    // be byte-stable throughout the swaps.
                    let steady = engine
                        .query("steady", query, mode)
                        .unwrap()
                        .expect("steady never disappears");
                    assert_eq!(*steady, *want_steady, "bystander changed under swaps");
                }
                seen
            }));
        }

        // The writer swaps the hot job back and forth while readers run.
        for s in 0..SWAPS {
            let next = if s % 2 == 0 { &gen_b } else { &gen_a };
            engine.upsert(next.clone());
            thread::yield_now();
        }
        done.store(true, Ordering::Release);

        let mut totals = [0u64, 0];
        for reader in readers {
            let seen = reader.join().expect("reader panicked");
            totals[0] += seen[0];
            totals[1] += seen[1];
        }
        // Every response matched one of the two generations (the panic
        // above would have fired otherwise); with 40 interleaved swaps
        // the readers should witness both.
        assert!(totals[0] + totals[1] > 0);
        assert!(
            totals[1] > 0,
            "readers never observed the swapped-in generation ({totals:?})"
        );
    });

    let snapshot = engine.snapshot();
    assert_eq!(snapshot.swaps, SWAPS as u64);
    // After the dust settles the final generation answers exactly.
    let last = if SWAPS % 2 == 1 { &want_b } else { &want_a };
    let got = engine.query("hot", &query, mode).unwrap().unwrap();
    assert_eq!(*got, *last);
}
