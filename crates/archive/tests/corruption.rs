//! Torn-write fault-injection harness: the crash-safety contract of the
//! `.gar` format, checked property-style over seeded corruptions.
//!
//! The contract, for **any** corruption of a valid store file:
//!
//! 1. the strict loader either succeeds or returns a structured
//!    [`BinError`] — it never panics, hangs, or makes an input-sized
//!    allocation the file cannot back;
//! 2. salvage never invents data: every recovered job existed in the
//!    original store, **byte-for-byte identical** (its frame checksummed);
//! 3. salvage recovers precisely the checksum-intact jobs: a prefix
//!    truncation keeps exactly the jobs whose frames fit the prefix, and
//!    bit flips lose only jobs whose frames (or the trailer+footer that
//!    locates them) were hit;
//! 4. the whole pipeline is deterministic — same corrupted bytes, same
//!    report.

use proptest::prelude::*;

use granula_archive::binfmt::FOOTER_LEN;
use granula_archive::{
    frame_table, mutate, salvage_from_bytes, store_from_bytes, store_to_bytes, ArchiveStore,
    FrameInfo, JobArchive, JobMeta, Mutator, RunMeta,
};
use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

/// A store with `jobs` jobs of varying tree size, deterministic in its
/// arguments.
fn build_store(jobs: usize, scale: usize) -> ArchiveStore {
    let mut store = ArchiveStore::new().with_run(RunMeta::new("run-x", 1_234, "corruption"));
    for j in 0..jobs {
        let mut tree = OperationTree::new();
        let root = tree
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        tree.set_info(root, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        tree.set_info(
            root,
            Info::raw(names::END_TIME, InfoValue::Int(1_000_000 + j as i64)),
        )
        .unwrap();
        for i in 0..(1 + j * scale) {
            let c = tree
                .add_child(
                    root,
                    Actor::new("Worker", format!("{i}")),
                    Mission::new("Compute", format!("{i}")),
                )
                .unwrap();
            tree.set_info(c, Info::raw("Load", InfoValue::Float(i as f64 * 0.5)))
                .unwrap();
        }
        store
            .add(JobArchive::new(
                JobMeta {
                    job_id: format!("job-{j}"),
                    platform: "Giraph".into(),
                    algorithm: "BFS".into(),
                    dataset: "dg".into(),
                    nodes: 4,
                    model: "m".into(),
                },
                tree,
            ))
            .unwrap();
    }
    store
}

/// Job ids whose whole frames lie within `bytes[..cut]`.
fn jobs_within(frames: &[FrameInfo], cut: usize) -> Vec<String> {
    frames
        .iter()
        .filter(|f| f.job_id.is_some() && f.offset + f.len <= cut)
        .map(|f| f.job_id.clone().unwrap())
        .collect()
}

/// Asserts the salvage invariants that hold for *every* corruption:
/// recovered jobs are a subset of the originals, with identical content.
fn assert_no_invention(report: &granula_archive::SalvageReport, original: &ArchiveStore) {
    for id in &report.recovered {
        let recovered = report.store.get(id).expect("recovered id is in the store");
        let orig = original
            .get(id)
            .unwrap_or_else(|| panic!("salvage invented job `{id}`"));
        assert_eq!(recovered, orig, "recovered `{id}` differs from original");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Property 3, truncation half: chopping the file at any point keeps
    /// exactly the jobs whose frames fit the remaining prefix.
    #[test]
    fn truncation_recovers_exactly_the_prefix_jobs(
        jobs in 1usize..5,
        cut_frac in 0.0f64..1.0,
    ) {
        let store = build_store(jobs, 7);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut torn = bytes.clone();
        mutate::truncate_at(&mut torn, cut);

        match store_from_bytes(&torn) {
            Ok(loaded) => prop_assert_eq!(loaded.len(), store.len(), "only the whole file loads"),
            Err(_) => {
                let report = salvage_from_bytes(&torn);
                assert_no_invention(&report, &store);
                let expected = jobs_within(&frames, cut);
                prop_assert_eq!(
                    report.recovered.clone(), expected,
                    "cut at {} of {}", cut, bytes.len()
                );
            }
        }
    }

    /// Property 3, torn-write half: a crash mid-overwrite (intact prefix,
    /// garbage tail of the same length) keeps exactly the prefix jobs.
    #[test]
    fn torn_tail_recovers_exactly_the_prefix_jobs(
        jobs in 1usize..5,
        cut_frac in 0.0f64..1.0,
        garbage_seed in any::<u64>(),
    ) {
        let store = build_store(jobs, 5);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut torn = bytes.clone();
        mutate::torn_tail(&mut torn, cut, garbage_seed);

        match store_from_bytes(&torn) {
            Ok(loaded) => prop_assert_eq!(loaded.len(), store.len()),
            Err(_) => {
                let report = salvage_from_bytes(&torn);
                assert_no_invention(&report, &store);
                let expected = jobs_within(&frames, cut);
                prop_assert_eq!(report.recovered.clone(), expected);
            }
        }
    }

    /// Property 2+3, bit-flip half: flips never cause a panic or invented
    /// data, and a job whose frame — and the trailer/footer locating it —
    /// was untouched is always recovered.
    #[test]
    fn bit_flips_lose_only_touched_frames(
        jobs in 1usize..5,
        bits in prop::collection::vec(any::<u64>(), 1..6),
    ) {
        let store = build_store(jobs, 4);
        let bytes = store_to_bytes(&store);
        let frames = frame_table(&bytes).unwrap();
        let mut corrupt = bytes.clone();
        for &bit in &bits {
            mutate::flip_bit(&mut corrupt, bit);
        }
        if corrupt == bytes {
            // Flips cancelled each other out.
            prop_assert!(store_from_bytes(&corrupt).is_ok());
            return Ok(());
        }

        let touched: Vec<usize> = bits
            .iter()
            .map(|b| ((b % (bytes.len() as u64 * 8)) / 8) as usize)
            .collect();
        let hit = |lo: usize, len: usize| touched.iter().any(|&b| b >= lo && b < lo + len);
        // The structures that *locate* job frames: the 8-byte file
        // header (magic + version), the trailer, and the footer. A flip
        // in any of these may legitimately take unrelated jobs down.
        let trailer = frames.last().unwrap();
        let locator_hit = hit(0, granula_archive::binfmt::HEADER_LEN)
            || hit(trailer.offset, trailer.len)
            || hit(bytes.len() - FOOTER_LEN, FOOTER_LEN);

        match store_from_bytes(&corrupt) {
            Ok(loaded) => {
                // CRC32C catches <=3 flips in a frame; a clean load here
                // means a >=4-bit collision, which seeded inputs do not
                // produce — but if one ever did, content must still match.
                prop_assert_eq!(loaded.len(), store.len());
            }
            Err(_) => {
                let report = salvage_from_bytes(&corrupt);
                assert_no_invention(&report, &store);
                if !locator_hit {
                    for f in &frames {
                        let Some(id) = &f.job_id else { continue };
                        if !hit(f.offset, f.len) {
                            prop_assert!(
                                report.recovered.contains(id),
                                "untouched job `{}` must be recovered (flipped bytes {:?})",
                                id, touched
                            );
                        }
                    }
                }
            }
        }
    }

    /// Property 1 over the full mutation mix, plus property 4: the
    /// loader/salvage pipeline is panic-free and deterministic.
    #[test]
    fn seeded_mutation_storm_never_panics(seed in any::<u64>()) {
        let store = build_store(3, 6);
        let bytes = store_to_bytes(&store);
        let mut mutator = Mutator::new(seed);
        for _ in 0..8 {
            let (corrupt, _mutation) = mutator.mutate(&bytes);
            match store_from_bytes(&corrupt) {
                Ok(loaded) => prop_assert_eq!(loaded.len(), store.len()),
                Err(_) => {
                    let a = salvage_from_bytes(&corrupt);
                    assert_no_invention(&a, &store);
                    let b = salvage_from_bytes(&corrupt);
                    prop_assert_eq!(a.recovered, b.recovered, "salvage must be deterministic");
                    prop_assert_eq!(a.lost.len(), b.lost.len());
                }
            }
        }
    }

    /// Property 1 for inputs that were never archives at all.
    #[test]
    fn random_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..2_000)) {
        prop_assert!(store_from_bytes(&data).is_err() || data.len() >= 8);
        let report = salvage_from_bytes(&data);
        prop_assert!(report.recovered.is_empty() || report.clean);
    }
}

/// A forged length prefix orders of magnitude past the file size must be
/// rejected before any allocation happens — the regression test for the
/// unbounded `Vec::with_capacity` hardening (run with a conservative
/// address-space expectation: allocating 4 GB here would OOM CI).
#[test]
fn forged_4gb_length_header_is_rejected_cheaply() {
    // v2 legacy envelope claiming a 4-billion-entry object.
    let mut forged = Vec::new();
    forged.extend_from_slice(b"GRNA");
    forged.extend_from_slice(&2u32.to_le_bytes());
    forged.push(0x07); // TAG_OBJECT
    forged.extend_from_slice(&[0x80, 0x90, 0xBC, 0xEE, 0x0F]); // varint ~4.25e9
    assert!(store_from_bytes(&forged).is_err());
    let report = salvage_from_bytes(&forged);
    assert!(report.recovered.is_empty());

    // v3 frame whose length field claims ~4 GB of payload.
    let store = build_store(1, 3);
    let mut bytes = store_to_bytes(&store);
    let frames = frame_table(&bytes).unwrap();
    let job = frames.iter().find(|f| f.job_id.is_some()).unwrap();
    bytes[job.offset + 1..job.offset + 5].copy_from_slice(&4_000_000_000u32.to_le_bytes());
    assert!(store_from_bytes(&bytes).is_err());
    let report = salvage_from_bytes(&bytes);
    // The trailer still locates every *intact* frame; the job with the
    // forged length is exactly the one lost.
    assert!(report
        .lost
        .iter()
        .any(|l| l.job_id.as_deref() == Some("job-0")));
}

/// Double-save determinism survives a salvage round-trip: repairing a
/// damaged store and saving it yields a canonical v3 file.
#[test]
fn salvage_then_save_is_canonical() {
    let store = build_store(4, 5);
    let bytes = store_to_bytes(&store);
    let frames = frame_table(&bytes).unwrap();
    let victim = frames.iter().find(|f| f.job_id.is_some()).unwrap();
    let mut corrupt = bytes.clone();
    corrupt[victim.offset + 7] ^= 0x20;

    let report = salvage_from_bytes(&corrupt);
    assert_eq!(report.recovered, ["job-1", "job-2", "job-3"]);
    let repaired = store_to_bytes(&report.store);
    let reloaded = store_from_bytes(&repaired).unwrap();
    assert_eq!(store_to_bytes(&reloaded), repaired, "repair is canonical");
    assert_eq!(reloaded.run(), store.run(), "run header survives repair");
}
