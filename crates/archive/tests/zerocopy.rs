//! Zero-copy serving against a large cold archive: the acceptance test
//! that a fleet file's first query decodes exactly one job (no full
//! deserialization), that decoded results are bit-identical to the eager
//! loader, and that CRC damage is caught on first touch without taking
//! healthy jobs down with it.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use granula_archive::{
    frame_table, ArchiveStore, JobArchive, JobMeta, MappedStore, Query, QueryEngine, QueryMode,
    ServeOptions, ShardedEngine, FRAME_JOB,
};
use granula_model::{Actor, Mission, OperationTree};

const JOBS: usize = 10;
const SUPERSTEPS: i64 = 250;
const WORKERS: i64 = 20;
// 10 jobs x (1 root + 250 supersteps x (1 + 20 workers)) > 52k ops; with
// the info records the file crosses the "big enough that eagerly decoding
// everything would be visible" line while staying fast to build.

fn big_job(job_id: &str) -> JobArchive {
    let mut t = OperationTree::new();
    let job = t
        .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
        .unwrap();
    for s in 0..SUPERSTEPS {
        let ss = t
            .add_child(
                job,
                Actor::new("Job", "0"),
                Mission::new("Superstep", s.to_string()),
            )
            .unwrap();
        for w in 0..WORKERS {
            t.add_child(
                ss,
                Actor::new("Worker", w.to_string()),
                Mission::new("Compute", "0"),
            )
            .unwrap();
        }
    }
    JobArchive::new(
        JobMeta {
            job_id: job_id.into(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: "dg1000".into(),
            nodes: WORKERS as u32,
            model: "giraph".into(),
        },
        t,
    )
}

fn fleet_file(name: &str) -> (PathBuf, ArchiveStore) {
    let path = std::env::temp_dir().join(format!("granula-zct-{name}-{}.gar", std::process::id()));
    let mut store = ArchiveStore::new();
    for i in 0..JOBS {
        store.add(big_job(&format!("job-{i:02}"))).unwrap();
    }
    store.save(&path).unwrap();
    (path, store)
}

#[test]
fn cold_archive_first_query_decodes_exactly_one_job() {
    let (path, _) = fleet_file("cold");
    let engine = ShardedEngine::open_fleet(&[&path], ServeOptions::default()).unwrap();
    let source = Arc::clone(&engine.sources()[0]);
    assert_eq!(engine.len(), JOBS);
    assert!(source.is_mapped(), "large file should mmap, not heap-read");
    assert_eq!(
        source.decoded_jobs(),
        0,
        "opening the fleet must not deserialize anything"
    );

    let query = Query::parse("GiraphJob/Superstep-7/Compute").unwrap();
    let got = engine
        .query("job-03", &query, QueryMode::Select)
        .unwrap()
        .expect("job exists");
    assert_eq!(got.len(), WORKERS as usize);
    assert_eq!(
        source.decoded_jobs(),
        1,
        "first query must decode only the touched job, not the archive"
    );
    assert_eq!(
        source.verified_jobs(),
        1,
        "CRC is checked on first touch of that one frame"
    );

    // Re-querying the same job stays at one decode (resident cache), and
    // touching a second job decodes exactly one more.
    engine.query("job-03", &query, QueryMode::Select).unwrap();
    assert_eq!(source.decoded_jobs(), 1);
    engine.query("job-08", &query, QueryMode::Select).unwrap();
    assert_eq!(source.decoded_jobs(), 2);

    let _ = fs::remove_file(&path);
}

#[test]
fn mapped_decode_is_bit_identical_to_the_eager_loader() {
    let (path, _) = fleet_file("ident");
    let eager = ArchiveStore::load(&path).unwrap();
    let mapped = MappedStore::open(&path).unwrap();
    assert_eq!(mapped.len(), eager.len());
    for archive in eager.iter() {
        let decoded = mapped.decode_job(&archive.meta.job_id).unwrap();
        assert_eq!(&decoded, archive, "{} differs", archive.meta.job_id);
    }

    // And the query surface agrees byte-for-byte: sharded-over-mmap vs
    // the in-process engine over the eagerly-loaded store.
    let sharded = ShardedEngine::open_fleet(&[&path], ServeOptions::default()).unwrap();
    let mut reference = QueryEngine::from_store(eager);
    for text in [
        "Compute",
        "GiraphJob/Superstep/Compute@Worker-13",
        "Superstep-249",
        "*-0",
        "GiraphJob/Missing",
    ] {
        let query = Query::parse(text).unwrap();
        for mode in [QueryMode::Select, QueryMode::FindAll] {
            for job in ["job-00", "job-05", "job-09"] {
                let served = sharded.query(job, &query, mode).unwrap().unwrap();
                let expect = reference.query(job, &query, mode).unwrap();
                assert_eq!(served, expect, "job {job} query `{text}` mode {mode:?}");
            }
        }
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn crc_damage_fails_the_touched_job_but_not_its_neighbours() {
    let (path, _) = fleet_file("crc");
    let bytes = fs::read(&path).unwrap();
    // Flip a payload bit in the frame of a known job.
    let victim = frame_table(&bytes)
        .unwrap()
        .into_iter()
        .find(|f| f.kind == FRAME_JOB && f.job_id.as_deref() == Some("job-04"))
        .expect("trailer names every job frame");
    let mut corrupt = bytes;
    corrupt[victim.offset + 64] ^= 0x01;
    fs::write(&path, &corrupt).unwrap();

    let engine = ShardedEngine::open_fleet(&[&path], ServeOptions::default()).unwrap();
    let query = Query::parse("Compute").unwrap();
    // Healthy neighbours serve normally...
    for job in ["job-00", "job-03", "job-09"] {
        let got = engine.query(job, &query, QueryMode::FindAll).unwrap();
        assert_eq!(got.unwrap().len(), (SUPERSTEPS * WORKERS) as usize);
    }
    // ...while the damaged frame is refused on first touch, every time
    // (a CRC failure is never memoized as ok).
    for _ in 0..2 {
        let err = engine
            .query("job-04", &query, QueryMode::FindAll)
            .expect_err("corrupt frame must not serve");
        let msg = err.to_string();
        assert!(
            msg.to_lowercase().contains("crc"),
            "unexpected error: {msg}"
        );
    }
    assert_eq!(
        engine.sources()[0].verified_jobs(),
        3,
        "only the healthy touches count"
    );

    let _ = fs::remove_file(&path);
}
