//! Self-observability for the Granula pipeline: "Granula on Granula".
//!
//! Granula's pitch is fine-grained visibility into *other* systems'
//! performance; this crate gives the tool chain the same visibility into
//! itself. It provides a process-wide tracer with
//!
//! * a lightweight span API — [`span!`] records a named interval with a
//!   monotonic microsecond timestamp, the recording thread, and a link to
//!   the enclosing span on the same thread;
//! * a counter/gauge registry — [`counter_add`] / [`gauge_set`] for
//!   aggregate statistics that would be too hot to record as spans
//!   (engine events processed, refill waves, heap compactions);
//! * exporters — [`chrome_trace_json`] renders spans in the Chrome
//!   trace-event format (loadable in `chrome://tracing` or Perfetto) and
//!   [`metrics_snapshot`] renders the registry as plain text.
//!
//! # Zero cost when disabled
//!
//! The tracer is off by default. [`span!`] expands to a single relaxed
//! atomic load when disabled — the name is not even formatted — and the
//! metric functions return immediately. Hot loops should go one step
//! further and accumulate plain local integers, flushing them through
//! [`counter_add`] once per run (see the engine instrumentation in
//! `gpsim-cluster`).
//!
//! # Usage
//!
//! ```
//! granula_trace::enable();
//! {
//!     let _span = granula_trace::span!("archiving", "assemble job {}", 7);
//!     granula_trace::counter_add("archive.events", 120);
//! }
//! let spans = granula_trace::take_spans();
//! assert_eq!(spans.len(), 1);
//! let json = granula_trace::chrome_trace_json(&spans);
//! assert!(json.contains("\"traceEvents\""));
//! granula_trace::disable();
//! granula_trace::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span: a named interval on one thread, linked to its
/// parent span (the span that was open on the same thread when this one
/// started).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Pipeline stage the span belongs to (Chrome trace "category"),
    /// e.g. `"modeling"`, `"monitoring"`, `"archiving"`,
    /// `"visualization"`, `"engine"`, `"platform"`.
    pub stage: &'static str,
    /// Human-readable span name.
    pub name: String,
    /// Start time in microseconds since the tracer epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
}

/// A metric registered through [`counter_add`] or [`gauge_set`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotonically accumulated count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static METRICS: Mutex<BTreeMap<String, MetricValue>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent of
    /// the next span started here.
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the tracer epoch (first use in the
/// process). Monotonic.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Is the tracer currently recording? A single relaxed atomic load; this
/// is the only cost [`span!`] pays when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Pins the epoch so the first span does not pay for
/// `OnceLock` initialization.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Spans already open keep recording when they
/// close; new [`span!`] calls become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clear all recorded spans and metrics. Does not change the enabled
/// flag or the epoch.
pub fn reset() {
    SPANS.lock().expect("span sink poisoned").clear();
    METRICS.lock().expect("metric registry poisoned").clear();
}

/// Drain and return all completed spans, ordered by completion time.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *SPANS.lock().expect("span sink poisoned"))
}

/// Clone all completed spans without draining them.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    SPANS.lock().expect("span sink poisoned").clone()
}

/// Add `delta` to the named counter. No-op while disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut metrics = METRICS.lock().expect("metric registry poisoned");
    match metrics
        .entry(name.to_string())
        .or_insert(MetricValue::Counter(0))
    {
        MetricValue::Counter(total) => *total += delta,
        MetricValue::Gauge(_) => {}
    }
}

/// Set the named gauge to `value` (last write wins). No-op while
/// disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    METRICS
        .lock()
        .expect("metric registry poisoned")
        .insert(name.to_string(), MetricValue::Gauge(value));
}

/// Clone the metric registry.
pub fn metrics() -> BTreeMap<String, MetricValue> {
    METRICS.lock().expect("metric registry poisoned").clone()
}

/// Render the metric registry as a plain-text snapshot, one
/// `name kind value` line per metric, sorted by name.
pub fn metrics_snapshot() -> String {
    let metrics = METRICS.lock().expect("metric registry poisoned");
    let mut out = String::new();
    for (name, value) in metrics.iter() {
        match value {
            MetricValue::Counter(total) => {
                out.push_str(&format!("{name} counter {total}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{name} gauge {v}\n"));
            }
        }
    }
    out
}

/// RAII guard for an open span; records a [`SpanRecord`] when dropped.
///
/// Construct through [`span!`] (which skips construction entirely while
/// the tracer is disabled) or [`start_span`].
pub struct SpanGuard {
    id: u64,
    parent: Option<u64>,
    stage: &'static str,
    name: String,
    start_us: u64,
    tid: u64,
}

/// Open a span unconditionally. Prefer [`span!`], which formats the name
/// lazily and checks [`enabled`] first.
pub fn start_span(stage: &'static str, name: String) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        id,
        parent,
        stage,
        name,
        start_us: now_us(),
        tid: THREAD_ID.with(|t| *t),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = now_us();
        OPEN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else {
                // Out-of-order drop (guards moved across scopes); unlink
                // without disturbing the rest of the stack.
                stack.retain(|&open| open != self.id);
            }
        });
        SPANS.lock().expect("span sink poisoned").push(SpanRecord {
            id: self.id,
            parent: self.parent,
            stage: self.stage,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: end_us.saturating_sub(self.start_us),
            tid: self.tid,
        });
    }
}

/// Open a span for the current scope: `span!(stage, name-format, args…)`.
///
/// Expands to a single relaxed atomic load when tracing is disabled —
/// the name format arguments are not evaluated. Bind the result to a
/// named variable (`let _span = span!(…)`); binding to `_` drops the
/// guard immediately and records an empty interval.
#[macro_export]
macro_rules! span {
    ($stage:expr, $($name:tt)+) => {
        if $crate::enabled() {
            Some($crate::start_span($stage, format!($($name)+)))
        } else {
            None
        }
    };
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render spans in the Chrome trace-event JSON format.
///
/// The output is an object with a `traceEvents` array of `ph:"X"`
/// (complete) events and an `otherData.metrics` object holding the
/// current metric registry. Load it in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&span.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(span.stage, &mut out);
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        out.push_str(&span.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&span.dur_us.to_string());
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&span.tid.to_string());
        out.push_str(",\"args\":{\"id\":");
        out.push_str(&span.id.to_string());
        if let Some(parent) = span.parent {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"metrics\":{");
    let metrics = METRICS.lock().expect("metric registry poisoned");
    for (i, (name, value)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        out.push_str("\":");
        match value {
            MetricValue::Counter(total) => out.push_str(&total.to_string()),
            MetricValue::Gauge(v) if v.is_finite() => out.push_str(&format!("{v}")),
            MetricValue::Gauge(_) => out.push_str("null"),
        }
    }
    out.push_str("}}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share one process-global tracer; serialize them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _guard = lock();
        disable();
        reset();
        {
            let _span = span!("engine", "should not appear {}", 1);
            counter_add("engine.events", 42);
            gauge_set("engine.ratio", 0.5);
        }
        assert!(take_spans().is_empty());
        assert!(metrics().is_empty());
        assert_eq!(metrics_snapshot(), "");
    }

    #[test]
    fn enabled_tracer_nests_spans_across_threads() {
        let _guard = lock();
        disable();
        reset();
        enable();
        {
            let _outer = span!("archiving", "outer");
            {
                let _inner = span!("archiving", "inner");
            }
            let handles: Vec<_> = (0..2)
                .map(|worker| {
                    std::thread::spawn(move || {
                        let _root = span!("monitoring", "worker {worker}");
                        let _child = span!("monitoring", "worker {worker} child");
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("worker thread");
            }
        }
        disable();
        let spans = take_spans();
        assert_eq!(spans.len(), 6);

        let by_name = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("span {name} recorded"))
        };
        let outer = by_name("outer");
        let inner = by_name("inner");
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_us >= outer.start_us);

        // Each worker thread nests its own pair, has no parent link into
        // the main thread, and reports a distinct thread id.
        let mut worker_tids = Vec::new();
        for worker in 0..2 {
            let root = by_name(&format!("worker {worker}"));
            let child = by_name(&format!("worker {worker} child"));
            assert_eq!(root.parent, None);
            assert_eq!(child.parent, Some(root.id));
            assert_eq!(child.tid, root.tid);
            assert_ne!(root.tid, outer.tid);
            worker_tids.push(root.tid);
        }
        assert_ne!(worker_tids[0], worker_tids[1]);
    }

    #[test]
    fn metrics_accumulate_and_snapshot() {
        let _guard = lock();
        disable();
        reset();
        enable();
        counter_add("engine.events", 10);
        counter_add("engine.events", 5);
        gauge_set("engine.stale_ratio", 0.25);
        gauge_set("engine.stale_ratio", 0.75);
        disable();
        assert_eq!(
            metrics().get("engine.events"),
            Some(&MetricValue::Counter(15))
        );
        assert_eq!(
            metrics().get("engine.stale_ratio"),
            Some(&MetricValue::Gauge(0.75))
        );
        let snapshot = metrics_snapshot();
        assert!(snapshot.contains("engine.events counter 15"));
        assert!(snapshot.contains("engine.stale_ratio gauge 0.75"));
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let _guard = lock();
        disable();
        reset();
        enable();
        {
            let _span = span!("visualization", "render \"fig5\"\n\\tab");
            counter_add("pipeline.runs", 1);
            gauge_set("pipeline.nan", f64::NAN);
        }
        disable();
        let spans = take_spans();
        let json = chrome_trace_json(&spans);
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("name"),
            Some(&serde::Value::Str("render \"fig5\"\n\\tab".into()))
        );
        assert_eq!(events[0].get("ph"), Some(&serde::Value::Str("X".into())));
        assert_eq!(
            events[0].get("cat"),
            Some(&serde::Value::Str("visualization".into()))
        );
        let metrics_obj = value
            .get("otherData")
            .and_then(|v| v.get("metrics"))
            .expect("metrics object");
        assert!(matches!(
            metrics_obj.get("pipeline.runs"),
            Some(serde::Value::Int(1) | serde::Value::UInt(1))
        ));
        assert_eq!(metrics_obj.get("pipeline.nan"), Some(&serde::Value::Null));
        reset();
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let _guard = lock();
        disable();
        reset();
        let json = chrome_trace_json(&[]);
        let value: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = value.get("traceEvents").expect("traceEvents key");
        assert!(events.as_array().expect("array").is_empty());
    }
}
