//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use. The container has no crates.io access, so the
//! real harness is replaced by a small wall-clock sampler with the same
//! bench-authoring surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_with_input`, `Bencher::iter`).
//!
//! Behaviour:
//! - each benchmark is warmed up, then timed over `sample_size` samples of
//!   adaptively-chosen iteration counts;
//! - results print as `name  time: [min median max]`, one line per bench,
//!   so text tooling written against criterion's output keeps working;
//! - `--quick` (after `--`) shrinks the measurement budget, a positional
//!   argument filters benches by substring, and `--test` runs every bench
//!   body exactly once (what `cargo test` does with bench targets);
//! - machine-readable results append to `target/shim-criterion.json`, one
//!   JSON object per line: `{"name":…,"median_ns":…,"min_ns":…,"max_ns":…}`.

use std::time::{Duration, Instant};

/// What the harness was asked to do, parsed from the CLI once per run.
#[derive(Debug, Clone)]
struct RunMode {
    /// Substring filter on bench names (`None` runs everything).
    filter: Option<String>,
    /// Run each body exactly once, skip measurement.
    test_only: bool,
    /// Total measurement budget per bench.
    budget: Duration,
}

impl RunMode {
    fn from_args() -> Self {
        let mut filter = None;
        let mut test_only = false;
        let mut budget = Duration::from_millis(1500);
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--profile-time" => {}
                "--test" => test_only = true,
                "--quick" => budget = Duration::from_millis(300),
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        RunMode {
            filter,
            test_only,
            budget,
        }
    }

    fn selects(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form (the group name provides the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`/`bench_with_input` in place of a string.
pub trait IntoBenchmarkId {
    /// The textual id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Runs the closure under measurement.
pub struct Bencher<'a> {
    mode: &'a RunMode,
    samples: usize,
    /// Collected sample means, nanoseconds per iteration.
    results: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `f`, called repeatedly; the return value is kept alive so the
    /// optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode.test_only {
            std::hint::black_box(f());
            return;
        }
        // Calibrate: one untimed warmup call, then size iteration batches
        // so each sample lasts roughly budget / samples.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.mode.budget / self.samples as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.results.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(mode: &RunMode, samples: usize, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if !mode.selects(name) {
        return;
    }
    let mut b = Bencher {
        mode,
        samples: samples.max(2),
        results: Vec::new(),
    };
    f(&mut b);
    if mode.test_only {
        println!("test {name} ... ok (bench ran once)");
        return;
    }
    if b.results.is_empty() {
        return;
    }
    let mut r = b.results.clone();
    r.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let (min, median, max) = (r[0], r[r.len() / 2], r[r.len() - 1]);
    println!(
        "{name:<48} time:   [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max)
    );
    append_record(name, min, median, max);
}

fn append_record(name: &str, min: f64, median: f64, max: f64) {
    use std::io::Write;
    // Bench binaries run with the package dir (not the workspace root) as
    // cwd; locate the enclosing `target/` from the executable's own path.
    let Some(target) = std::env::current_exe().ok().and_then(|exe| {
        exe.ancestors()
            .find(|p| p.file_name().is_some_and(|n| n == "target"))
            .map(std::path::Path::to_path_buf)
    }) else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(target.join("shim-criterion.json"))
    {
        let _ = writeln!(
            file,
            "{{\"name\":\"{name}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"max_ns\":{max:.1}}}"
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Benches `f` with a borrowed input value.
    pub fn bench_with_input<I, ID: IntoBenchmarkId, F>(&mut self, id: ID, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&self.criterion.mode, self.samples, &full, &mut |b| {
            f(b, input)
        });
    }

    /// Benches a closure with no external input.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&self.criterion.mode, self.samples, &full, &mut f);
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The harness entry object handed to every `criterion_group!` target.
pub struct Criterion {
    mode: RunMode,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: RunMode::from_args(),
            default_samples: 12,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&self.mode, self.default_samples, name, &mut f);
        self
    }
}

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn format_time_scales() {
        assert_eq!(format_time(12.0), "12.00 ns");
        assert_eq!(format_time(12_500.0), "12.50 µs");
        assert_eq!(format_time(2.5e6), "2.50 ms");
        assert_eq!(format_time(3.2e9), "3.200 s");
    }
}
