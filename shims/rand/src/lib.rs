//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container this repository builds in has no crates.io access,
//! so the real crate is replaced by this deterministic shim: a
//! xoshiro256** generator seeded through SplitMix64, with the `Rng`,
//! `SeedableRng`, and `distributions::{Distribution, WeightedIndex}`
//! surfaces the graph generators call. Identical seeds produce identical
//! streams on every platform, which is all the experiments require.

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// A uniform value over the output type's full domain (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply bounded sampling; the ~2^-64 bias is
                // irrelevant for synthetic workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start.wrapping_add(hi)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u: f64 = f64::sample_standard(rng);
                self.start + (u as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — fast, high-quality, and deterministic. (The real
    /// `StdRng` is ChaCha12; any fixed algorithm serves the simulator's
    /// needs equally.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim uses one algorithm for every generator.
    pub type SmallRng = StdRng;
}

/// Distributions over non-uniform domains.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Samples indices proportionally to a weight table (cumulative-sum +
    /// binary search).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler; errors if no weight is positive or any
        /// weight is negative/non-finite.
        pub fn new<'a, I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator<Item = &'a f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for &w in weights {
                // NaN must be rejected too, so compare via is_sign/finite
                // rather than a plain `w < 0.0`.
                if w.is_nan() || w < 0.0 || !w.is_finite() {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x: f64 = rng.gen::<f64>() * self.total;
            // First index whose cumulative weight exceeds x.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }

    /// Errors from [`WeightedIndex::new`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WeightedError {
        /// A weight was negative, NaN, or infinite.
        InvalidWeight,
        /// The weight table summed to zero.
        AllWeightsZero,
    }

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = vec![0.0, 1.0, 9.0];
        let dist = WeightedIndex::new(&weights).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 5, "{counts:?}");
    }
}
