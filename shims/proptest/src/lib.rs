//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's property tests use. The container has no crates.io access,
//! so the real framework is replaced by a deterministic generate-and-check
//! runner: strategies are simple generator objects, each test case draws
//! its inputs from a seed derived from the test name and case index, and a
//! failing case reports the generated input. There is **no shrinking** —
//! the failing input prints as-is — which is an acceptable trade for a
//! reproduction harness where determinism matters more than minimality.
//!
//! Supported surface: `proptest!` (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_oneof!`, `Just`, `any`,
//! integer/float range strategies, `&str` regex strategies (character
//! classes and bounded quantifiers), tuples up to arity 12,
//! `prop::collection::vec`, `prop::option::of`, and the `prop_map` /
//! `prop_flat_map` / `prop_filter` / `boxed` combinators.

use std::fmt::Debug;
use std::marker::PhantomData;

// ------------------------------------------------------------------- rng

/// The deterministic generator handed to strategies (xoshiro256** seeded
/// via SplitMix64, like the workspace's rand shim).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)` via widening multiply (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// -------------------------------------------------------------- strategy

pub mod strategy {
    use super::*;

    /// A generator of test-case inputs.
    pub trait Strategy {
        /// The generated input type.
        type Value: Debug;

        /// Draws one input.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `keep`; retries generation (bounded —
        /// the real framework rejects whole cases instead).
        fn prop_filter<F>(self, reason: impl Into<String>, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                keep,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        keep: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly (or by weight) among boxed alternatives; the
    /// expansion target of `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T: Debug> Union<T> {
        /// Uniform choice.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            Self::new_weighted(variants.into_iter().map(|v| (1, v)).collect())
        }

        /// Weighted choice.
        pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs an alternative");
            let total_weight = variants.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! weights sum to zero");
            Union {
                variants,
                total_weight,
            }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (w, v) in &self.variants {
                if pick < *w as u64 {
                    return v.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("pick below total weight")
        }
    }

    /// Types with a canonical full-domain strategy ([`any`]).
    pub trait Arbitrary: Sized + Debug {
        /// Draws a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64() as f32
        }
    }

    /// See [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    // Integer ranges.
    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Float ranges.
    macro_rules! impl_strategy_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_strategy_float_range!(f32, f64);

    // Tuples of strategies generate tuples of values.
    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
    }

    // `&'static str` is a regex strategy over a pragmatic subset:
    // character classes (with ranges), literals, `\x` escapes, `.`
    // (printable ASCII), and the quantifiers `{n}`, `{m,n}`, `?`, `+`,
    // `*` (unbounded forms capped at 8 repeats).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_regex(self, rng)
        }
    }

    struct RegexAtom {
        /// Inclusive char ranges; a literal is a single-char range.
        ranges: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
        let atoms = parse_regex(pattern);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            let total: u64 = atom
                .ranges
                .iter()
                .map(|&(lo, hi)| (hi as u64) - (lo as u64) + 1)
                .sum();
            for _ in 0..n {
                let mut pick = rng.below(total);
                for &(lo, hi) in &atom.ranges {
                    let size = (hi as u64) - (lo as u64) + 1;
                    if pick < size {
                        out.push(
                            char::from_u32(lo as u32 + pick as u32).expect("valid char range"),
                        );
                        break;
                    }
                    pick -= size;
                }
            }
        }
        out
    }

    fn parse_regex(pattern: &str) -> Vec<RegexAtom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            assert!(lo <= hi, "bad class range in `{pattern}`");
                            ranges.push((lo, hi));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in `{pattern}`");
                    i += 1; // ']'
                    ranges
                }
                '.' => {
                    i += 1;
                    vec![(' ', '~')]
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    vec![(c, c)]
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            // Quantifier, if any.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier min"),
                            hi.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "bad quantifier in `{pattern}`");
            atoms.push(RegexAtom { ranges, min, max });
        }
        atoms
    }
}

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

// ------------------------------------------------------------ collections

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Accepted size arguments for [`vec`]: an exact `usize`, a
    /// half-open `Range`, or a `RangeInclusive`.
    pub trait IntoSizeRange {
        /// Inclusive (min, max) bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy for vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ------------------------------------------------------------ test runner

/// The case loop, configuration, and failure plumbing behind `proptest!`.
pub mod test_runner {
    use super::TestRng;

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many generated cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// A `prop_assert!` failed.
        Fail(String),
        /// The case asked to be discarded.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A discarded case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `config.cases` deterministic cases of `body`. The body writes
    /// the generated input's debug form into its second argument *before*
    /// running assertions, so panics and failures can report it.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let seed = fnv1a(name) ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1);
            let mut rng = TestRng::from_seed_u64(seed);
            let mut input = String::new();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng, &mut input)
            }));
            match outcome {
                Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("proptest `{name}` failed at case {case}:\n  {msg}\n  input: {input}");
                }
                Err(payload) => {
                    eprintln!("proptest `{name}` panicked at case {case}; input: {input}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- macros

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                stringify!($name),
                &__config,
                |__rng, __input| {
                    let __strategy = ($($strat,)+);
                    let __value = $crate::Strategy::generate(&__strategy, __rng);
                    *__input = format!("{:?}", __value);
                    let ($($arg,)+) = __value;
                    let __body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    __body()
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case (with an optional formatted message) if the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            __left,
            __right
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `(left != right)`\n  both: {:?}",
            __left
        );
    }};
}

/// Picks among alternative strategies, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The glob-import surface property tests expect.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed_u64(1);
        for _ in 0..500 {
            let v = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = crate::TestRng::from_seed_u64(2);
        for _ in 0..200 {
            let s = "[A-Z][a-z]{1,8}".generate(&mut rng);
            assert!((2..=9).contains(&s.len()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().expect("non-empty").is_ascii_uppercase());
            assert!(cs.all(|c| c.is_ascii_lowercase()));

            let t = "[A-Za-z0-9 _.:-]{1,24}".generate(&mut rng);
            assert!((1..=24).contains(&t.len()));
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.:-".contains(c)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::from_seed_u64(3);
        let strat = (2u32..40)
            .prop_flat_map(|n| (Just(n), prop::collection::vec(0..n, 0..10)))
            .prop_map(|(n, v)| (n, v.len()))
            .prop_filter("keep all", |_| true);
        for _ in 0..100 {
            let (n, len) = strat.generate(&mut rng);
            assert!((2..40).contains(&n));
            assert!(len < 10);
        }
    }

    #[test]
    fn oneof_and_option() {
        let mut rng = crate::TestRng::from_seed_u64(4);
        let strat = prop_oneof![Just(0u8), Just(1), Just(2)];
        let mut saw = [false; 3];
        for _ in 0..200 {
            saw[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(saw, [true; 3]);

        let opt = prop::option::of(Just(7u8));
        let mut nones = 0;
        for _ in 0..400 {
            if opt.generate(&mut rng).is_none() {
                nones += 1;
            }
        }
        assert!((20..200).contains(&nones), "{nones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself: patterns, multiple args, asserts.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..100, 0u32..100), c in any::<bool>()) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(c, c);
            prop_assert_ne!(a + 200, b);
        }
    }
}
