//! Offline stand-in for the subset of the `serde` 1.x API this workspace
//! uses. The container has no crates.io access, so the real framework is
//! replaced by a minimal value-tree design: [`Serialize`] lowers a type to
//! a self-describing [`Value`], [`Deserialize`] rebuilds it, and the
//! companion `serde_json` shim renders/parses `Value` as JSON text. The
//! derive macros (from the `serde_derive` shim) generate the same
//! externally-tagged representation real serde uses, so archives written
//! by one build parse identically in the next.
//!
//! Supported shapes: named/tuple/unit structs, enums with unit, newtype,
//! tuple, and struct variants, and the `#[serde(skip)]` field attribute
//! (skipped fields deserialize via `Default`).

use std::collections::{BTreeMap, HashMap};

/// A self-describing serialized value — the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and unit).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Array(Vec<Value>),
    /// A key/value mapping, in insertion (= declaration) order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// A deserialization error: what was expected, and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X" error.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v`, reporting a [`DeError`] on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

pub use serde_derive::{Deserialize, Serialize};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Derive-macro helper: fetches and parses a struct field.
pub fn from_field<T: Deserialize>(pairs: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match pairs.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_value_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    _ => return Err(DeError::expected(concat!("integer (", stringify!($t), ")"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_value_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    _ => Err(DeError::expected("number")),
                }
            }
        }
    )*};
}
impl_value_float!(f32, f64);

// ------------------------------------------------------- scalars & text

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            // Deserializing into &'static str (static catalogs/registries
            // do this) has no owner to borrow from; leak the small string.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null")),
        }
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_value_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of {expected}, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_value_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Serializes ordered (key, value) pairs: string-keyed maps render as a
/// JSON object, anything else as an array of `[key, value]` pairs (real
/// serde_json rejects non-string keys outright; the array form keeps
/// structured keys round-trippable).
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)> + Clone,
) -> Value {
    let all_str = entries
        .clone()
        .all(|(k, _)| matches!(k.to_value(), Value::Str(_)));
    if all_str {
        Value::Object(
            entries
                .map(|(k, v)| {
                    let Value::Str(key) = k.to_value() else {
                        unreachable!("checked above");
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    } else {
        Value::Array(
            entries
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

/// Inverse of [`map_to_value`]: accepts both encodings.
fn map_from_value<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<impl Iterator<Item = (K, V)>, DeError> {
    let entries: Vec<(K, V)> = match v {
        Value::Object(pairs) => pairs
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
            .collect::<Result<_, DeError>>()?,
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| DeError::expected("[key, value] map entry"))?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect::<Result<_, DeError>>()?,
        _ => return Err(DeError::expected("object or entry array")),
    };
    Ok(entries.into_iter())
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value(v)?.collect())
    }
}

impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(pairs.into_iter())
    }
}

impl<K: Deserialize + Ord + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value(v)?.collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn very_large_u64_uses_uint() {
        let v = u64::MAX.to_value();
        assert_eq!(v, Value::UInt(u64::MAX));
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn int_to_float_coercion() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let rt = Vec::<(u64, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, rt);

        let opt: Option<String> = None;
        assert_eq!(opt.to_value(), Value::Null);

        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1i64);
        let rt = BTreeMap::<String, i64>::from_value(&map.to_value()).unwrap();
        assert_eq!(map, rt);
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
