//! Offline stand-in for `serde_derive`. Expands `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` against the value-tree traits in the companion
//! `serde` shim, producing the same externally-tagged shape real serde
//! emits for the forms this workspace uses: named / tuple / unit structs
//! and enums with unit, newtype, tuple, or struct variants. The only
//! field attribute honoured is `#[serde(skip)]` (omitted on serialize,
//! `Default::default()` on deserialize); generics are rejected.
//!
//! Implementation note: the input item is parsed directly from the raw
//! `TokenStream` (no syn/quote in the container), and the impl is built
//! as a source string and re-parsed — only field names, arities, and skip
//! flags are needed, never field types, because the generated code leans
//! on inference through `::serde::from_field` / `from_value`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ------------------------------------------------------------- item model

struct Item {
    name: String,
    body: Body,
}

enum Body {
    UnitStruct,
    /// Tuple struct with `arity` fields (1 = newtype).
    TupleStruct {
        arity: usize,
    },
    NamedStruct {
        fields: Vec<Field>,
    },
    Enum {
        variants: Vec<Variant>,
    },
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// `arity` unnamed fields (1 = newtype).
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------- parsing

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes; returns whether any was
/// `#[serde(skip)]`. Any other `#[serde(...)]` content is rejected.
fn eat_attrs(tokens: &mut Tokens) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        let Some(TokenTree::Group(g)) = tokens.next() else {
            panic!("expected [...] after #");
        };
        let mut inner = g.stream().into_iter();
        if matches!(&inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
            let Some(TokenTree::Group(args)) = inner.next() else {
                panic!("expected #[serde(...)]");
            };
            let args: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
            if args == ["skip"] {
                skip = true;
            } else {
                panic!("unsupported serde attribute #[serde({})]", args.join(""));
            }
        }
    }
    skip
}

/// Consumes `pub`, `pub(...)` if present.
fn eat_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens, what: &str) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Skips one field's type: everything up to a top-level `,` (or the end),
/// where "top-level" tracks `<`/`>` nesting since angle brackets are plain
/// punctuation in a token stream.
fn skip_type(tokens: &mut Tokens) {
    let mut depth = 0i32;
    while let Some(t) = tokens.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        tokens.next();
    }
}

/// Parses `{ a: T, #[serde(skip)] b: U, .. }` field lists.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let skip = eat_attrs(&mut tokens);
        eat_visibility(&mut tokens);
        let name = expect_ident(&mut tokens, "field name");
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut tokens);
        tokens.next(); // separating comma, if any
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts fields of a `( T, U, .. )` list; `#[serde(skip)]` is not
/// supported in tuple position.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut arity = 0;
    while tokens.peek().is_some() {
        if eat_attrs(&mut tokens) {
            panic!("#[serde(skip)] is not supported on tuple fields");
        }
        eat_visibility(&mut tokens);
        skip_type(&mut tokens);
        tokens.next();
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        eat_attrs(&mut tokens);
        let name = expect_ident(&mut tokens, "variant name");
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        tokens.next(); // separating comma, if any
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    eat_attrs(&mut tokens);
    eat_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens, "`struct` or `enum`");
    let name = expect_ident(&mut tokens, "type name");
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("the serde shim derive does not support generic types (on `{name}`)");
    }
    let body = match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::NamedStruct {
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct {
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::Enum {
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive for `{other} {name}`"),
    };
    Item { name, body }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct { arity: 1 } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::NamedStruct { fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Body::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            vals.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            binds.join(", "),
                            pairs.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::Value::Null => Ok({name}),\n\
                 _ => Err(::serde::DeError::expected(\"null for unit struct {name}\")),\n\
             }}"
        ),
        Body::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::TupleStruct { arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\"))?;\n\
                 if __items.len() != {arity} {{\n\
                     return Err(::serde::DeError::expected(\"array of {arity} for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::NamedStruct { fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!("{0}: ::serde::from_field(__pairs, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!(
                "let __pairs = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(unit_arms, "\"{vn}\" => Ok({name}::{vn}),");
                    }
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(_inner)?)),"
                        );
                    }
                    VariantKind::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => {{\n\
                                 let __items = _inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\"))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return Err(::serde::DeError::expected(\"array of {arity} for {name}::{vn}\"));\n\
                                 }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }}",
                            items.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::core::default::Default::default()", f.name)
                                } else {
                                    format!("{0}: ::serde::from_field(__fields, \"{0}\")?", f.name)
                                }
                            })
                            .collect();
                        let _ = write!(
                            tagged_arms,
                            "\"{vn}\" => {{\n\
                                 let __fields = _inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        );
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::DeError(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                         let (__tag, _inner) = &__pairs[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => Err(::serde::DeError(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::expected(\"string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
