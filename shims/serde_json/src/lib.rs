//! Offline stand-in for the subset of the `serde_json` 1.x API this
//! workspace uses (`to_string`, `to_string_pretty`, `from_str`, `Error`).
//! Works against the value-tree model of the companion `serde` shim: the
//! writer renders a [`serde::Value`] as JSON text, and the reader is a
//! recursive-descent parser producing one. Floats print through Rust's
//! shortest-roundtrip `Display`, so parse(print(x)) == x — the guarantee
//! the real crate's `float_roundtrip` feature provides.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display is shortest-roundtrip; keep a decimal
                // point so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs encode astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error(format!("bad \\u{cp:04x}")))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let hex = std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            // Integers keep full 64-bit precision.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
    }

    #[test]
    fn float_roundtrips_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, 6.02214076e23, 81.6432, 1e-300] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "through {s}");
        }
    }

    #[test]
    fn whole_float_keeps_decimal_point() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
    }

    #[test]
    fn containers_and_strings() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,0.5],[2,1.5]]");
        assert_eq!(from_str::<Vec<(u64, f64)>>(&s).unwrap(), v);

        let text = "line\n\"quoted\"\tünïcode \u{1F600}".to_string();
        let s = to_string(&text).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), text);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
