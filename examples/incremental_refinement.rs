//! Incremental modeling (requirement R3): start with the generic domain
//! model, evaluate, read the feedback, refine — the iterative loop of
//! paper Figure 2, driven by validation output rather than foresight.
//!
//! ```sh
//! cargo run --release --example incremental_refinement
//! ```

use granula::experiment::{dg1000_quick, Platform};
use granula::models::{domain_model, giraph_model};
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;
use granula_model::{AbstractionLevel, ValidationIssue};

fn main() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let meta = JobMeta {
        job_id: "refinement-demo".into(),
        platform: "Giraph".into(),
        algorithm: "BFS".into(),
        dataset: "dg1000".into(),
        nodes: 8,
        model: String::new(),
    };

    // Iteration 0: the analyst knows only the domain (Figure 3).
    println!("--- iteration 0: generic domain model ---");
    let model0 = domain_model("Giraph", "GiraphJob");
    let report0 = EvaluationProcess::new(model0).evaluate(&result.run, meta.clone());
    println!(
        "events kept {}/{} | coverage {:.0}% | {} ops archived",
        report0.events_kept,
        report0.events_total,
        100.0 * report0.validation.coverage(),
        report0.archive.num_operations()
    );
    println!("feedback: every phase archived; nothing below the domain level is visible.");
    println!("decision: I/O is the largest phase -> refine LoadGraph and ProcessGraph.\n");

    // Iteration 1: refine to the system level only (truncated full model).
    println!("--- iteration 1: system-level model ---");
    let model1 = giraph_model().truncated(AbstractionLevel::System);
    let report1 = EvaluationProcess::new(model1).evaluate(&result.run, meta.clone());
    println!(
        "events kept {}/{} | coverage {:.0}% | {} ops archived",
        report1.events_kept,
        report1.events_total,
        100.0 * report1.validation.coverage(),
        report1.archive.num_operations()
    );
    let supersteps = report1
        .archive
        .tree
        .by_mission_kind("Superstep")
        .filter_map(|o| o.duration_us())
        .collect::<Vec<_>>();
    let max = supersteps.iter().copied().max().unwrap_or(0);
    println!(
        "insight: {} supersteps archived; the longest takes {:.2}s.",
        supersteps.len(),
        max as f64 / 1e6
    );
    println!("decision: superstep skew found -> refine LocalSuperstep internals.\n");

    // Iteration 2: the full 4-level model of Figure 4.
    println!("--- iteration 2: full 4-level model ---");
    let model2 = giraph_model();
    let report2 = EvaluationProcess::new(model2).evaluate(&result.run, meta);
    println!(
        "events kept {}/{} | coverage {:.0}% | {} ops archived",
        report2.events_kept,
        report2.events_total,
        100.0 * report2.validation.coverage(),
        report2.archive.num_operations()
    );
    let unobserved: Vec<String> = report2
        .validation
        .issues
        .iter()
        .filter_map(|i| match i {
            ValidationIssue::UnobservedType { ty } => Some(ty.label()),
            _ => None,
        })
        .collect();
    if unobserved.is_empty() {
        println!("validation: clean — the model fully describes the observed execution.");
    } else {
        println!("validation: modeled-but-unobserved types: {unobserved:?}");
    }
    println!(
        "\ncost of depth: iteration 0 archived {} ops, iteration 2 archived {} — \
         the analyst chose where to pay.",
        report0.archive.num_operations(),
        report2.archive.num_operations()
    );
}
