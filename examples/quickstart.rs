//! Quickstart: the whole Granula pipeline in one page.
//!
//! Generate a Datagen-like graph, run BFS on the simulated Giraph platform,
//! evaluate the run with the 4-level Giraph performance model, and inspect
//! the archive: domain breakdown, path queries, JSON export.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_platforms::{Algorithm, GiraphPlatform, JobConfig};
use granula::metrics::{DomainBreakdown, Phase};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::{to_json_pretty, JobMeta, Query};
use granula_viz::tree::render_operation_tree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A workload: BFS over a 20k-vertex power-law graph on 8 nodes,
    //    volumes scaled up to emulate the paper's billion-scale dg1000.
    let graph = datagen_like(&GenConfig::datagen(20_000, 42));
    let cfg = JobConfig::new(
        "quickstart-bfs",
        "dg1000",
        Algorithm::Bfs { source: 1 },
        8,
        granula::calibration::giraph_costs(),
    )
    .with_scale(1.03e9 / 200_000.0);

    // 2. Monitoring (P2): run the instrumented platform.
    let run = GiraphPlatform::default().run(&graph, &cfg)?;
    println!(
        "platform run: {} log events, {} env samples, {} supersteps, output verified: {}",
        run.events.len(),
        run.env_samples.len(),
        run.iterations,
        run.output
            .matches(&gpsim_platforms::common::reference_output(
                &graph,
                cfg.algorithm
            )),
    );

    // 3. Modeling (P1) + Archiving (P3): evaluate under the Giraph model.
    let process = EvaluationProcess::new(giraph_model());
    let report = process.evaluate(
        &run,
        JobMeta {
            job_id: cfg.job_id.clone(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: cfg.dataset.clone(),
            nodes: 8,
            model: String::new(),
        },
    );
    println!(
        "archive: {} operations, {} infos, model coverage {:.0}%, {} validation issues",
        report.archive.num_operations(),
        report.archive.num_infos(),
        100.0 * report.validation.coverage(),
        report.validation.issues.len()
    );

    // 4. Analysis: domain metrics (Ts / Td / Tp) and path queries.
    let b = DomainBreakdown::from_archive(&report.archive).expect("runtime present");
    println!(
        "\ndomain breakdown: total {:.2}s | setup {:.1}% | io {:.1}% | processing {:.1}%",
        b.total_s(),
        100.0 * b.fraction(Phase::Setup),
        100.0 * b.fraction(Phase::InputOutput),
        100.0 * b.fraction(Phase::Processing)
    );

    let q = Query::parse("GiraphJob/ProcessGraph/Superstep").expect("valid query");
    let supersteps = q.select(&report.archive.tree);
    println!("query `{q}` -> {} supersteps", supersteps.len());
    let longest = supersteps
        .iter()
        .filter_map(|&id| report.archive.tree.op(id).duration_us().map(|d| (id, d)))
        .max_by_key(|&(_, d)| d);
    if let Some((id, d)) = longest {
        println!(
            "longest superstep: {} at {:.2}s",
            report.archive.tree.op(id).label(),
            d as f64 / 1e6
        );
    }

    // 5. Visualization (P4): the operation hierarchy, pruned to 2 levels.
    println!("\n{}", render_operation_tree(&report.archive.tree, 2));

    // 6. Sharing (R2): the standardized JSON envelope.
    let json = to_json_pretty(&report.archive).expect("serializable archive");
    println!(
        "archive JSON: {} bytes (share or diff this artifact)",
        json.len()
    );
    Ok(())
}
