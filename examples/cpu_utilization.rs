//! Resource-to-operation mapping (the paper's §4.3 workflow): render each
//! platform's per-node CPU usage under the domain-level phase bands and
//! let the data diagnose the loaders.
//!
//! ```sh
//! cargo run --release --example cpu_utilization
//! ```

use granula::experiment::{dg1000_quick, Platform};
use granula_monitor::ResourceKind;
use granula_viz::TimelineChart;

fn main() {
    for platform in [Platform::Giraph, Platform::PowerGraph] {
        println!("running {} ...", platform.name());
        let result = dg1000_quick(platform, 20_000);
        let archive = &result.report.archive;
        let env = &result.report.env;

        let mut chart = TimelineChart::new(env, ResourceKind::Cpu);
        let root = archive.tree.root().expect("job root");
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            if let Some(id) = archive.tree.child_by_mission(root, kind) {
                let op = archive.tree.op(id);
                if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                    chart = chart.with_phase(kind, s, e);
                }
            }
        }
        println!("\n=== {} cluster CPU (cumulative) ===", platform.name());
        println!("{}", chart.render_text(90, 10));

        // The Granula mapping: per-operation CPU means, straight from infos.
        println!("mean CPU on the operation's node, per domain phase:");
        for kind in ["Startup", "LoadGraph", "ProcessGraph", "Cleanup"] {
            if let Some(id) = archive.tree.child_by_mission(root, kind) {
                if let Some(mean) = archive.tree.op(id).info_f64("CpuMean") {
                    println!("  {kind:<14} {mean:>7.1} cpu/s");
                }
            }
        }
        println!();
    }
    println!(
        "Diagnosis (as in the paper): Giraph's loader is compute-intensive on\n\
         every node; PowerGraph's loader burns one node while seven idle."
    );
}
