//! Cross-platform comparison (the paper's §4.2 workflow): run the same
//! BFS-on-dg1000 workload on Giraph and PowerGraph, collect both archives
//! in a store, and compare the common domain-level metrics.
//!
//! ```sh
//! cargo run --release --example compare_platforms
//! ```

use granula::experiment::{dg1000_quick, Platform};
use granula::metrics::Phase;
use granula_archive::ArchiveStore;
use granula_viz::{BreakdownChart, BreakdownRow};

fn main() {
    let mut store = ArchiveStore::new();
    let mut chart = BreakdownChart::new();

    for platform in [Platform::Giraph, Platform::PowerGraph] {
        println!("running {} ...", platform.name());
        let result = dg1000_quick(platform, 20_000);
        let archive = &result.report.archive;
        let mut row = BreakdownRow::new(platform.name(), result.breakdown.total_us);
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            let d = archive.total_duration_of_us(kind);
            if d > 0 {
                row = row.with_segment(kind, d);
            }
        }
        chart.add_row(row);
        println!(
            "  {}: total {:.1}s, Ts {:.1}%, Td {:.1}%, Tp {:.1}%",
            platform.name(),
            result.breakdown.total_s(),
            100.0 * result.breakdown.fraction(Phase::Setup),
            100.0 * result.breakdown.fraction(Phase::InputOutput),
            100.0 * result.breakdown.fraction(Phase::Processing)
        );
        store
            .add(result.report.archive)
            .expect("each platform archives under a distinct job id");
    }

    // Identical domain-level operations enable cross-platform comparison.
    println!("\nCross-platform comparison of LoadGraph (via the archive store):");
    for row in store.compare("LoadGraph") {
        println!(
            "  {:<12} total {:>8.2}s   LoadGraph {:>8.2}s   ({:.1}% of runtime)",
            row.platform,
            row.total_us as f64 / 1e6,
            row.mission_us as f64 / 1e6,
            100.0 * row.fraction
        );
    }
    println!("\nProcessGraph (who actually computes faster):");
    for row in store.compare("ProcessGraph") {
        println!(
            "  {:<12} ProcessGraph {:>8.2}s   ({:.1}% of runtime)",
            row.platform,
            row.mission_us as f64 / 1e6,
            100.0 * row.fraction
        );
    }

    println!("\n{}", chart.render_text(72));
    println!(
        "The paper's conclusion reproduces: PowerGraph processes the graph\n\
         faster, yet its sequential loader makes the end-to-end job ~5x slower."
    );
}
