//! Memory profiling: the environment monitor's second channel.
//!
//! The paper's Figures 6–7 map CPU usage onto operations; the same
//! machinery maps memory. The three platforms' loader designs have
//! unmistakable RSS signatures: PowerGraph's machine 0 towers with a
//! whole-graph staging buffer, Giraph's JVM partitions are balanced but
//! heavy, GraphMat's matrix blocks are balanced and compact.
//!
//! ```sh
//! cargo run --release --example memory_profile
//! ```

use granula::experiment::{dg1000_quick, Platform};
use granula_monitor::ResourceKind;
use granula_viz::TimelineChart;

fn main() {
    for platform in [Platform::Giraph, Platform::PowerGraph, Platform::GraphMat] {
        println!("running {} ...", platform.name());
        let result = dg1000_quick(platform, 20_000);
        let archive = &result.report.archive;
        let env = &result.report.env;

        let mut chart = TimelineChart::new(env, ResourceKind::Memory);
        let root = archive.tree.root().expect("job root");
        for kind in ["Startup", "LoadGraph", "ProcessGraph", "Cleanup"] {
            if let Some(id) = archive.tree.child_by_mission(root, kind) {
                let op = archive.tree.op(id);
                if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                    chart = chart.with_phase(kind, s, e);
                }
            }
        }
        println!(
            "\n=== {} cluster memory (cumulative bytes) ===",
            platform.name()
        );
        println!("{}", chart.render_text(90, 8));

        // Per-node peaks: the signature in numbers.
        println!("per-node peak RSS:");
        for node in env
            .nodes()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
        {
            if let Some(series) = env.series(&node, ResourceKind::Memory) {
                let peak = series.iter().map(|&(_, v)| v).fold(0.0, f64::max);
                println!("  {node}: {:>8.2} GB", peak / 1e9);
            }
        }
        println!();
    }
    println!(
        "Signatures: PowerGraph's loader node holds the whole parsed edge\n\
         list (released after distribution); Giraph's JVM partitions are\n\
         balanced but ~4.5x heavier per edge than GraphMat's matrix blocks."
    );
}
