//! Implementation-level analysis (the paper's §4.4 workflow): decompose
//! Giraph supersteps into PreStep/Compute/PostStep per worker and quantify
//! the two imbalances Figure 8 exposes.
//!
//! ```sh
//! cargo run --release --example superstep_analysis
//! ```

use granula::experiment::{dg1000_quick, Platform};
use granula::metrics::worker_imbalance;
use granula_archive::Query;
use granula_viz::GanttChart;

fn main() {
    println!("running Giraph ...");
    let result = dg1000_quick(Platform::Giraph, 20_000);
    let archive = &result.report.archive;

    // Window on the processing phase, like the paper's figure.
    let root = archive.tree.root().expect("job root");
    let proc_id = archive
        .tree
        .child_by_mission(root, "ProcessGraph")
        .expect("ProcessGraph");
    let op = archive.tree.op(proc_id);
    let (ps, pe) = (
        op.start_us().expect("archived"),
        op.end_us().expect("archived"),
    );

    let gantt = GanttChart::from_archive(archive, &["PreStep", "Compute", "PostStep"], "Compute")
        .with_window(ps, pe);
    println!("{}", gantt.render_text(96));

    // Imbalance across workers, per superstep.
    println!("workload imbalance per superstep (Compute operations):");
    let mut stats = worker_imbalance(archive, "Compute");
    stats.sort_by(|a, b| {
        a.iteration
            .parse::<u32>()
            .unwrap_or(0)
            .cmp(&b.iteration.parse::<u32>().unwrap_or(0))
    });
    for s in &stats {
        let bar = "#".repeat((s.mean_us / 1e6 * 10.0).round() as usize);
        println!(
            "  superstep {:>2}: mean {:>6.2}s  max/mean {:>5.2}  {}",
            s.iteration,
            s.mean_us / 1e6,
            s.imbalance,
            bar
        );
    }

    // Barrier overhead: time in PreStep + PostStep vs Compute.
    let sum = |kind: &str| -> f64 {
        Query::parse(kind)
            .expect("valid")
            .find_all(&archive.tree)
            .into_iter()
            .filter_map(|id| archive.tree.op(id).duration_us())
            .sum::<u64>() as f64
            / 1e6
    };
    let (pre, compute, post) = (sum("PreStep"), sum("Compute"), sum("PostStep"));
    println!(
        "\nsynchronization overhead: PreStep {pre:.1}s + PostStep {post:.1}s vs Compute {compute:.1}s \
         ({:.1}% overhead)",
        100.0 * (pre + post) / (pre + post + compute)
    );
}
