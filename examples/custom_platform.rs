//! Modeling a platform Granula has never seen — from raw log lines.
//!
//! Granula's inputs are *logs*, not simulator structures: any platform that
//! prints the one-line event grammar can be analyzed. This example plays
//! the analyst for a fictional "SparkleGraph" platform: hand-written log
//! lines (as scraped from worker stdout), an analyst-authored model,
//! assembly, rule derivation, validation and rendering — no simulator
//! involved.
//!
//! ```sh
//! cargo run --release --example custom_platform
//! ```

use granula_archive::{JobArchive, JobMeta};
use granula_model::{
    rules::derive_all_durations, AbstractionLevel, ChildSelector, DerivationRule, OperationTypeDef,
    PerformanceModel, RuleEngine,
};
use granula_monitor::Assembler;
use granula_viz::tree::{render_model, render_operation_tree};

fn main() {
    // 1. The "scraped logs": interleaved lines from three processes, with
    //    ordinary logging noise mixed in. Timestamps are µs since job start.
    let logs = r#"
[driver] starting SparkleGraph 0.3
GRANULA 0 head driver START SparkleJob-0@Job-0
GRANULA 0 head driver START Boot-0@Job-0 parent=SparkleJob-0@Job-0
[executor-1] JIT warmup complete
GRANULA 900000 head driver END Boot-0@Job-0
GRANULA 900000 head driver START Crunch-0@Job-0 parent=SparkleJob-0@Job-0
GRANULA 900000 nodeA exec-1 START Chew-0@Executor-1 parent=Crunch-0@Job-0
GRANULA 900000 nodeB exec-2 START Chew-0@Executor-2 parent=Crunch-0@Job-0
GRANULA 1000000 nodeA exec-1 INFO Chew-0@Executor-1 Records=123456
GRANULA 2400000 nodeA exec-1 END Chew-0@Executor-1
GRANULA 3100000 nodeB exec-2 INFO Chew-0@Executor-2 Records=654321
GRANULA 3100000 nodeB exec-2 END Chew-0@Executor-2
GRANULA 3200000 head driver END Crunch-0@Job-0
GRANULA 3200000 head driver START Drain-0@Job-0 parent=SparkleJob-0@Job-0
GRANULA 3550000 head driver END Drain-0@Job-0
GRANULA 3550000 head driver END SparkleJob-0@Job-0
[driver] job done
"#;

    // 2. The analyst's model: a 2-level view of SparkleGraph.
    let model = PerformanceModel::new("sparklegraph-v1", "SparkleGraph")
        .with_type(
            OperationTypeDef::new("Job", "SparkleJob", AbstractionLevel::Domain).with_rule(
                DerivationRule::SumChildren {
                    info: "Duration".into(),
                    select: ChildSelector::MissionKind("Crunch".into()),
                    output: "ProcessDuration".into(),
                },
            ),
        )
        .with_type(
            OperationTypeDef::new("Job", "Boot", AbstractionLevel::Domain)
                .child_of("Job", "SparkleJob"),
        )
        .with_type(
            OperationTypeDef::new("Job", "Crunch", AbstractionLevel::Domain)
                .child_of("Job", "SparkleJob")
                .with_rule(DerivationRule::MaxChildren {
                    info: "Duration".into(),
                    select: ChildSelector::MissionKind("Chew".into()),
                    output: "SlowestExecutor".into(),
                }),
        )
        .with_type(
            OperationTypeDef::new("Job", "Drain", AbstractionLevel::Domain)
                .child_of("Job", "SparkleJob"),
        )
        .with_type(
            OperationTypeDef::new("Executor", "Chew", AbstractionLevel::System)
                .child_of("Job", "Crunch")
                .parallel()
                .with_rule(DerivationRule::RatePerSecond {
                    amount: "Records".into(),
                    output: "Throughput".into(),
                }),
        );
    println!("{}", render_model(&model));

    // 3. Assembly + derivation + validation.
    let outcome = Assembler::new().assemble_lines(logs.lines());
    assert!(
        outcome.warnings.is_empty(),
        "clean logs: {:?}",
        outcome.warnings
    );
    let mut tree = outcome.tree;
    derive_all_durations(&mut tree);
    RuleEngine::apply(&model, &mut tree);
    let validation = granula_model::validate::validate(&model, &tree);
    println!(
        "assembled {} operations from {} events; validation issues: {}",
        tree.len(),
        outcome.events_processed,
        validation.issues.len()
    );

    // 4. The archive and its derived metrics.
    let archive = JobArchive::new(
        JobMeta {
            job_id: "sparkle-demo".into(),
            platform: "SparkleGraph".into(),
            algorithm: "Chew".into(),
            dataset: "handwritten".into(),
            nodes: 2,
            model: model.name.clone(),
        },
        tree,
    );
    println!("\n{}", render_operation_tree(&archive.tree, 3));
    let root = archive.tree.root().expect("assembled root");
    let crunch = archive
        .tree
        .child_by_mission(root, "Crunch")
        .expect("Crunch archived");
    println!(
        "derived: Crunch/SlowestExecutor = {:.2}s; per-executor throughput:",
        archive
            .tree
            .op(crunch)
            .info_f64("SlowestExecutor")
            .unwrap_or(0.0)
            / 1e6
    );
    for op in archive.tree.by_mission_kind("Chew") {
        println!(
            "  {}: {:.0} records/s",
            op.label(),
            op.info_f64("Throughput").unwrap_or(0.0)
        );
    }
    println!(
        "\nthe executor imbalance (2.4s vs 3.1s Chew) is exactly what an\n\
         analyst would refine next — same loop, custom platform."
    );
}
