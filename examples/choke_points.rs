//! Choke-point analysis and failure diagnosis (paper §6 extensions).
//!
//! First: automatic choke-point ranking on both platforms' dg1000 runs —
//! the analysis names PowerGraph's sequential loader and Giraph's barriers
//! without the analyst eyeballing any chart. Then: a simulated worker crash
//! (its END events never reach the logs) and the diagnosis that follows.
//!
//! ```sh
//! cargo run --release --example choke_points
//! ```

use granula::analysis::{diagnose, find_choke_points, ChokePointConfig, ChokePointKind};
use granula::experiment::{dg1000_quick, Platform};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;

fn main() {
    // --- choke points on healthy runs -----------------------------------
    for platform in [Platform::Giraph, Platform::PowerGraph] {
        println!(
            "=== choke points: {} (BFS, dg1000, 8 nodes) ===",
            platform.name()
        );
        let result = dg1000_quick(platform, 20_000);
        let findings = find_choke_points(&result.report.archive, &ChokePointConfig::default());
        for c in findings.iter().take(5) {
            let kind = match &c.kind {
                ChokePointKind::DominantFraction { fraction } => {
                    format!("dominates parent ({:.0}%)", fraction * 100.0)
                }
                ChokePointKind::LatencyBound { cpu_mean } => {
                    format!("latency-bound (mean {cpu_mean:.2} busy cores)")
                }
                ChokePointKind::Imbalance {
                    max_over_mean,
                    actors,
                } => {
                    format!("imbalance across {actors} actors (max/mean {max_over_mean:.2})")
                }
                ChokePointKind::RecoveryOverhead { worker, wasted_us } => {
                    format!(
                        "recovery after losing {worker} ({:.1}s wasted)",
                        *wasted_us as f64 / 1e6
                    )
                }
            };
            println!(
                "  severity {:>5.1}%  {:<46} {}",
                c.severity * 100.0,
                c.label,
                kind
            );
        }
        println!();
    }

    // --- failure diagnosis on a crashed run ------------------------------
    println!("=== failure diagnosis: worker 5 crashes mid-job ===");
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let mut crashed = result.run.clone();
    // The crash: after 60% of the run, worker 5 stops logging entirely.
    let cutoff = crashed.makespan_us * 6 / 10;
    crashed
        .events
        .retain(|e| e.process != "worker-5" || e.time_us < cutoff);

    let report = EvaluationProcess::new(giraph_model()).evaluate(
        &crashed,
        JobMeta {
            job_id: "crashed-run".into(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: "dg1000".into(),
            nodes: 8,
            model: String::new(),
        },
    );
    let diagnosis = diagnose(&report.archive, &report.assembly_warnings);
    println!("healthy: {}", diagnosis.is_healthy());
    println!("job completed: {}", diagnosis.job_completed);
    println!(
        "unclosed operations ({} total, first 5):",
        diagnosis.unclosed.len()
    );
    for label in diagnosis.unclosed.iter().take(5) {
        println!("  {label}");
    }
    println!(
        "suspected node: {}",
        diagnosis.suspected_node.as_deref().unwrap_or("(none)")
    );
    println!(
        "\nthe suspected node hosts worker 5 — exactly where the injected\n\
         crash happened. This is the paper's `failure diagnosis` vision."
    );
}
