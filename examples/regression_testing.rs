//! Performance-regression testing with archives (paper §6 future work):
//! archive a known-good configuration as the baseline, then let a
//! misconfigured run fail the check — with the regressing *phase* named.
//!
//! ```sh
//! cargo run --release --example regression_testing
//! ```

use granula::calibration;
use granula::experiment::{run_experiment, Platform};
use granula::regression::RegressionSuite;
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (graph, scale) = calibration::dg_graph_small(8_000, calibration::DG_SEED);

    // Baseline: the calibrated configuration.
    let mut base_cfg = calibration::giraph_dg1000_job();
    base_cfg.scale_factor = scale;
    println!("running baseline ...");
    let baseline = run_experiment(Platform::Giraph, &graph, &base_cfg)?;
    println!(
        "baseline total: {:.2}s (archived as the reference)",
        baseline.breakdown.total_s()
    );

    let baseline_archive = baseline.report.archive.clone();
    let mut suite = RegressionSuite::new(0.10); // tolerate 10 % noise
    suite.add_baseline(baseline.report.archive);

    // Candidate 1: identical configuration — must pass.
    println!("\nrunning candidate 1 (unchanged config) ...");
    let cand1 = run_experiment(Platform::Giraph, &graph, &base_cfg)?;
    let report = suite
        .check(&cand1.report.archive)
        .expect("baseline matches");
    println!("candidate 1 passed: {}", report.passed());

    // Candidate 2: a misconfiguration — the operator halves the compute
    // threads per worker (a classic Giraph tuning mistake).
    println!("\nrunning candidate 2 (worker threads 24 -> 6) ...");
    let mut bad_cfg = base_cfg.clone();
    bad_cfg.costs.worker_threads = 6;
    let cand2 = run_experiment(Platform::Giraph, &graph, &bad_cfg)?;
    let report = suite
        .check(&cand2.report.archive)
        .expect("baseline matches");
    println!("candidate 2 passed: {}", report.passed());
    for r in &report.regressions {
        println!(
            "  regression in {:<14} {:>8.2}s -> {:>8.2}s  ({:+.1}%)",
            r.subject,
            r.baseline_us as f64 / 1e6,
            r.candidate_us as f64 / 1e6,
            100.0 * r.change
        );
    }
    // Drill down: the operation-level diff behind the failed check.
    println!("\noperation-level diff (largest changes):");
    let rows = granula_viz::diff_archives(
        &baseline_archive,
        &cand2.report.archive,
        500_000, // ignore sub-0.5s noise
    );
    print!("{}", granula_viz::render_diff(&rows, 8));

    println!(
        "\nthe per-phase attribution (I/O and processing regress, setup does\n\
         not) is what coarse end-to-end timing could never tell you."
    );
    Ok(())
}
